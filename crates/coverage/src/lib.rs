//! # mtt-coverage — concurrency coverage models
//!
//! §2.2 of the paper: statement coverage "is of very little utility in the
//! multi-threading domain. An equivalent process ... is to check that
//! variables on which contention can occur had contention in the testing.
//! Such measures exist in ConTest. Better measures should be created and
//! their correlation to bug detection studied." It also raises "a new and
//! interesting research question": *using coverage to decide, given limited
//! resources, how many times each test should be executed*.
//!
//! This crate provides:
//!
//! * Four coverage models, each an [`EventSink`] producing a set of covered
//!   *tasks* (string keys, so models compose and accumulate generically):
//!   [`SiteCoverage`] (the sequential baseline the paper calls near-useless
//!   here), [`ContentionCoverage`] (ConTest's shared-variable contention),
//!   [`SyncCoverage`] (ConTest synchronization coverage: each lock site
//!   observed both blocking and blocked), and [`OrderedPairCoverage`]
//!   (cross-thread access pairs on a variable, in both orders).
//! * Feasibility denominators from [`StaticInfo`] — the paper's fix for
//!   "most tasks are not feasible": only variables static analysis says can
//!   be shared count toward the goal ([`ContentionCoverage::with_feasible`]).
//! * [`Cumulative`] — union of covered tasks across runs, yielding the
//!   coverage-growth curves of experiment E4.
//! * [`RunCountAdvisor`] — the paper's run-count question, answered with
//!   plateau detection: keep re-running a test until `window` consecutive
//!   runs add no new tasks.

use mtt_instrument::{Event, EventSink, Loc, Op, StaticInfo, ThreadId, VarId, VarTable};
use std::collections::{BTreeSet, HashMap};

/// A coverage model: consumes events, produces covered tasks.
pub trait CoverageModel: EventSink {
    /// Model name for reports.
    fn model_name(&self) -> &'static str;

    /// The tasks covered so far, as stable string keys.
    fn covered_tasks(&self) -> BTreeSet<String>;

    /// The feasible-task universe, when the model knows it. `None` means
    /// the universe is open (e.g. sites are discovered, not declared).
    fn feasible_tasks(&self) -> Option<BTreeSet<String>>;

    /// Convenience: covered / feasible, when the universe is known.
    fn ratio(&self) -> Option<f64> {
        let f = self.feasible_tasks()?;
        if f.is_empty() {
            return Some(1.0);
        }
        let covered = self.covered_tasks().intersection(&f).count();
        Some(covered as f64 / f.len() as f64)
    }
}

// ---------------------------------------------------------------------
// Site coverage (the sequential baseline)
// ---------------------------------------------------------------------

/// Which instrumentation sites executed at all — statement coverage's
/// closest analogue, included as the baseline the paper dismisses for
/// concurrent bugs (experiment E4 shows why: it saturates after one run).
#[derive(Debug, Default)]
pub struct SiteCoverage {
    sites: BTreeSet<Loc>,
}

impl SiteCoverage {
    /// Fresh model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventSink for SiteCoverage {
    fn on_event(&mut self, ev: &Event) {
        self.sites.insert(ev.loc);
    }
}

impl CoverageModel for SiteCoverage {
    fn model_name(&self) -> &'static str {
        "site"
    }

    fn covered_tasks(&self) -> BTreeSet<String> {
        self.sites.iter().map(|l| l.to_string()).collect()
    }

    fn feasible_tasks(&self) -> Option<BTreeSet<String>> {
        None
    }
}

// ---------------------------------------------------------------------
// Contention coverage
// ---------------------------------------------------------------------

/// Per-variable contention: a variable's task is covered when it has been
/// accessed by at least two distinct threads, at least one access being a
/// write, within one execution.
#[derive(Debug, Default)]
pub struct ContentionCoverage {
    /// threads that read/wrote each var, plus whether any write occurred.
    state: HashMap<VarId, (BTreeSet<ThreadId>, bool)>,
    var_names: Vec<String>,
    feasible: Option<BTreeSet<String>>,
}

impl ContentionCoverage {
    /// Model over the program's variable table (all variables feasible).
    pub fn new(table: &VarTable) -> Self {
        ContentionCoverage {
            state: HashMap::new(),
            var_names: (0..table.len() as u32)
                .map(|i| table.name(VarId(i)).to_string())
                .collect(),
            feasible: Some(
                (0..table.len() as u32)
                    .map(|i| table.name(VarId(i)).to_string())
                    .collect(),
            ),
        }
    }

    /// Restrict the feasible universe to variables a static analysis says
    /// can be shared — the paper's feasibility refinement.
    pub fn with_feasible(table: &VarTable, info: &StaticInfo) -> Self {
        let mut m = Self::new(table);
        m.feasible = Some(info.shared_var_names().map(str::to_string).collect());
        m
    }

    fn name_of(&self, v: VarId) -> String {
        self.var_names
            .get(v.index())
            .cloned()
            .unwrap_or_else(|| format!("var{}", v.0))
    }
}

impl EventSink for ContentionCoverage {
    fn on_event(&mut self, ev: &Event) {
        if let Some((var, kind)) = ev.var_access() {
            let e = self.state.entry(var).or_default();
            e.0.insert(ev.thread);
            e.1 |= kind.is_write();
        }
    }
}

impl CoverageModel for ContentionCoverage {
    fn model_name(&self) -> &'static str {
        "contention"
    }

    fn covered_tasks(&self) -> BTreeSet<String> {
        self.state
            .iter()
            .filter(|(_, (threads, wrote))| threads.len() >= 2 && *wrote)
            .map(|(v, _)| self.name_of(*v))
            .collect()
    }

    fn feasible_tasks(&self) -> Option<BTreeSet<String>> {
        self.feasible.clone()
    }
}

// ---------------------------------------------------------------------
// Synchronization coverage (ConTest)
// ---------------------------------------------------------------------

/// ConTest synchronization coverage: for every lock-acquisition site,
/// observe it both **blocked** (the acquisition had to wait) and
/// **blocking** (some other thread had to wait while the lock taken here
/// was held). Each site therefore contributes two tasks.
#[derive(Debug, Default)]
pub struct SyncCoverage {
    /// Site at which the current owner of each lock acquired it.
    owner_site: HashMap<u32, Loc>,
    blocked: BTreeSet<Loc>,
    blocking: BTreeSet<Loc>,
    /// All acquisition sites seen (the discovered universe).
    sites: BTreeSet<Loc>,
}

impl SyncCoverage {
    /// Fresh model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventSink for SyncCoverage {
    fn on_event(&mut self, ev: &Event) {
        match ev.op {
            Op::LockRequest { lock } => {
                // This request blocked: its site is "blocked", the current
                // owner's acquisition site is "blocking".
                self.sites.insert(ev.loc);
                self.blocked.insert(ev.loc);
                if let Some(owner_loc) = self.owner_site.get(&lock.0) {
                    self.blocking.insert(*owner_loc);
                }
            }
            Op::LockAcquire { lock } => {
                self.sites.insert(ev.loc);
                self.owner_site.insert(lock.0, ev.loc);
            }
            Op::LockRelease { lock } => {
                self.owner_site.remove(&lock.0);
            }
            _ => {}
        }
    }
}

impl CoverageModel for SyncCoverage {
    fn model_name(&self) -> &'static str {
        "sync"
    }

    fn covered_tasks(&self) -> BTreeSet<String> {
        let mut t: BTreeSet<String> = self
            .blocked
            .iter()
            .map(|l| format!("{l}/blocked"))
            .collect();
        t.extend(self.blocking.iter().map(|l| format!("{l}/blocking")));
        t
    }

    /// Universe = every discovered acquisition site × {blocked, blocking}.
    fn feasible_tasks(&self) -> Option<BTreeSet<String>> {
        let mut t = BTreeSet::new();
        for l in &self.sites {
            t.insert(format!("{l}/blocked"));
            t.insert(format!("{l}/blocking"));
        }
        Some(t)
    }
}

// ---------------------------------------------------------------------
// Ordered-pair coverage
// ---------------------------------------------------------------------

/// Cross-thread ordered access pairs: for a variable `v`, the task
/// `s1 -> s2 @ v` is covered when an access at site `s1` is immediately
/// followed (as the next access to `v`) by an access at site `s2` from a
/// different thread, at least one of the two being a write. Seeing both
/// `s1 -> s2` and `s2 -> s1` is what distinguishes genuinely explored
/// interleavings — the "both orders" signal used by the coverage-directed
/// noise heuristic.
#[derive(Debug, Default)]
pub struct OrderedPairCoverage {
    last: HashMap<VarId, (Loc, ThreadId, bool)>,
    pairs: BTreeSet<(VarId, Loc, Loc)>,
    var_names: Vec<String>,
}

impl OrderedPairCoverage {
    /// Model over the program's variable table.
    pub fn new(table: &VarTable) -> Self {
        OrderedPairCoverage {
            last: HashMap::new(),
            pairs: BTreeSet::new(),
            var_names: (0..table.len() as u32)
                .map(|i| table.name(VarId(i)).to_string())
                .collect(),
        }
    }

    /// Number of (pair) tasks covered.
    pub fn pair_count(&self) -> usize {
        self.pairs.len()
    }

    /// How many covered pairs also have their reverse covered — the
    /// "both orders" count.
    pub fn both_orders_count(&self) -> usize {
        self.pairs
            .iter()
            .filter(|(v, a, b)| self.pairs.contains(&(*v, *b, *a)))
            .count()
            / 2
            * 2 // count pairs symmetrically (floor to even)
    }
}

impl EventSink for OrderedPairCoverage {
    fn on_event(&mut self, ev: &Event) {
        if let Some((var, kind)) = ev.var_access() {
            let me = (ev.loc, ev.thread, kind.is_write());
            if let Some((ploc, pthread, pwrite)) = self.last.insert(var, me) {
                if pthread != ev.thread && (pwrite || kind.is_write()) {
                    self.pairs.insert((var, ploc, ev.loc));
                }
            }
        }
    }
}

impl CoverageModel for OrderedPairCoverage {
    fn model_name(&self) -> &'static str {
        "ordered-pair"
    }

    fn covered_tasks(&self) -> BTreeSet<String> {
        self.pairs
            .iter()
            .map(|(v, a, b)| {
                let name = self
                    .var_names
                    .get(v.index())
                    .cloned()
                    .unwrap_or_else(|| format!("var{}", v.0));
                format!("{a}->{b}@{name}")
            })
            .collect()
    }

    fn feasible_tasks(&self) -> Option<BTreeSet<String>> {
        None
    }
}

// ---------------------------------------------------------------------
// Accumulation across runs + the run-count advisor
// ---------------------------------------------------------------------

/// Union of covered tasks across executions, with the per-run growth
/// history — the data behind coverage curves.
#[derive(Debug, Default, Clone)]
pub struct Cumulative {
    tasks: BTreeSet<String>,
    /// Cumulative task count after each absorbed run.
    pub history: Vec<usize>,
}

impl Cumulative {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorb one run's covered tasks; returns how many were new.
    pub fn absorb(&mut self, covered: &BTreeSet<String>) -> usize {
        let before = self.tasks.len();
        self.tasks.extend(covered.iter().cloned());
        self.history.push(self.tasks.len());
        self.tasks.len() - before
    }

    /// Total distinct tasks.
    pub fn total(&self) -> usize {
        self.tasks.len()
    }

    /// The covered set.
    pub fn tasks(&self) -> &BTreeSet<String> {
        &self.tasks
    }
}

/// Should this test be executed again? The paper's "how many times each
/// test should be executed" question, answered by coverage plateau: stop
/// once `window` consecutive runs added no new coverage (and at least
/// `min_runs` ran).
#[derive(Debug, Clone)]
pub struct RunCountAdvisor {
    window: usize,
    min_runs: usize,
    runs: usize,
    dry_streak: usize,
}

/// The advisor's verdict after a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Advice {
    /// Coverage may still grow: run again.
    Continue,
    /// Coverage has plateaued: stop re-running this test.
    Stop,
}

impl RunCountAdvisor {
    /// Stop after `window` consecutive runs without new coverage, but never
    /// before `min_runs` runs.
    pub fn new(window: usize, min_runs: usize) -> Self {
        assert!(window > 0, "window must be positive");
        RunCountAdvisor {
            window,
            min_runs,
            runs: 0,
            dry_streak: 0,
        }
    }

    /// Report a finished run that covered `new_tasks` previously-unseen
    /// tasks; receive the verdict.
    pub fn after_run(&mut self, new_tasks: usize) -> Advice {
        self.runs += 1;
        if new_tasks == 0 {
            self.dry_streak += 1;
        } else {
            self.dry_streak = 0;
        }
        if self.runs >= self.min_runs && self.dry_streak >= self.window {
            Advice::Stop
        } else {
            Advice::Continue
        }
    }

    /// Runs so far.
    pub fn runs(&self) -> usize {
        self.runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtt_instrument::{AccessKind, LockId};
    use std::sync::Arc;

    fn ev(seq: u64, thread: u32, loc_line: u32, op: Op) -> Event {
        Event {
            seq,
            time: seq,
            thread: ThreadId(thread),
            loc: Loc::new("c", loc_line),
            op,
            locks_held: Arc::from(Vec::<LockId>::new()),
        }
    }

    fn access(seq: u64, t: u32, line: u32, var: u32, kind: AccessKind) -> Event {
        let op = match kind {
            AccessKind::Read => Op::VarRead {
                var: VarId(var),
                value: 0,
            },
            AccessKind::Write => Op::VarWrite {
                var: VarId(var),
                value: 0,
            },
        };
        ev(seq, t, line, op)
    }

    fn table() -> VarTable {
        VarTable::new(vec!["x".into(), "y".into()])
    }

    #[test]
    fn site_coverage_counts_distinct_sites() {
        let mut m = SiteCoverage::new();
        m.on_event(&ev(0, 0, 1, Op::Yield));
        m.on_event(&ev(1, 0, 1, Op::Yield));
        m.on_event(&ev(2, 1, 2, Op::Yield));
        assert_eq!(m.covered_tasks().len(), 2);
        assert_eq!(m.model_name(), "site");
        assert!(m.feasible_tasks().is_none());
        assert!(m.ratio().is_none());
    }

    #[test]
    fn contention_requires_two_threads_and_a_write() {
        let mut m = ContentionCoverage::new(&table());
        // One thread alone: no contention.
        m.on_event(&access(0, 0, 1, 0, AccessKind::Write));
        m.on_event(&access(1, 0, 2, 0, AccessKind::Read));
        assert!(m.covered_tasks().is_empty());
        // Two threads but read-only on y: still nothing.
        m.on_event(&access(2, 0, 3, 1, AccessKind::Read));
        m.on_event(&access(3, 1, 4, 1, AccessKind::Read));
        assert!(m.covered_tasks().is_empty());
        // Second thread writes x: contention.
        m.on_event(&access(4, 1, 5, 0, AccessKind::Write));
        assert_eq!(m.covered_tasks(), ["x".to_string()].into_iter().collect());
        assert_eq!(m.ratio(), Some(0.5));
    }

    #[test]
    fn contention_feasibility_from_static_info() {
        let mut info = StaticInfo::default();
        info.vars.insert(
            "x".into(),
            mtt_instrument::VarFacts {
                shared: true,
                written: true,
                guarded_by: vec![],
            },
        );
        info.vars.insert(
            "y".into(),
            mtt_instrument::VarFacts {
                shared: false,
                written: true,
                guarded_by: vec![],
            },
        );
        let mut m = ContentionCoverage::with_feasible(&table(), &info);
        m.on_event(&access(0, 0, 1, 0, AccessKind::Write));
        m.on_event(&access(1, 1, 2, 0, AccessKind::Write));
        // x covered, and the universe is only {x}: 100%.
        assert_eq!(m.ratio(), Some(1.0));
    }

    #[test]
    fn sync_coverage_blocked_and_blocking() {
        let mut m = SyncCoverage::new();
        let l = LockId(0);
        // t0 acquires at line 1; t1 blocks requesting at line 2.
        m.on_event(&ev(0, 0, 1, Op::LockAcquire { lock: l }));
        m.on_event(&ev(1, 1, 2, Op::LockRequest { lock: l }));
        m.on_event(&ev(2, 0, 3, Op::LockRelease { lock: l }));
        m.on_event(&ev(3, 1, 2, Op::LockAcquire { lock: l }));
        let t = m.covered_tasks();
        assert!(t.contains("c:2/blocked"), "{t:?}");
        assert!(t.contains("c:1/blocking"), "{t:?}");
        // Universe: sites 1 and 2, two tasks each.
        assert_eq!(m.feasible_tasks().unwrap().len(), 4);
        let r = m.ratio().unwrap();
        assert!((r - 0.5).abs() < 1e-9, "r = {r}");
    }

    #[test]
    fn uncontended_locking_covers_nothing() {
        let mut m = SyncCoverage::new();
        let l = LockId(0);
        for i in 0..5 {
            m.on_event(&ev(i * 2, 0, 1, Op::LockAcquire { lock: l }));
            m.on_event(&ev(i * 2 + 1, 0, 2, Op::LockRelease { lock: l }));
        }
        assert!(m.covered_tasks().is_empty());
        assert_eq!(m.ratio(), Some(0.0));
    }

    #[test]
    fn ordered_pairs_and_both_orders() {
        let mut m = OrderedPairCoverage::new(&table());
        m.on_event(&access(0, 0, 1, 0, AccessKind::Write)); // t0 @1
        m.on_event(&access(1, 1, 2, 0, AccessKind::Write)); // t1 @2: pair 1->2
        assert_eq!(m.pair_count(), 1);
        assert_eq!(m.both_orders_count(), 0);
        m.on_event(&access(2, 0, 1, 0, AccessKind::Write)); // t0 @1: pair 2->1
        assert_eq!(m.pair_count(), 2);
        assert_eq!(m.both_orders_count(), 2);
        let tasks = m.covered_tasks();
        assert!(tasks.iter().any(|t| t.contains("@x")), "{tasks:?}");
    }

    #[test]
    fn same_thread_and_read_read_pairs_do_not_count() {
        let mut m = OrderedPairCoverage::new(&table());
        m.on_event(&access(0, 0, 1, 0, AccessKind::Write));
        m.on_event(&access(1, 0, 2, 0, AccessKind::Write)); // same thread
        assert_eq!(m.pair_count(), 0);
        m.on_event(&access(2, 1, 3, 0, AccessKind::Read));
        m.on_event(&access(3, 0, 4, 0, AccessKind::Read)); // read-read
                                                           // (write@2 -> read@3 counts: write then read by other thread)
        assert_eq!(m.pair_count(), 1);
    }

    #[test]
    fn cumulative_union_and_history() {
        let mut c = Cumulative::new();
        let run1: BTreeSet<String> = ["a", "b"].iter().map(|s| s.to_string()).collect();
        let run2: BTreeSet<String> = ["b", "c"].iter().map(|s| s.to_string()).collect();
        assert_eq!(c.absorb(&run1), 2);
        assert_eq!(c.absorb(&run2), 1);
        assert_eq!(c.absorb(&run2), 0);
        assert_eq!(c.total(), 3);
        assert_eq!(c.history, vec![2, 3, 3]);
        assert!(c.tasks().contains("c"));
    }

    #[test]
    fn advisor_stops_after_plateau() {
        let mut a = RunCountAdvisor::new(3, 2);
        assert_eq!(a.after_run(5), Advice::Continue);
        assert_eq!(a.after_run(0), Advice::Continue);
        assert_eq!(a.after_run(0), Advice::Continue);
        assert_eq!(a.after_run(0), Advice::Stop);
        assert_eq!(a.runs(), 4);
    }

    #[test]
    fn advisor_resets_streak_on_new_coverage() {
        let mut a = RunCountAdvisor::new(2, 1);
        assert_eq!(a.after_run(0), Advice::Continue);
        assert_eq!(a.after_run(3), Advice::Continue); // streak reset
        assert_eq!(a.after_run(0), Advice::Continue);
        assert_eq!(a.after_run(0), Advice::Stop);
    }

    #[test]
    fn advisor_respects_min_runs() {
        let mut a = RunCountAdvisor::new(1, 5);
        for _ in 0..4 {
            assert_eq!(a.after_run(0), Advice::Continue);
        }
        assert_eq!(a.after_run(0), Advice::Stop);
    }
}
