//! Property tests for the causal layer.
//!
//! Three families of laws:
//!
//! 1. **Vector-clock algebra** — `join` is commutative, associative and
//!    idempotent, and never loses information (the join dominates both
//!    operands).
//! 2. **Happens-before is a strict partial order** — over the annotations
//!    of real executions (random suite program × random seed): irreflexive,
//!    antisymmetric, transitive, and consistent with program order.
//! 3. **Replay stability** — recording a run and playing the log back
//!    yields a byte-identical trace and identical causal annotations.

use mtt_causal::{annotate_trace, happens_before, VectorClock};
use mtt_instrument::shared;
use mtt_replay::{record, DivergencePolicy, PlaybackScheduler};
use mtt_runtime::{Execution, NoNoise, RandomScheduler};
use mtt_suite::SuiteProgram;
use mtt_trace::{Trace, TraceCollector};
use proptest::prelude::*;

fn clock(components: Vec<u32>) -> VectorClock {
    VectorClock::from_components(components)
}

/// One of the small catalog programs, chosen by index.
fn program(idx: usize) -> SuiteProgram {
    let all = [
        mtt_suite::small::lost_update(2, 2),
        mtt_suite::small::check_then_act(),
        mtt_suite::small::unguarded_wait(),
        mtt_suite::small::ab_ba(),
        mtt_suite::small::missed_signal(),
    ];
    all.into_iter().nth(idx % 5).expect("index in range")
}

/// Execute `program` once at `seed` and collect the raw trace.
fn run_trace(program: &SuiteProgram, seed: u64) -> Trace {
    let (sink, handle) = shared(TraceCollector::new());
    Execution::new(&program.program)
        .scheduler(Box::new(RandomScheduler::sticky(seed, 0.0)))
        .max_steps(20_000)
        .sink(Box::new(sink))
        .run();
    let mut guard = handle.lock().expect("collector poisoned");
    std::mem::take(&mut guard.trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn clock_join_is_commutative(a in proptest::collection::vec(0u32..40, 0..6),
                                 b in proptest::collection::vec(0u32..40, 0..6)) {
        let mut ab = clock(a.clone());
        ab.join(&clock(b.clone()));
        let mut ba = clock(b);
        ba.join(&clock(a));
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn clock_join_is_associative(a in proptest::collection::vec(0u32..40, 0..6),
                                 b in proptest::collection::vec(0u32..40, 0..6),
                                 c in proptest::collection::vec(0u32..40, 0..6)) {
        let mut left = clock(a.clone());
        left.join(&clock(b.clone()));
        left.join(&clock(c.clone()));
        let mut bc = clock(b);
        bc.join(&clock(c));
        let mut right = clock(a);
        right.join(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn clock_join_is_idempotent_and_dominating(
        a in proptest::collection::vec(0u32..40, 0..6),
        b in proptest::collection::vec(0u32..40, 0..6),
    ) {
        let mut aa = clock(a.clone());
        aa.join(&clock(a.clone()));
        prop_assert_eq!(&aa, &clock(a.clone()));
        let mut ab = clock(a.clone());
        ab.join(&clock(b.clone()));
        prop_assert!(clock(a).le(&ab), "join must dominate its left operand");
        prop_assert!(clock(b).le(&ab), "join must dominate its right operand");
    }

    #[test]
    fn happens_before_is_a_strict_partial_order(idx in 0usize..5, seed in 0u64..500) {
        let trace = run_trace(&program(idx), seed);
        let ann = annotate_trace(&trace);
        let notes = &ann.notes;
        prop_assert_eq!(notes.len(), trace.records.len());
        // Irreflexivity.
        for n in notes {
            prop_assert!(!happens_before(n, n), "seq {} before itself", n.seq);
        }
        // Antisymmetry over all pairs; transitivity over a bounded sample of
        // triples (full cubic scan is too slow for the larger traces).
        for a in notes {
            for b in notes {
                if a.seq != b.seq && happens_before(a, b) {
                    prop_assert!(
                        !happens_before(b, a),
                        "cycle between seq {} and {}", a.seq, b.seq
                    );
                }
            }
        }
        let stride = (notes.len() / 12).max(1);
        for a in notes.iter().step_by(stride) {
            for b in notes.iter().step_by(stride) {
                for c in notes.iter().step_by(stride) {
                    if happens_before(a, b) && happens_before(b, c) {
                        prop_assert!(
                            happens_before(a, c),
                            "transitivity broke at {} -> {} -> {}", a.seq, b.seq, c.seq
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn program_order_implies_happens_before(idx in 0usize..5, seed in 0u64..500) {
        let trace = run_trace(&program(idx), seed);
        let ann = annotate_trace(&trace);
        for (i, a) in ann.notes.iter().enumerate() {
            for b in ann.notes.iter().skip(i + 1) {
                if a.thread == b.thread {
                    prop_assert!(
                        happens_before(a, b),
                        "same-thread seq {} !-> seq {}", a.seq, b.seq
                    );
                }
            }
        }
    }

    #[test]
    fn hb_edges_point_at_earlier_cross_thread_events(idx in 0usize..5, seed in 0u64..500) {
        let trace = run_trace(&program(idx), seed);
        let ann = annotate_trace(&trace);
        for (i, note) in ann.notes.iter().enumerate() {
            for &src in &note.hb_from {
                prop_assert!(src < note.seq, "edge from the future at seq {}", note.seq);
                let source = &ann.notes[src as usize];
                prop_assert!(
                    happens_before(source, &ann.notes[i]),
                    "recorded edge {} -> {} is not a happens-before", src, note.seq
                );
            }
        }
    }

    #[test]
    fn replayed_trace_has_identical_annotations(idx in 0usize..5, seed in 0u64..200) {
        let p = program(idx);
        // Record.
        let (rec_sched, rec_noise, recorder) =
            record(p.name, seed, RandomScheduler::sticky(seed, 0.0), NoNoise);
        let (sink, handle) = shared(TraceCollector::new());
        Execution::new(&p.program)
            .scheduler(Box::new(rec_sched))
            .noise(Box::new(rec_noise))
            .max_steps(20_000)
            .sink(Box::new(sink))
            .run();
        let recorded = {
            let mut g = handle.lock().expect("collector poisoned");
            std::mem::take(&mut g.trace)
        };
        let log = recorder.take_log();
        // Play back.
        let playback = PlaybackScheduler::new(log, DivergencePolicy::Strict);
        let report = playback.report_handle();
        let (sink, handle) = shared(TraceCollector::new());
        Execution::new(&p.program)
            .scheduler(Box::new(playback))
            .max_steps(20_000)
            .sink(Box::new(sink))
            .run();
        let replayed = {
            let mut g = handle.lock().expect("collector poisoned");
            std::mem::take(&mut g.trace)
        };
        prop_assert!(report.lock().expect("report poisoned").is_clean());
        prop_assert_eq!(&recorded.records, &replayed.records);
        let a = annotate_trace(&recorded);
        let b = annotate_trace(&replayed);
        prop_assert_eq!(a.first_failure, b.first_failure);
        prop_assert_eq!(a.notes.len(), b.notes.len());
        for (x, y) in a.notes.iter().zip(&b.notes) {
            prop_assert_eq!(x.seq, y.seq);
            prop_assert_eq!(&x.clock, &y.clock);
            prop_assert_eq!(&x.hb_from, &y.hb_from);
        }
    }
}

// ---------------------------------------------------------------------------
// Trace-fingerprint laws: the fingerprint is a function of the Mazurkiewicz
// trace (the HB partial order up to reordering of independent operations),
// nothing else.

use mtt_causal::fingerprint_trace;
use mtt_instrument::Op;

/// Is the adjacent pair (a, b) independent for fingerprint purposes? We
/// deliberately use the *narrowest* sufficient condition — two plain
/// variable accesses from different threads that do not conflict — so the
/// property asserts invariance only where the dependence relation
/// guarantees it.
fn independent_plain_accesses(a: &mtt_trace::TraceRecord, b: &mtt_trace::TraceRecord) -> bool {
    if a.thread == b.thread {
        return false;
    }
    let plain = |op: &Op| matches!(op, Op::VarRead { .. } | Op::VarWrite { .. });
    if !plain(&a.op) || !plain(&b.op) {
        return false;
    }
    match (a.op.var(), b.op.var()) {
        (Some(va), Some(vb)) if va == vb => {
            // Same variable: independent only when both are reads.
            matches!(a.op, Op::VarRead { .. }) && matches!(b.op, Op::VarRead { .. })
        }
        _ => true,
    }
}

/// Is the adjacent pair (a, b) a conflicting (racing) access pair — same
/// variable, different threads, at least one write?
fn conflicting_accesses(a: &mtt_trace::TraceRecord, b: &mtt_trace::TraceRecord) -> bool {
    if a.thread == b.thread {
        return false;
    }
    let plain = |op: &Op| matches!(op, Op::VarRead { .. } | Op::VarWrite { .. });
    if !plain(&a.op) || !plain(&b.op) {
        return false;
    }
    match (a.op.var(), b.op.var()) {
        (Some(va), Some(vb)) if va == vb => {
            matches!(a.op, Op::VarWrite { .. }) || matches!(b.op, Op::VarWrite { .. })
        }
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn permuting_independent_adjacent_ops_preserves_the_fingerprint(
        idx in 0usize..5,
        seed in 0u64..300,
    ) {
        let trace = run_trace(&program(idx), seed);
        let base = fingerprint_trace(&trace);
        let mut checked = 0usize;
        for i in 0..trace.records.len().saturating_sub(1) {
            if independent_plain_accesses(&trace.records[i], &trace.records[i + 1]) {
                let mut permuted = trace.clone();
                permuted.records.swap(i, i + 1);
                prop_assert_eq!(fingerprint_trace(&permuted), base);
                checked += 1;
            }
        }
        // Not every (program, seed) exposes an adjacent independent pair,
        // but across the sample space most do; when one exists it must be
        // invariant (asserted above).
        let _ = checked;
    }

    #[test]
    fn swapping_racing_adjacent_ops_changes_the_fingerprint(
        seed in 0u64..300,
    ) {
        // lost_update is two unlocked writers on one counter: racing
        // adjacent accesses abound.
        let trace = run_trace(&program(0), seed);
        let base = fingerprint_trace(&trace);
        for i in 0..trace.records.len().saturating_sub(1) {
            if conflicting_accesses(&trace.records[i], &trace.records[i + 1]) {
                let mut swapped = trace.clone();
                swapped.records.swap(i, i + 1);
                prop_assert!(fingerprint_trace(&swapped) != base);
            }
        }
    }

    #[test]
    fn fingerprint_ignores_values_seq_and_time(
        idx in 0usize..5,
        seed in 0u64..300,
    ) {
        let trace = run_trace(&program(idx), seed);
        let base = fingerprint_trace(&trace);
        let mut scrambled = trace.clone();
        for (k, r) in scrambled.records.iter_mut().enumerate() {
            r.seq = (r.seq + 1000) * 3;
            r.time += 17;
            match &mut r.op {
                Op::VarRead { value, .. } | Op::VarWrite { value, .. } => {
                    *value += 1 + k as i64;
                }
                Op::VarRmw { old, new, .. } => {
                    *old -= 5;
                    *new += 9;
                }
                _ => {}
            }
        }
        prop_assert_eq!(fingerprint_trace(&scrambled), base);
    }
}

#[test]
fn fingerprint_is_deterministic_across_concurrent_hashers() {
    // The E12 jobs-differential at the library level: hashing the same
    // trace from many threads at once must agree bit for bit with the
    // serial answer — the fingerprint is a pure function with no hidden
    // global state (no address-based hashing, no randomized seeds).
    for (idx, seed) in [(0usize, 7u64), (1, 11), (3, 42)] {
        let trace = std::sync::Arc::new(run_trace(&program(idx), seed));
        let serial = fingerprint_trace(&trace);
        for threads in [1, 2, 4, 8] {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let t = std::sync::Arc::clone(&trace);
                    std::thread::spawn(move || fingerprint_trace(&t))
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().expect("hasher thread"), serial);
            }
        }
    }
}
