//! Property tests for the causal layer.
//!
//! Three families of laws:
//!
//! 1. **Vector-clock algebra** — `join` is commutative, associative and
//!    idempotent, and never loses information (the join dominates both
//!    operands).
//! 2. **Happens-before is a strict partial order** — over the annotations
//!    of real executions (random suite program × random seed): irreflexive,
//!    antisymmetric, transitive, and consistent with program order.
//! 3. **Replay stability** — recording a run and playing the log back
//!    yields a byte-identical trace and identical causal annotations.

use mtt_causal::{annotate_trace, happens_before, VectorClock};
use mtt_instrument::shared;
use mtt_replay::{record, DivergencePolicy, PlaybackScheduler};
use mtt_runtime::{Execution, NoNoise, RandomScheduler};
use mtt_suite::SuiteProgram;
use mtt_trace::{Trace, TraceCollector};
use proptest::prelude::*;

fn clock(components: Vec<u32>) -> VectorClock {
    VectorClock::from_components(components)
}

/// One of the small catalog programs, chosen by index.
fn program(idx: usize) -> SuiteProgram {
    let all = [
        mtt_suite::small::lost_update(2, 2),
        mtt_suite::small::check_then_act(),
        mtt_suite::small::unguarded_wait(),
        mtt_suite::small::ab_ba(),
        mtt_suite::small::missed_signal(),
    ];
    all.into_iter().nth(idx % 5).expect("index in range")
}

/// Execute `program` once at `seed` and collect the raw trace.
fn run_trace(program: &SuiteProgram, seed: u64) -> Trace {
    let (sink, handle) = shared(TraceCollector::new());
    Execution::new(&program.program)
        .scheduler(Box::new(RandomScheduler::sticky(seed, 0.0)))
        .max_steps(20_000)
        .sink(Box::new(sink))
        .run();
    let mut guard = handle.lock().expect("collector poisoned");
    std::mem::take(&mut guard.trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn clock_join_is_commutative(a in proptest::collection::vec(0u32..40, 0..6),
                                 b in proptest::collection::vec(0u32..40, 0..6)) {
        let mut ab = clock(a.clone());
        ab.join(&clock(b.clone()));
        let mut ba = clock(b);
        ba.join(&clock(a));
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn clock_join_is_associative(a in proptest::collection::vec(0u32..40, 0..6),
                                 b in proptest::collection::vec(0u32..40, 0..6),
                                 c in proptest::collection::vec(0u32..40, 0..6)) {
        let mut left = clock(a.clone());
        left.join(&clock(b.clone()));
        left.join(&clock(c.clone()));
        let mut bc = clock(b);
        bc.join(&clock(c));
        let mut right = clock(a);
        right.join(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn clock_join_is_idempotent_and_dominating(
        a in proptest::collection::vec(0u32..40, 0..6),
        b in proptest::collection::vec(0u32..40, 0..6),
    ) {
        let mut aa = clock(a.clone());
        aa.join(&clock(a.clone()));
        prop_assert_eq!(&aa, &clock(a.clone()));
        let mut ab = clock(a.clone());
        ab.join(&clock(b.clone()));
        prop_assert!(clock(a).le(&ab), "join must dominate its left operand");
        prop_assert!(clock(b).le(&ab), "join must dominate its right operand");
    }

    #[test]
    fn happens_before_is_a_strict_partial_order(idx in 0usize..5, seed in 0u64..500) {
        let trace = run_trace(&program(idx), seed);
        let ann = annotate_trace(&trace);
        let notes = &ann.notes;
        prop_assert_eq!(notes.len(), trace.records.len());
        // Irreflexivity.
        for n in notes {
            prop_assert!(!happens_before(n, n), "seq {} before itself", n.seq);
        }
        // Antisymmetry over all pairs; transitivity over a bounded sample of
        // triples (full cubic scan is too slow for the larger traces).
        for a in notes {
            for b in notes {
                if a.seq != b.seq && happens_before(a, b) {
                    prop_assert!(
                        !happens_before(b, a),
                        "cycle between seq {} and {}", a.seq, b.seq
                    );
                }
            }
        }
        let stride = (notes.len() / 12).max(1);
        for a in notes.iter().step_by(stride) {
            for b in notes.iter().step_by(stride) {
                for c in notes.iter().step_by(stride) {
                    if happens_before(a, b) && happens_before(b, c) {
                        prop_assert!(
                            happens_before(a, c),
                            "transitivity broke at {} -> {} -> {}", a.seq, b.seq, c.seq
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn program_order_implies_happens_before(idx in 0usize..5, seed in 0u64..500) {
        let trace = run_trace(&program(idx), seed);
        let ann = annotate_trace(&trace);
        for (i, a) in ann.notes.iter().enumerate() {
            for b in ann.notes.iter().skip(i + 1) {
                if a.thread == b.thread {
                    prop_assert!(
                        happens_before(a, b),
                        "same-thread seq {} !-> seq {}", a.seq, b.seq
                    );
                }
            }
        }
    }

    #[test]
    fn hb_edges_point_at_earlier_cross_thread_events(idx in 0usize..5, seed in 0u64..500) {
        let trace = run_trace(&program(idx), seed);
        let ann = annotate_trace(&trace);
        for (i, note) in ann.notes.iter().enumerate() {
            for &src in &note.hb_from {
                prop_assert!(src < note.seq, "edge from the future at seq {}", note.seq);
                let source = &ann.notes[src as usize];
                prop_assert!(
                    happens_before(source, &ann.notes[i]),
                    "recorded edge {} -> {} is not a happens-before", src, note.seq
                );
            }
        }
    }

    #[test]
    fn replayed_trace_has_identical_annotations(idx in 0usize..5, seed in 0u64..200) {
        let p = program(idx);
        // Record.
        let (rec_sched, rec_noise, recorder) =
            record(p.name, seed, RandomScheduler::sticky(seed, 0.0), NoNoise);
        let (sink, handle) = shared(TraceCollector::new());
        Execution::new(&p.program)
            .scheduler(Box::new(rec_sched))
            .noise(Box::new(rec_noise))
            .max_steps(20_000)
            .sink(Box::new(sink))
            .run();
        let recorded = {
            let mut g = handle.lock().expect("collector poisoned");
            std::mem::take(&mut g.trace)
        };
        let log = recorder.take_log();
        // Play back.
        let playback = PlaybackScheduler::new(log, DivergencePolicy::Strict);
        let report = playback.report_handle();
        let (sink, handle) = shared(TraceCollector::new());
        Execution::new(&p.program)
            .scheduler(Box::new(playback))
            .max_steps(20_000)
            .sink(Box::new(sink))
            .run();
        let replayed = {
            let mut g = handle.lock().expect("collector poisoned");
            std::mem::take(&mut g.trace)
        };
        prop_assert!(report.lock().expect("report poisoned").is_clean());
        prop_assert_eq!(&recorded.records, &replayed.records);
        let a = annotate_trace(&recorded);
        let b = annotate_trace(&replayed);
        prop_assert_eq!(a.first_failure, b.first_failure);
        prop_assert_eq!(a.notes.len(), b.notes.len());
        for (x, y) in a.notes.iter().zip(&b.notes) {
            prop_assert_eq!(x.seq, y.seq);
            prop_assert_eq!(&x.clock, &y.clock);
            prop_assert_eq!(&x.hb_from, &y.hb_from);
        }
    }
}
