//! The annotated-trace NDJSON format: the standard trace format plus
//! per-event causal annotations.
//!
//! Layout (one JSON object per line):
//!
//! * **line 1 — header**: `{"schema":"mtt-annotated-trace","version":1,
//!   "first_failure":<seq|null>,"meta":{…TraceMeta…}}`.
//! * **every further line — one record**: all [`TraceRecord`] fields
//!   exactly as the plain JSON-lines codec emits them, plus `clock` (the
//!   event's vector-clock components), `hb_from` (incoming sync-edge
//!   source sequence numbers; omitted when empty, like `bug_tags`) and
//!   `first_failure:true` on the single first-failure record.
//!
//! The format is a strict extension: stripping the extra keys yields plain
//! trace records. `version` bumps on any removal or retyping of a field;
//! *adding* optional fields is allowed within a version (the checker
//! ignores unknown keys). Everything is emitted in canonical order, so the
//! bytes are deterministic for a deterministic trace.

use crate::hb::CausalAnnotations;
use mtt_json::{Json, ToJson};
use mtt_trace::Trace;
use std::io::{self, Write};

/// The `schema` tag of the header line.
pub const ANNOTATED_SCHEMA: &str = "mtt-annotated-trace";
/// Current schema version.
pub const ANNOTATED_VERSION: u64 = 1;

/// Record fields every annotated line must carry (the plain trace record
/// fields plus `clock`).
pub const ANNOTATED_REQUIRED_FIELDS: &[&str] = &[
    "seq",
    "time",
    "thread",
    "file",
    "line",
    "op",
    "locks_held",
    "clock",
];

fn header_json(trace: &Trace, ann: &CausalAnnotations) -> Json {
    Json::Obj(vec![
        ("schema".into(), ANNOTATED_SCHEMA.to_json()),
        ("version".into(), ANNOTATED_VERSION.to_json()),
        (
            "first_failure".into(),
            match ann.first_failure {
                Some(seq) => seq.to_json(),
                None => Json::Null,
            },
        ),
        ("meta".into(), trace.meta.to_json()),
    ])
}

fn record_json(trace: &Trace, ann: &CausalAnnotations, i: usize) -> Json {
    let rec = &trace.records[i];
    let mut fields = match rec.to_json() {
        Json::Obj(fields) => fields,
        other => vec![("record".into(), other)],
    };
    if let Some(note) = ann.notes.get(i) {
        fields.push((
            "clock".into(),
            Json::Arr(
                note.clock
                    .components()
                    .iter()
                    .map(|c| c.to_json())
                    .collect(),
            ),
        ));
        if !note.hb_from.is_empty() {
            fields.push(("hb_from".into(), note.hb_from.to_json()));
        }
    }
    if ann.first_failure == Some(rec.seq) {
        fields.push(("first_failure".into(), Json::Bool(true)));
    }
    Json::Obj(fields)
}

/// Stream the annotated trace as NDJSON, propagating I/O errors.
pub fn write_annotated<W: Write>(
    trace: &Trace,
    ann: &CausalAnnotations,
    w: &mut W,
) -> io::Result<()> {
    header_json(trace, ann).write_to(w)?;
    w.write_all(b"\n")?;
    for i in 0..trace.records.len() {
        record_json(trace, ann, i).write_to(w)?;
        w.write_all(b"\n")?;
    }
    Ok(())
}

/// Render the annotated trace to a string.
pub fn annotated_to_string(trace: &Trace, ann: &CausalAnnotations) -> String {
    let mut out = Vec::new();
    write_annotated(trace, ann, &mut out).expect("string write cannot fail");
    String::from_utf8(out).expect("JSON is UTF-8")
}

/// Validate the header line. Returns the declared `first_failure` seq.
pub fn check_annotated_header(line: &str) -> Result<Option<u64>, String> {
    let v = Json::parse(line).map_err(|e| format!("not valid JSON: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(|s| s.as_str())
        .ok_or("header is missing the `schema` string")?;
    if schema != ANNOTATED_SCHEMA {
        return Err(format!(
            "header schema is `{schema}`, expected `{ANNOTATED_SCHEMA}`"
        ));
    }
    let version = v
        .get("version")
        .and_then(|x| x.as_u64())
        .ok_or("header is missing the `version` number")?;
    if version != ANNOTATED_VERSION {
        return Err(format!(
            "unsupported annotated-trace version {version} (this reader understands {ANNOTATED_VERSION})"
        ));
    }
    let Some(Json::Obj(_)) = v.get("meta") else {
        return Err("header is missing the `meta` object".into());
    };
    match v.get("first_failure") {
        None => Err("header is missing the `first_failure` field".into()),
        Some(Json::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| "`first_failure` must be a sequence number or null".into()),
    }
}

/// Validate one record line. Returns the record's `seq` and whether it
/// carries the `first_failure` marker.
pub fn check_annotated_record(line: &str) -> Result<(u64, bool), String> {
    let v = Json::parse(line).map_err(|e| format!("not valid JSON: {e}"))?;
    let Json::Obj(_) = v else {
        return Err("record line is not a JSON object".into());
    };
    for field in ANNOTATED_REQUIRED_FIELDS {
        let Some(val) = v.get(field) else {
            return Err(format!("missing required field `{field}`"));
        };
        let ok = match *field {
            "file" => val.as_str().is_some(),
            "op" => matches!(val, Json::Obj(_) | Json::Str(_)),
            "locks_held" | "clock" => val
                .as_arr()
                .is_some_and(|a| a.iter().all(|x| x.as_u64().is_some())),
            _ => val.as_u64().is_some(),
        };
        if !ok {
            return Err(format!("field `{field}` has the wrong type"));
        }
    }
    let thread = v.get("thread").and_then(|x| x.as_u64()).unwrap_or(0) as usize;
    let clock = v.get("clock").and_then(|x| x.as_arr()).unwrap_or(&[]);
    match clock.get(thread).and_then(|x| x.as_u64()) {
        Some(own) if own >= 1 => {}
        _ => {
            return Err(format!(
                "clock has no positive component for the executing thread {thread}"
            ))
        }
    }
    if let Some(hb) = v.get("hb_from") {
        let ok = hb
            .as_arr()
            .is_some_and(|a| !a.is_empty() && a.iter().all(|x| x.as_u64().is_some()));
        if !ok {
            return Err(
                "`hb_from`, when present, must be a non-empty array of sequence numbers".into(),
            );
        }
    }
    if let Some(ff) = v.get("first_failure") {
        if !matches!(ff, Json::Bool(true)) {
            return Err("`first_failure` on a record must be literally true".into());
        }
    }
    let seq = v
        .get("seq")
        .and_then(|x| x.as_u64())
        .expect("checked above");
    Ok((seq, v.get("first_failure").is_some()))
}

/// Validate a whole annotated NDJSON document: header, every record, and
/// the header/record agreement on the first-failure marker. Returns the
/// number of record lines.
pub fn check_annotated(text: &str) -> Result<u64, String> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let Some((_, header)) = lines.next() else {
        return Err("empty document: expected an annotated-trace header line".into());
    };
    let declared = check_annotated_header(header).map_err(|e| format!("line 1: {e}"))?;
    let mut records = 0u64;
    let mut flagged = None;
    for (i, line) in lines {
        let (seq, is_ff) =
            check_annotated_record(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        if is_ff {
            if flagged.is_some() {
                return Err(format!("line {}: second `first_failure` record", i + 1));
            }
            flagged = Some(seq);
        }
        records += 1;
    }
    if declared != flagged {
        return Err(format!(
            "header declares first_failure {declared:?} but the records mark {flagged:?}"
        ));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hb::annotate_trace;
    use mtt_instrument::{Event, EventSink, Loc, LockId, Op, ThreadId, VarId};
    use mtt_trace::TraceCollector;
    use std::sync::Arc;

    fn sample_trace(fail: bool) -> Trace {
        let mut c = TraceCollector::new();
        let ops = [
            (0u32, Op::ThreadStart),
            (0, Op::Spawn { child: ThreadId(1) }),
            (1, Op::ThreadStart),
            (
                1,
                Op::VarWrite {
                    var: VarId(0),
                    value: 1,
                },
            ),
            (
                1,
                if fail {
                    Op::AssertFail { label: 0 }
                } else {
                    Op::Yield
                },
            ),
            (1, Op::ThreadExit),
        ];
        for (seq, (t, op)) in ops.into_iter().enumerate() {
            c.on_event(&Event {
                seq: seq as u64,
                time: seq as u64,
                thread: ThreadId(t),
                loc: Loc::new("p", seq as u32 + 1),
                op,
                locks_held: Arc::from(Vec::<LockId>::new()),
            });
        }
        let mut t = c.into_trace();
        t.meta.program = "sample".into();
        t
    }

    #[test]
    fn roundtrip_validates() {
        let trace = sample_trace(true);
        let ann = annotate_trace(&trace);
        assert_eq!(ann.first_failure, Some(4));
        let text = annotated_to_string(&trace, &ann);
        assert_eq!(check_annotated(&text), Ok(trace.records.len() as u64));
        assert!(text.lines().next().unwrap().contains(ANNOTATED_SCHEMA));
        assert!(text.contains("\"first_failure\":true"));
        assert!(
            text.contains("\"hb_from\":[1]"),
            "start acquired from spawn"
        );
    }

    #[test]
    fn passing_trace_has_null_first_failure() {
        let trace = sample_trace(false);
        let ann = annotate_trace(&trace);
        assert_eq!(ann.first_failure, None);
        let text = annotated_to_string(&trace, &ann);
        assert_eq!(check_annotated(&text), Ok(6));
        assert!(text
            .lines()
            .next()
            .unwrap()
            .contains("\"first_failure\":null"));
    }

    #[test]
    fn checker_rejects_malformed_documents() {
        assert!(check_annotated("").is_err());
        assert!(check_annotated("not json\n").is_err());
        assert!(check_annotated("{\"schema\":\"other\"}\n").is_err());
        let trace = sample_trace(true);
        let ann = annotate_trace(&trace);
        let good = annotated_to_string(&trace, &ann);
        // Wrong version.
        let bad = good.replacen("\"version\":1", "\"version\":99", 1);
        assert!(check_annotated(&bad).unwrap_err().contains("version"));
        // Drop a record's clock.
        let bad = good.replace("\"clock\":", "\"clokk\":");
        assert!(check_annotated(&bad).unwrap_err().contains("clock"));
        // Header/record disagreement on the failure marker.
        let bad = good.replacen("\"first_failure\":4", "\"first_failure\":null", 1);
        assert!(check_annotated(&bad).unwrap_err().contains("declares"));
    }

    #[test]
    fn write_propagates_io_errors() {
        struct FullDisk;
        impl std::io::Write for FullDisk {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "disk full",
                ))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let trace = sample_trace(true);
        let ann = annotate_trace(&trace);
        assert!(write_annotated(&trace, &ann, &mut FullDisk).is_err());
    }
}
