//! # mtt-causal — causal annotation of execution traces
//!
//! The execution-level observability layer over `mtt-trace`: given a
//! recorded event stream, compute per-event **vector clocks** and
//! **happens-before edges** from the model's synchronization operations
//! (thread create/join, lock acquire/release, wait/notify, semaphores,
//! barriers, atomic RMW), and surface them three ways:
//!
//! * [`annotated`] — a versioned NDJSON *annotated trace* extension of the
//!   standard trace format, with a `mtt metrics-check`-style schema
//!   validator ([`check_annotated`]).
//! * [`timeline`] — a human-readable per-thread schedule timeline (aligned
//!   columns, lock-hold bars, cross-thread HB arrows, first-failure
//!   highlight) in text and CSV.
//! * [`diff`] — an LCS alignment of a failing against a passing trace of
//!   the same program, reporting the *divergence window* and the critical
//!   events between divergence and failure.
//! * [`fingerprint`] — a canonical 128-bit hash of the HB partial order
//!   ([`TraceFingerprint`]), equal for two executions iff they are the
//!   same Mazurkiewicz trace; the unit of schedule-coverage counting.
//!
//! [`clock::VectorClock`] is the canonical vector-clock implementation;
//! `mtt-race`'s FastTrack detector re-exports and reuses it. All renderings
//! are pure functions of their input traces, so every default output is
//! byte-deterministic.

pub mod annotated;
pub mod clock;
pub mod diff;
pub mod fingerprint;
pub mod hb;
pub mod timeline;

pub use annotated::{
    annotated_to_string, check_annotated, check_annotated_header, check_annotated_record,
    write_annotated, ANNOTATED_REQUIRED_FIELDS, ANNOTATED_SCHEMA, ANNOTATED_VERSION,
};
pub use clock::VectorClock;
pub use diff::{TraceDiff, DIFF_LCS_CAP};
pub use fingerprint::{fingerprint_trace, Fingerprinter, TraceFingerprint};
pub use hb::{
    annotate_trace, concurrent, first_failure_seq, happens_before, CausalAnnotations, CausalNote,
    HbAnnotator,
};
pub use timeline::{op_label, render_timeline, thread_label, timeline_csv};
