//! The vector-clock lattice underlying every happens-before computation.
//!
//! This is the canonical home of [`VectorClock`]; `mtt-race` re-exports it
//! so the FastTrack detector and the causal annotator share one
//! implementation (and one set of algebraic laws, property-tested in this
//! crate's `tests/props.rs`).

use mtt_instrument::ThreadId;

/// A grow-on-demand vector clock.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock {
    clocks: Vec<u32>,
}

impl VectorClock {
    /// The zero clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Component for `t` (0 when never set).
    #[inline]
    pub fn get(&self, t: ThreadId) -> u32 {
        self.clocks.get(t.index()).copied().unwrap_or(0)
    }

    /// Set component `t`.
    pub fn set(&mut self, t: ThreadId, v: u32) {
        if self.clocks.len() <= t.index() {
            self.clocks.resize(t.index() + 1, 0);
        }
        self.clocks[t.index()] = v;
    }

    /// Increment component `t`, returning the new value.
    pub fn tick(&mut self, t: ThreadId) -> u32 {
        let v = self.get(t) + 1;
        self.set(t, v);
        v
    }

    /// Pointwise maximum (join).
    pub fn join(&mut self, other: &VectorClock) {
        if self.clocks.len() < other.clocks.len() {
            self.clocks.resize(other.clocks.len(), 0);
        }
        for (i, &v) in other.clocks.iter().enumerate() {
            if self.clocks[i] < v {
                self.clocks[i] = v;
            }
        }
    }

    /// Pointwise `self ≤ other` (happens-before or equal).
    pub fn le(&self, other: &VectorClock) -> bool {
        self.clocks
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.clocks.get(i).copied().unwrap_or(0))
    }

    /// Strict pointwise order: `self ≤ other` and the clocks differ.
    pub fn lt(&self, other: &VectorClock) -> bool {
        self.le(other) && !other.le(self)
    }

    /// Neither clock is below the other: the two timestamps are causally
    /// unordered.
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        !self.le(other) && !other.le(self)
    }

    /// The raw components (trailing threads the clock never saw are absent,
    /// which is the same as a 0 entry). Used by the annotated-trace codec.
    pub fn components(&self) -> &[u32] {
        &self.clocks
    }

    /// Rebuild a clock from raw components (annotated-trace decoding).
    pub fn from_components(clocks: Vec<u32>) -> Self {
        VectorClock { clocks }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_helpers() {
        let mut a = VectorClock::new();
        a.set(ThreadId(0), 2);
        let mut b = a.clone();
        b.tick(ThreadId(1));
        assert!(a.le(&b));
        assert!(a.lt(&b));
        assert!(!b.lt(&a));
        assert!(!a.lt(&a));
        let mut c = VectorClock::new();
        c.set(ThreadId(1), 5);
        assert!(a.concurrent_with(&c));
        assert!(!a.concurrent_with(&b));
    }

    #[test]
    fn components_roundtrip() {
        let mut a = VectorClock::new();
        a.set(ThreadId(2), 7);
        assert_eq!(a.components(), &[0, 0, 7]);
        let b = VectorClock::from_components(a.components().to_vec());
        assert_eq!(a, b);
    }
}
