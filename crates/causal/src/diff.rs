//! Failing-vs-passing trace alignment.
//!
//! [`TraceDiff::compute`] aligns two traces of the same program with a
//! longest-common-subsequence over canonical event keys — (thread, file,
//! line, operation with data values erased) — so that the same program
//! action matches across runs even when the observed values differ. The
//! report names the **divergence window**: the first position where the
//! schedules split (which thread ran in each run), and the *critical
//! events* — actions only the failing run performed between the divergence
//! and its first-failure event.
//!
//! The DP is quadratic, so traces longer than [`DIFF_LCS_CAP`] events (after
//! common prefix/suffix stripping) are aligned only up to the cap; the
//! remainder is reported as unmatched and the diff says so via
//! [`TraceDiff::truncated`] — a bounded cost, never a silent lie.

use crate::hb::first_failure_seq;
use crate::timeline::{op_label, thread_label};
use mtt_instrument::Op;
use mtt_trace::{Trace, TraceRecord};

/// Maximum number of events per side entering the quadratic LCS (after
/// common prefix/suffix stripping).
pub const DIFF_LCS_CAP: usize = 2000;

/// How many critical-window events the text rendering lists.
const CRITICAL_SHOWN: usize = 20;

/// Erase run-specific data values so the same program action compares
/// equal across runs.
fn canon_op(op: Op) -> Op {
    match op {
        Op::VarRead { var, .. } => Op::VarRead { var, value: 0 },
        Op::VarWrite { var, .. } => Op::VarWrite { var, value: 0 },
        Op::VarRmw { var, .. } => Op::VarRmw {
            var,
            old: 0,
            new: 0,
        },
        other => other,
    }
}

/// The canonical alignment key of one record.
fn key(r: &TraceRecord) -> (u32, &str, u32, Op) {
    (r.thread, r.file.as_str(), r.line, canon_op(r.op))
}

/// The computed alignment of a failing against a passing trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceDiff {
    /// Events in the failing trace.
    pub fail_len: usize,
    /// Events in the passing trace.
    pub pass_len: usize,
    /// Length of the identical schedule prefix — the divergence index.
    pub common_prefix: usize,
    /// Length of the longest common subsequence.
    pub lcs_len: usize,
    /// Indices (into the failing trace) of events with no match.
    pub fail_only: Vec<usize>,
    /// Indices (into the passing trace) of events with no match.
    pub pass_only: Vec<usize>,
    /// Index (into the failing trace) of the first-failure event.
    pub first_failure: Option<usize>,
    /// Failing-only indices between the divergence and the first failure —
    /// the critical window.
    pub critical: Vec<usize>,
    /// True when one side exceeded [`DIFF_LCS_CAP`] and the tail was left
    /// unaligned.
    pub truncated: bool,
}

impl TraceDiff {
    /// Align `fail` against `pass`.
    pub fn compute(fail: &Trace, pass: &Trace) -> TraceDiff {
        let fk: Vec<_> = fail.records.iter().map(key).collect();
        let pk: Vec<_> = pass.records.iter().map(key).collect();
        let (n, m) = (fk.len(), pk.len());

        let mut prefix = 0;
        while prefix < n && prefix < m && fk[prefix] == pk[prefix] {
            prefix += 1;
        }
        let mut suffix = 0;
        while suffix < n - prefix && suffix < m - prefix && fk[n - 1 - suffix] == pk[m - 1 - suffix]
        {
            suffix += 1;
        }

        // LCS over the distinct middles, capped.
        let fmid = &fk[prefix..n - suffix];
        let pmid = &pk[prefix..m - suffix];
        let truncated = fmid.len() > DIFF_LCS_CAP || pmid.len() > DIFF_LCS_CAP;
        let fa = &fmid[..fmid.len().min(DIFF_LCS_CAP)];
        let pa = &pmid[..pmid.len().min(DIFF_LCS_CAP)];
        let (rows, cols) = (fa.len(), pa.len());
        let mut dp = vec![0u32; (rows + 1) * (cols + 1)];
        let at = |i: usize, j: usize| i * (cols + 1) + j;
        for i in (0..rows).rev() {
            for j in (0..cols).rev() {
                dp[at(i, j)] = if fa[i] == pa[j] {
                    dp[at(i + 1, j + 1)] + 1
                } else {
                    dp[at(i + 1, j)].max(dp[at(i, j + 1)])
                };
            }
        }
        let mut fail_matched = vec![false; n];
        let mut pass_matched = vec![false; m];
        for i in 0..prefix {
            fail_matched[i] = true;
            pass_matched[i] = true;
        }
        for s in 0..suffix {
            fail_matched[n - 1 - s] = true;
            pass_matched[m - 1 - s] = true;
        }
        let (mut i, mut j) = (0, 0);
        while i < rows && j < cols {
            if fa[i] == pa[j] {
                fail_matched[prefix + i] = true;
                pass_matched[prefix + j] = true;
                i += 1;
                j += 1;
            } else if dp[at(i + 1, j)] >= dp[at(i, j + 1)] {
                i += 1;
            } else {
                j += 1;
            }
        }
        let lcs_len = prefix + suffix + dp[at(0, 0)] as usize;
        let fail_only: Vec<usize> = (0..n).filter(|&i| !fail_matched[i]).collect();
        let pass_only: Vec<usize> = (0..m).filter(|&j| !pass_matched[j]).collect();

        let first_failure =
            first_failure_seq(fail).and_then(|seq| fail.records.iter().position(|r| r.seq == seq));
        let critical = fail_only
            .iter()
            .copied()
            .filter(|&i| i >= prefix && first_failure.is_none_or(|ff| i <= ff))
            .collect();
        TraceDiff {
            fail_len: n,
            pass_len: m,
            common_prefix: prefix,
            lcs_len,
            fail_only,
            pass_only,
            first_failure,
            critical,
            truncated,
        }
    }

    /// The divergence index, when the schedules split at all.
    pub fn divergence(&self) -> Option<usize> {
        (self.common_prefix < self.fail_len || self.common_prefix < self.pass_len)
            .then_some(self.common_prefix)
    }

    fn describe(trace: &Trace, idx: usize) -> String {
        let r = &trace.records[idx];
        let tags = if r.bug_tags.is_empty() {
            String::new()
        } else {
            format!("  [{}]", r.bug_tags.join(","))
        };
        format!(
            "seq {}  {}  {}  @ {}:{}{tags}",
            r.seq,
            thread_label(&trace.meta, r.thread),
            op_label(&r.op, &trace.meta),
            r.file,
            r.line
        )
    }

    /// Render the divergence-window report as text.
    pub fn render(&self, fail: &Trace, pass: &Trace) -> String {
        let mut out = format!(
            "trace diff: {}  fail seed {} ({} events)  vs  pass seed {} ({} events)\n",
            fail.meta.program, fail.meta.seed, self.fail_len, pass.meta.seed, self.pass_len
        );
        out.push_str(&format!(
            "  aligned: {} events (LCS), common schedule prefix: {}{}\n",
            self.lcs_len,
            self.common_prefix,
            if self.truncated {
                "  (long middle: alignment capped)"
            } else {
                ""
            }
        ));
        match self.divergence() {
            None => out.push_str("  divergence: none — the schedules are identical\n"),
            Some(d) => {
                out.push_str(&format!("  divergence at index {d}:\n"));
                match fail.records.get(d) {
                    Some(_) => {
                        out.push_str(&format!("    fail ran  {}\n", Self::describe(fail, d)))
                    }
                    None => out.push_str("    fail ended here\n"),
                }
                match pass.records.get(d) {
                    Some(_) => {
                        out.push_str(&format!("    pass ran  {}\n", Self::describe(pass, d)))
                    }
                    None => out.push_str("    pass ended here\n"),
                }
            }
        }
        match self.first_failure {
            Some(ff) => out.push_str(&format!("  first failure: {}\n", Self::describe(fail, ff))),
            None => out.push_str("  first failure: none recorded in the failing trace\n"),
        }
        out.push_str(&format!(
            "  critical window: {} failing-only event(s) between divergence and failure\n",
            self.critical.len()
        ));
        for &i in self.critical.iter().take(CRITICAL_SHOWN) {
            out.push_str(&format!("    {}\n", Self::describe(fail, i)));
        }
        if self.critical.len() > CRITICAL_SHOWN {
            out.push_str(&format!(
                "    ... and {} more\n",
                self.critical.len() - CRITICAL_SHOWN
            ));
        }
        out.push_str(&format!(
            "  unmatched: {} fail-only, {} pass-only event(s)\n",
            self.fail_only.len(),
            self.pass_only.len()
        ));
        out
    }

    /// The alignment as CSV: one row per event of both traces.
    pub fn to_csv(&self, fail: &Trace, pass: &Trace) -> String {
        let mut out = String::from("side,index,seq,thread,op,file,line,matched,critical\n");
        let fail_only: std::collections::BTreeSet<_> = self.fail_only.iter().copied().collect();
        let pass_only: std::collections::BTreeSet<_> = self.pass_only.iter().copied().collect();
        let critical: std::collections::BTreeSet<_> = self.critical.iter().copied().collect();
        let mut push = |side: &str, trace: &Trace, idx: usize, matched: bool, crit: bool| {
            let r = &trace.records[idx];
            out.push_str(&format!(
                "{side},{idx},{},{},{},{},{},{},{}\n",
                r.seq,
                thread_label(&trace.meta, r.thread),
                op_label(&r.op, &trace.meta),
                r.file,
                r.line,
                matched,
                crit
            ));
        };
        for i in 0..self.fail_len {
            push(
                "fail",
                fail,
                i,
                !fail_only.contains(&i),
                critical.contains(&i),
            );
        }
        for j in 0..self.pass_len {
            push("pass", pass, j, !pass_only.contains(&j), false);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtt_instrument::{Event, EventSink, Loc, LockId, Op, ThreadId, VarId};
    use mtt_trace::TraceCollector;
    use std::sync::Arc;

    fn trace_of(steps: &[(u32, Op)], manifested: bool) -> Trace {
        let mut c = TraceCollector::new();
        for (seq, (t, op)) in steps.iter().enumerate() {
            c.on_event(&Event {
                seq: seq as u64,
                time: seq as u64,
                thread: ThreadId(*t),
                loc: Loc::new("p", 1),
                op: *op,
                locks_held: Arc::from(Vec::<LockId>::new()),
            });
        }
        let mut t = c.into_trace();
        t.meta.program = "demo".into();
        if manifested {
            t.meta.manifested_bugs = vec!["bug".into()];
            if let Some(last) = t.records.last_mut() {
                last.bug_tags = vec!["bug".into()];
            }
        }
        t
    }

    fn wr(t: u32, value: i64) -> (u32, Op) {
        (
            t,
            Op::VarWrite {
                var: VarId(0),
                value,
            },
        )
    }

    #[test]
    fn identical_schedules_have_no_divergence() {
        let a = trace_of(&[wr(0, 1), wr(1, 2)], false);
        let d = TraceDiff::compute(&a, &a);
        assert_eq!(d.divergence(), None);
        assert_eq!(d.lcs_len, 2);
        assert!(d.fail_only.is_empty() && d.pass_only.is_empty());
        assert!(d.render(&a, &a).contains("divergence: none"));
    }

    #[test]
    fn value_differences_do_not_break_alignment() {
        // Same schedule, different observed values: canonical keys align.
        let fail = trace_of(&[wr(0, 1), wr(1, 99)], false);
        let pass = trace_of(&[wr(0, 1), wr(1, 2)], false);
        let d = TraceDiff::compute(&fail, &pass);
        assert_eq!(d.divergence(), None);
        assert_eq!(d.lcs_len, 2);
    }

    #[test]
    fn divergence_and_critical_window_are_reported() {
        // fail: t0 writes, then t1 sneaks in two writes, t0 writes again
        // (the last write is the manifestation point).
        let fail = trace_of(&[wr(0, 0), wr(1, 1), wr(1, 2), wr(0, 3)], true);
        // pass: t0 runs both its writes first.
        let pass = trace_of(&[wr(0, 0), wr(0, 3), wr(1, 1), wr(1, 2)], false);
        let d = TraceDiff::compute(&fail, &pass);
        assert_eq!(d.divergence(), Some(1));
        assert_eq!(d.first_failure, Some(3));
        // Between divergence (1) and failure (3) the failing run did
        // something the aligned passing run didn't.
        assert!(!d.critical.is_empty());
        let text = d.render(&fail, &pass);
        assert!(text.contains("divergence at index 1"));
        assert!(text.contains("fail ran  seq 1  t1"));
        assert!(text.contains("pass ran  seq 1  t0"));
        assert!(text.contains("first failure: seq 3"));
        let csv = d.to_csv(&fail, &pass);
        assert_eq!(csv.lines().count(), 1 + 4 + 4);
        assert!(csv.contains("fail,"));
        assert!(csv.contains("pass,"));
    }

    #[test]
    fn length_difference_is_a_divergence() {
        let fail = trace_of(&[wr(0, 0), wr(0, 1), wr(1, 2)], false);
        let pass = trace_of(&[wr(0, 0), wr(0, 1)], false);
        let d = TraceDiff::compute(&fail, &pass);
        assert_eq!(d.divergence(), Some(2));
        assert!(d.render(&fail, &pass).contains("pass ended here"));
    }

    #[test]
    fn long_middles_are_capped_not_quadratic() {
        let steps_fail: Vec<(u32, Op)> = (0..DIFF_LCS_CAP + 50).map(|i| wr(0, i as i64)).collect();
        let steps_pass: Vec<(u32, Op)> = (0..DIFF_LCS_CAP + 50).map(|i| wr(1, i as i64)).collect();
        let fail = trace_of(&steps_fail, false);
        let pass = trace_of(&steps_pass, false);
        let d = TraceDiff::compute(&fail, &pass);
        assert!(d.truncated);
        assert!(d.render(&fail, &pass).contains("capped"));
    }
}
