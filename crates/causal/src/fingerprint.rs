//! Canonical Mazurkiewicz-trace fingerprints.
//!
//! A [`TraceFingerprint`] is a stable 128-bit hash of the happens-before
//! *partial order* of an execution, not of its linearization: two runs hash
//! equal exactly when they are the same Mazurkiewicz trace — the same
//! per-thread event sequences with the same dependence edges between them —
//! and reordering *independent* operations never changes the value. This is
//! what lets the schedule-coverage layer (`mtt-coverage`,
//! `ScheduleCoverage`) count *genuinely distinct* schedules instead of
//! distinct interleavings.
//!
//! The construction:
//!
//! 1. Replay the event stream through a dependence-aware vector-clock
//!    machine. It mirrors [`crate::hb::HbAnnotator`]'s synchronization
//!    edges (release→acquire, spawn→start, exit→join, notify→wake,
//!    barrier, semaphore, atomic RMW chains) **plus** per-variable
//!    conflict edges: every access joins the clock of the last write to
//!    the variable, and a write additionally joins the accumulated clocks
//!    of the reads since that write. Read–read pairs stay independent.
//!    Sync-only clocks would not do: two *racing* writes are concurrent
//!    under the sync order, so swapping them would not change any clock —
//!    but it is a different trace, and the conflict edges see that.
//! 2. Fold each thread's events, **in program order**, into a per-thread
//!    running hash over (location, op kind, resource ids, dependence
//!    clock). Sequence numbers, virtual time, and data values are
//!    excluded — they vary across equivalent linearizations or replays.
//! 3. Combine the per-thread lanes in thread-id order.
//!
//! Per-thread order and the dependence clocks are invariants of the
//! equivalence class (clock joins happen only along dependence edges, and
//! dependent events keep their relative order in every linearization of
//! the same trace), so the whole fingerprint is too. Property tests in
//! `tests/props.rs` pin both directions of the contract.

use crate::clock::VectorClock;
use mtt_instrument::{AccessKind, Event, EventSink, Op, ThreadId};
use mtt_trace::Trace;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013B;

/// A canonical fingerprint of one Mazurkiewicz trace (HB-equivalence class
/// of executions). Rendered as 32 lowercase hex digits.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceFingerprint(pub u128);

impl TraceFingerprint {
    /// The canonical 32-hex-digit rendering (journal / run-log form).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl fmt::Display for TraceFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::Debug for TraceFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TraceFingerprint({:032x})", self.0)
    }
}

/// Incremental FNV-1a-128 state.
#[derive(Clone, Copy)]
struct Fnv(u128);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }
}

/// Dependence resources a clock can flow through (the sync half mirrors
/// `HbAnnotator`'s private key set).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Res {
    Lock(u32),
    Cond(u32),
    Sem(u32),
    Barrier(u32),
    /// Per-variable sync clock for atomic RMW chains.
    Atomic(u32),
    /// Spawn→start handoff (consumed at `ThreadStart`).
    Start(u32),
    /// Exit→join handoff.
    Exit(u32),
}

/// [`EventSink`] computing a [`TraceFingerprint`] over a live or replayed
/// event stream in O(events) time and O(threads + resources) space — cheap
/// enough to ride along on every campaign run.
#[derive(Clone, Debug, Default)]
pub struct Fingerprinter {
    threads: HashMap<ThreadId, VectorClock>,
    sync: HashMap<Res, VectorClock>,
    /// Clock of the last write per plain variable.
    last_write: HashMap<u32, VectorClock>,
    /// Joined clocks of the reads since the last write, per variable.
    reads: HashMap<u32, VectorClock>,
    /// Per-thread (event count, running lane hash), keyed by thread id so
    /// the final fold is in canonical order.
    lanes: BTreeMap<u32, (u64, u128)>,
    events: u64,
}

impl Fingerprinter {
    /// Fresh fingerprinter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Events consumed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    fn clock(&mut self, t: ThreadId) -> &mut VectorClock {
        self.threads.entry(t).or_insert_with(|| {
            let mut vc = VectorClock::new();
            vc.set(t, 1);
            vc
        })
    }

    /// Acquire side of a sync edge: join the resource clock into the
    /// thread's.
    fn join_sync(&mut self, t: ThreadId, key: Res, consume: bool) {
        let src = if consume {
            self.sync.remove(&key)
        } else {
            self.sync.get(&key).cloned()
        };
        if let Some(src) = src {
            self.clock(t).join(&src);
        }
    }

    /// Release side: publish the thread's post-event snapshot.
    fn publish_sync(&mut self, key: Res, snapshot: &VectorClock) {
        self.sync.entry(key).or_default().join(snapshot);
    }

    /// The fingerprint of everything consumed so far.
    pub fn fingerprint(&self) -> TraceFingerprint {
        let mut h = Fnv::new();
        for (&t, &(count, lane)) in &self.lanes {
            h.write_u32(t);
            h.write(&count.to_le_bytes());
            h.write(&lane.to_le_bytes());
        }
        TraceFingerprint(h.0)
    }
}

/// Feed the structural label of an event: location, op kind, resource ids.
/// Deliberately excluded: `seq`, `time`, data values (they differ between
/// equivalent linearizations or across replay modes).
fn hash_label(h: &mut Fnv, ev: &Event) {
    h.write(ev.loc.file.as_bytes());
    h.write_u32(ev.loc.line);
    match ev.op {
        Op::VarRead { var, .. } => {
            h.write_u32(1);
            h.write_u32(var.0);
        }
        Op::VarWrite { var, .. } => {
            h.write_u32(2);
            h.write_u32(var.0);
        }
        Op::VarRmw { var, .. } => {
            h.write_u32(3);
            h.write_u32(var.0);
        }
        Op::LockRequest { lock } => {
            h.write_u32(4);
            h.write_u32(lock.0);
        }
        Op::LockAcquire { lock } => {
            h.write_u32(5);
            h.write_u32(lock.0);
        }
        Op::LockRelease { lock } => {
            h.write_u32(6);
            h.write_u32(lock.0);
        }
        Op::LockTryFail { lock } => {
            h.write_u32(7);
            h.write_u32(lock.0);
        }
        Op::CondWait { cond, lock } => {
            h.write_u32(8);
            h.write_u32(cond.0);
            h.write_u32(lock.0);
        }
        Op::CondWake { cond, lock } => {
            h.write_u32(9);
            h.write_u32(cond.0);
            h.write_u32(lock.0);
        }
        Op::CondNotify { cond, all } => {
            h.write_u32(10);
            h.write_u32(cond.0);
            h.write_u32(u32::from(all));
        }
        Op::SemRequest { sem } => {
            h.write_u32(11);
            h.write_u32(sem.0);
        }
        Op::SemAcquire { sem } => {
            h.write_u32(12);
            h.write_u32(sem.0);
        }
        Op::SemRelease { sem } => {
            h.write_u32(13);
            h.write_u32(sem.0);
        }
        Op::BarrierArrive { barrier } => {
            h.write_u32(14);
            h.write_u32(barrier.0);
        }
        Op::BarrierPass { barrier } => {
            h.write_u32(15);
            h.write_u32(barrier.0);
        }
        Op::Spawn { child } => {
            h.write_u32(16);
            h.write_u32(child.0);
        }
        Op::JoinRequest { target } => {
            h.write_u32(17);
            h.write_u32(target.0);
        }
        Op::Join { target } => {
            h.write_u32(18);
            h.write_u32(target.0);
        }
        Op::ThreadStart => h.write_u32(19),
        Op::ThreadExit => h.write_u32(20),
        Op::Yield => h.write_u32(21),
        Op::Sleep { ticks } => {
            h.write_u32(22);
            h.write_u32(ticks);
        }
        Op::Point { label } => {
            h.write_u32(23);
            h.write_u32(label);
        }
        Op::AssertFail { label } => {
            h.write_u32(24);
            h.write_u32(label);
        }
    }
}

/// Feed a clock as sparse (index, value) pairs so trailing zeros (threads
/// a clock never saw) cannot perturb the hash.
fn hash_clock(h: &mut Fnv, clock: &VectorClock) {
    for (i, &v) in clock.components().iter().enumerate() {
        if v != 0 {
            h.write_u32(i as u32);
            h.write_u32(v);
        }
    }
}

impl EventSink for Fingerprinter {
    fn on_event(&mut self, ev: &Event) {
        let me = ev.thread;
        // Sync acquire edges — the exact `HbAnnotator` table.
        match ev.op {
            Op::LockAcquire { lock } => self.join_sync(me, Res::Lock(lock.0), false),
            Op::CondWake { cond, lock } => {
                self.join_sync(me, Res::Lock(lock.0), false);
                self.join_sync(me, Res::Cond(cond.0), false);
            }
            Op::SemAcquire { sem } => self.join_sync(me, Res::Sem(sem.0), false),
            Op::BarrierPass { barrier } => self.join_sync(me, Res::Barrier(barrier.0), false),
            Op::VarRmw { var, .. } => self.join_sync(me, Res::Atomic(var.0), false),
            Op::ThreadStart => self.join_sync(me, Res::Start(me.0), true),
            Op::Join { target } => self.join_sync(me, Res::Exit(target.0), false),
            _ => {}
        }
        // Conflict edges: any access sees the last write; a write also
        // sees every read since then. Read–read pairs stay independent.
        if let (Some(var), Some(kind)) = (ev.op.var(), ev.op.access_kind()) {
            if let Some(w) = self.last_write.get(&var.0).cloned() {
                self.clock(me).join(&w);
            }
            if kind == AccessKind::Write {
                if let Some(r) = self.reads.remove(&var.0) {
                    self.clock(me).join(&r);
                }
            }
        }
        self.clock(me).tick(me);
        let snapshot = self.clock(me).clone();
        // Sync release edges.
        match ev.op {
            Op::LockRelease { lock } | Op::CondWait { lock, .. } => {
                self.publish_sync(Res::Lock(lock.0), &snapshot)
            }
            Op::CondNotify { cond, .. } => self.publish_sync(Res::Cond(cond.0), &snapshot),
            Op::SemRelease { sem } => self.publish_sync(Res::Sem(sem.0), &snapshot),
            Op::BarrierArrive { barrier } => self.publish_sync(Res::Barrier(barrier.0), &snapshot),
            Op::VarRmw { var, .. } => self.publish_sync(Res::Atomic(var.0), &snapshot),
            Op::Spawn { child } => self.publish_sync(Res::Start(child.0), &snapshot),
            Op::ThreadExit => self.publish_sync(Res::Exit(me.0), &snapshot),
            _ => {}
        }
        // Conflict bookkeeping.
        if let (Some(var), Some(kind)) = (ev.op.var(), ev.op.access_kind()) {
            match kind {
                AccessKind::Read => self.reads.entry(var.0).or_default().join(&snapshot),
                AccessKind::Write => {
                    self.last_write.insert(var.0, snapshot.clone());
                }
            }
        }
        // Fold into the thread's lane.
        let lane = self.lanes.entry(me.0).or_insert((0, FNV_OFFSET));
        let mut h = Fnv(lane.1);
        hash_label(&mut h, ev);
        hash_clock(&mut h, &snapshot);
        lane.0 += 1;
        lane.1 = h.0;
        self.events += 1;
    }
}

/// Fingerprint a recorded trace by replaying its records.
pub fn fingerprint_trace(trace: &Trace) -> TraceFingerprint {
    let mut f = Fingerprinter::new();
    trace.feed(&mut f);
    f.fingerprint()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtt_instrument::{Loc, LockId, VarId};
    use std::sync::Arc;

    fn ev(seq: u64, thread: u32, op: Op) -> Event {
        Event {
            seq,
            time: seq * 3 + 1,
            thread: ThreadId(thread),
            loc: Loc::new("p", thread + 1),
            op,
            locks_held: Arc::from(Vec::<LockId>::new()),
        }
    }

    fn fp(events: &[Event]) -> TraceFingerprint {
        let mut f = Fingerprinter::new();
        for e in events {
            f.on_event(e);
        }
        f.finish();
        f.fingerprint()
    }

    fn write(var: u32, value: i64) -> Op {
        Op::VarWrite {
            var: VarId(var),
            value,
        }
    }

    fn read(var: u32) -> Op {
        Op::VarRead {
            var: VarId(var),
            value: 0,
        }
    }

    #[test]
    fn hex_form_is_32_digits() {
        let f = fp(&[ev(0, 0, write(0, 1))]);
        assert_eq!(f.to_hex().len(), 32);
        assert_eq!(format!("{f}"), f.to_hex());
    }

    #[test]
    fn independent_interleavings_hash_equal() {
        // Two threads touching disjoint variables: every interleaving is
        // the same Mazurkiewicz trace.
        let a = fp(&[
            ev(0, 0, write(0, 1)),
            ev(1, 1, write(1, 2)),
            ev(2, 0, read(0)),
            ev(3, 1, read(1)),
        ]);
        let b = fp(&[
            ev(0, 1, write(1, 2)),
            ev(1, 1, read(1)),
            ev(2, 0, write(0, 1)),
            ev(3, 0, read(0)),
        ]);
        assert_eq!(a, b);
    }

    #[test]
    fn racing_write_order_distinguishes() {
        // Same events, opposite order of two *dependent* (racing) writes:
        // different trace, different fingerprint. Sync-only clocks would
        // miss this — the conflict edges are what see it.
        let a = fp(&[ev(0, 0, write(0, 1)), ev(1, 1, write(0, 2))]);
        let b = fp(&[ev(0, 1, write(0, 2)), ev(1, 0, write(0, 1))]);
        assert_ne!(a, b);
    }

    #[test]
    fn read_read_pairs_stay_independent() {
        let setup = ev(0, 0, write(0, 7));
        let a = fp(&[setup.clone(), ev(1, 1, read(0)), ev(2, 2, read(0))]);
        let b = fp(&[setup, ev(1, 2, read(0)), ev(2, 1, read(0))]);
        assert_eq!(a, b);
    }

    #[test]
    fn write_read_order_distinguishes() {
        let a = fp(&[ev(0, 0, write(0, 1)), ev(1, 1, read(0))]);
        let b = fp(&[ev(0, 1, read(0)), ev(1, 0, write(0, 1))]);
        assert_ne!(a, b);
    }

    #[test]
    fn lock_handoff_order_distinguishes() {
        let l = LockId(0);
        let crit = |t: u32, base: u64| {
            vec![
                ev(base, t, Op::LockAcquire { lock: l }),
                ev(base + 1, t, Op::LockRelease { lock: l }),
            ]
        };
        let mut a = crit(0, 0);
        a.extend(crit(1, 2));
        let mut b = crit(1, 0);
        b.extend(crit(0, 2));
        assert_ne!(fp(&a), fp(&b));
    }

    #[test]
    fn seq_and_time_and_values_do_not_matter() {
        let a = fp(&[ev(0, 0, write(0, 1)), ev(1, 0, read(0))]);
        let mut shifted = vec![ev(10, 0, write(0, 5)), ev(42, 0, read(0))];
        shifted[0].time = 999;
        shifted[1].time = 1000;
        assert_eq!(a, fp(&shifted));
    }

    #[test]
    fn trace_replay_matches_live_feed() {
        use mtt_trace::{TraceCollector, TraceRecord};
        let events = vec![
            ev(0, 0, Op::Spawn { child: ThreadId(1) }),
            ev(1, 1, Op::ThreadStart),
            ev(2, 1, write(0, 3)),
            ev(3, 1, Op::ThreadExit),
            ev(
                4,
                0,
                Op::Join {
                    target: ThreadId(1),
                },
            ),
        ];
        let live = fp(&events);
        let mut c = TraceCollector::new();
        for e in &events {
            c.trace.records.push(TraceRecord::from_event(e));
        }
        assert_eq!(fingerprint_trace(&c.into_trace()), live);
    }
}
