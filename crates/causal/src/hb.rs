//! Per-event happens-before annotation.
//!
//! [`HbAnnotator`] replays an event stream and stamps every event with the
//! vector clock of its thread *after* the event took effect, plus the
//! sequence numbers of the release-side events it synchronized with. The
//! sync edges mirror the model's synchronization order exactly as the
//! FastTrack detector in `mtt-race` interprets it: lock release→acquire,
//! notify→wake (through both the condition and the re-acquired lock),
//! semaphore release→acquire, barrier arrive→pass, atomic RMW→RMW,
//! spawn→start and exit→join.
//!
//! Unlike the race detector — which ticks a thread's clock only at release
//! edges, the minimum FastTrack needs — the annotator ticks at *every*
//! event, so each event owns a distinct timestamp and the induced
//! happens-before relation is a strict partial order over events (the
//! property-tested contract of [`happens_before`]).

use crate::clock::VectorClock;
use mtt_instrument::{Event, EventSink, Op, ThreadId};
use mtt_trace::Trace;
use std::collections::HashMap;

/// The causal annotation of one event: its vector-clock timestamp and the
/// incoming cross-thread synchronization edges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CausalNote {
    /// Sequence number of the annotated event.
    pub seq: u64,
    /// Executing thread.
    pub thread: u32,
    /// The thread's vector clock after the event.
    pub clock: VectorClock,
    /// Sequence numbers of the release-side events this event acquired
    /// from, *when the acquisition taught the thread something new* — a
    /// re-acquire of a lock the thread itself just released produces no
    /// edge. Sorted, deduplicated; at most two entries (a `CondWake` joins
    /// both the lock and the condition clock).
    pub hb_from: Vec<u64>,
}

/// The full causal annotation of a trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CausalAnnotations {
    /// One note per trace record, in record order.
    pub notes: Vec<CausalNote>,
    /// Sequence number of the first-failure event, when the trace contains
    /// one (see [`first_failure_seq`]).
    pub first_failure: Option<u64>,
}

impl CausalAnnotations {
    /// The note for a given sequence number, if present.
    pub fn note(&self, seq: u64) -> Option<&CausalNote> {
        self.notes.iter().find(|n| n.seq == seq)
    }
}

/// Does event `a` happen before event `b` under the annotated sync order?
///
/// Strict: `happens_before(a, a)` is false, and two causally unordered
/// events are ordered in neither direction.
pub fn happens_before(a: &CausalNote, b: &CausalNote) -> bool {
    a.seq != b.seq && a.clock.get(ThreadId(a.thread)) <= b.clock.get(ThreadId(a.thread))
}

/// Neither `happens_before(a, b)` nor `happens_before(b, a)`: the two
/// events are concurrent.
pub fn concurrent(a: &CausalNote, b: &CausalNote) -> bool {
    a.seq != b.seq && !happens_before(a, b) && !happens_before(b, a)
}

/// The trace's first-failure event:
///
/// 1. the first `AssertFail` record, when the program asserts; otherwise
/// 2. the last record tagged with a bug that *manifested* in this execution
///    (for value-oracle bugs such as a lost update, the failure becomes
///    visible at the final access of the damaged variable); otherwise
/// 3. `None` — the run passed.
pub fn first_failure_seq(trace: &Trace) -> Option<u64> {
    if let Some(r) = trace
        .records
        .iter()
        .find(|r| matches!(r.op, Op::AssertFail { .. }))
    {
        return Some(r.seq);
    }
    trace
        .records
        .iter()
        .rev()
        .find(|r| {
            r.bug_tags
                .iter()
                .any(|t| trace.meta.manifested_bugs.iter().any(|m| m == t))
        })
        .map(|r| r.seq)
}

/// Annotate a recorded trace: replay its records through an
/// [`HbAnnotator`] and attach the first-failure marker.
pub fn annotate_trace(trace: &Trace) -> CausalAnnotations {
    let mut hb = HbAnnotator::new();
    trace.feed(&mut hb);
    CausalAnnotations {
        notes: hb.notes,
        first_failure: first_failure_seq(trace),
    }
}

/// Synchronization resources a release edge can flow through.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum ResKey {
    Lock(u32),
    Cond(u32),
    Sem(u32),
    Barrier(u32),
    /// Per-variable sync clock for atomic RMW chains.
    Atomic(u32),
    /// Spawn→start handoff for a child thread (consumed at `ThreadStart`).
    Start(u32),
    /// Exit→join handoff for a finished thread.
    Exit(u32),
}

/// The release-side state of one resource: the joined clock of every
/// release into it, and the sequence number of the latest one.
struct Source {
    clock: VectorClock,
    last: u64,
}

/// [`EventSink`] computing [`CausalNote`]s for a live or replayed stream.
#[derive(Default)]
pub struct HbAnnotator {
    threads: HashMap<ThreadId, VectorClock>,
    sources: HashMap<ResKey, Source>,
    /// Accumulated notes, in event order.
    pub notes: Vec<CausalNote>,
}

impl HbAnnotator {
    /// Fresh annotator.
    pub fn new() -> Self {
        Self::default()
    }

    fn clock(&mut self, t: ThreadId) -> &mut VectorClock {
        self.threads.entry(t).or_insert_with(|| {
            let mut vc = VectorClock::new();
            vc.set(t, 1);
            vc
        })
    }

    /// Acquire edge: join the resource clock into the thread's, recording
    /// the source event when the join is informative.
    fn acquire(&mut self, t: ThreadId, key: ResKey, hb_from: &mut Vec<u64>, consume: bool) {
        let src = if consume {
            self.sources.remove(&key)
        } else {
            self.sources.get(&key).map(|s| Source {
                clock: s.clock.clone(),
                last: s.last,
            })
        };
        if let Some(src) = src {
            let tc = self.clock(t);
            if !src.clock.le(tc) {
                hb_from.push(src.last);
            }
            tc.join(&src.clock);
        }
    }

    /// Release edge: push the thread's post-event snapshot into the
    /// resource clock and remember this event as the latest source.
    fn release(&mut self, key: ResKey, snapshot: &VectorClock, seq: u64) {
        let src = self.sources.entry(key).or_insert(Source {
            clock: VectorClock::new(),
            last: seq,
        });
        src.clock.join(snapshot);
        src.last = seq;
    }
}

impl EventSink for HbAnnotator {
    fn on_event(&mut self, ev: &Event) {
        let me = ev.thread;
        let mut hb_from = Vec::new();
        match ev.op {
            Op::LockAcquire { lock } => self.acquire(me, ResKey::Lock(lock.0), &mut hb_from, false),
            Op::CondWake { cond, lock } => {
                self.acquire(me, ResKey::Lock(lock.0), &mut hb_from, false);
                self.acquire(me, ResKey::Cond(cond.0), &mut hb_from, false);
            }
            Op::SemAcquire { sem } => self.acquire(me, ResKey::Sem(sem.0), &mut hb_from, false),
            Op::BarrierPass { barrier } => {
                self.acquire(me, ResKey::Barrier(barrier.0), &mut hb_from, false)
            }
            Op::VarRmw { var, .. } => self.acquire(me, ResKey::Atomic(var.0), &mut hb_from, false),
            Op::ThreadStart => self.acquire(me, ResKey::Start(me.0), &mut hb_from, true),
            Op::Join { target } => self.acquire(me, ResKey::Exit(target.0), &mut hb_from, false),
            _ => {}
        }
        self.clock(me).tick(me);
        let snapshot = self.clock(me).clone();
        match ev.op {
            Op::LockRelease { lock } | Op::CondWait { lock, .. } => {
                self.release(ResKey::Lock(lock.0), &snapshot, ev.seq)
            }
            Op::CondNotify { cond, .. } => self.release(ResKey::Cond(cond.0), &snapshot, ev.seq),
            Op::SemRelease { sem } => self.release(ResKey::Sem(sem.0), &snapshot, ev.seq),
            Op::BarrierArrive { barrier } => {
                self.release(ResKey::Barrier(barrier.0), &snapshot, ev.seq)
            }
            Op::VarRmw { var, .. } => self.release(ResKey::Atomic(var.0), &snapshot, ev.seq),
            Op::Spawn { child } => self.release(ResKey::Start(child.0), &snapshot, ev.seq),
            Op::ThreadExit => self.release(ResKey::Exit(me.0), &snapshot, ev.seq),
            _ => {}
        }
        hb_from.sort_unstable();
        hb_from.dedup();
        self.notes.push(CausalNote {
            seq: ev.seq,
            thread: me.0,
            clock: snapshot,
            hb_from,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtt_instrument::{CondId, Loc, LockId, VarId};
    use std::sync::Arc;

    fn ev(seq: u64, thread: u32, op: Op) -> Event {
        Event {
            seq,
            time: seq,
            thread: ThreadId(thread),
            loc: Loc::new("p", seq as u32 + 1),
            op,
            locks_held: Arc::from(Vec::<LockId>::new()),
        }
    }

    fn notes_for(events: &[Event]) -> Vec<CausalNote> {
        let mut hb = HbAnnotator::new();
        for e in events {
            hb.on_event(e);
        }
        hb.notes
    }

    #[test]
    fn lock_handoff_creates_edge_with_source_seq() {
        let l = LockId(0);
        let notes = notes_for(&[
            ev(0, 0, Op::LockAcquire { lock: l }),
            ev(
                1,
                0,
                Op::VarWrite {
                    var: VarId(0),
                    value: 1,
                },
            ),
            ev(2, 0, Op::LockRelease { lock: l }),
            ev(3, 1, Op::LockAcquire { lock: l }),
            ev(
                4,
                1,
                Op::VarWrite {
                    var: VarId(0),
                    value: 2,
                },
            ),
        ]);
        // t1's acquire synchronized with t0's release (seq 2).
        assert_eq!(notes[3].hb_from, vec![2]);
        // The write before the release happens before the write after the
        // acquire; the two acquires of different threads stay ordered too.
        assert!(happens_before(&notes[1], &notes[4]));
        assert!(!happens_before(&notes[4], &notes[1]));
    }

    #[test]
    fn reacquire_by_same_thread_is_not_an_edge() {
        let l = LockId(0);
        let notes = notes_for(&[
            ev(0, 0, Op::LockAcquire { lock: l }),
            ev(1, 0, Op::LockRelease { lock: l }),
            ev(2, 0, Op::LockAcquire { lock: l }),
        ]);
        assert!(notes[2].hb_from.is_empty(), "self-handoff is not an arrow");
    }

    #[test]
    fn unsynchronized_events_are_concurrent() {
        let notes = notes_for(&[
            ev(
                0,
                0,
                Op::VarWrite {
                    var: VarId(0),
                    value: 0,
                },
            ),
            ev(
                1,
                1,
                Op::VarWrite {
                    var: VarId(0),
                    value: 1,
                },
            ),
        ]);
        assert!(concurrent(&notes[0], &notes[1]));
        assert!(!happens_before(&notes[0], &notes[0]), "irreflexive");
    }

    #[test]
    fn spawn_start_exit_join_chain() {
        let notes = notes_for(&[
            ev(0, 0, Op::Spawn { child: ThreadId(1) }),
            ev(1, 1, Op::ThreadStart),
            ev(2, 1, Op::ThreadExit),
            ev(
                3,
                0,
                Op::Join {
                    target: ThreadId(1),
                },
            ),
        ]);
        assert_eq!(notes[1].hb_from, vec![0]);
        assert_eq!(notes[3].hb_from, vec![2]);
        assert!(happens_before(&notes[0], &notes[2]));
        assert!(happens_before(&notes[2], &notes[3]));
    }

    #[test]
    fn notify_wake_joins_cond_and_lock() {
        let (c, l) = (CondId(0), LockId(0));
        let notes = notes_for(&[
            ev(0, 0, Op::LockAcquire { lock: l }),
            ev(1, 0, Op::CondWait { cond: c, lock: l }),
            ev(2, 1, Op::LockAcquire { lock: l }),
            ev(
                3,
                1,
                Op::CondNotify {
                    cond: c,
                    all: false,
                },
            ),
            ev(4, 1, Op::LockRelease { lock: l }),
            ev(5, 0, Op::CondWake { cond: c, lock: l }),
        ]);
        // The wake synchronizes with the lock release; the notify's clock
        // is already contained in it (same releasing thread), so only the
        // informative edge is recorded — yet the notify is still ordered
        // before the wake.
        assert_eq!(notes[5].hb_from, vec![4]);
        assert!(happens_before(&notes[3], &notes[5]));
    }

    #[test]
    fn program_order_is_happens_before() {
        let notes = notes_for(&[
            ev(0, 0, Op::Yield),
            ev(1, 0, Op::Yield),
            ev(2, 0, Op::Yield),
        ]);
        assert!(happens_before(&notes[0], &notes[1]));
        assert!(happens_before(&notes[1], &notes[2]));
        assert!(happens_before(&notes[0], &notes[2]));
    }

    #[test]
    fn rmw_chains_order_atomics() {
        let rmw = |seq, t| {
            ev(
                seq,
                t,
                Op::VarRmw {
                    var: VarId(0),
                    old: 0,
                    new: 1,
                },
            )
        };
        let notes = notes_for(&[rmw(0, 0), rmw(1, 1)]);
        assert_eq!(notes[1].hb_from, vec![0]);
        assert!(happens_before(&notes[0], &notes[1]));
    }
}
