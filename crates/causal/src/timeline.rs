//! Per-thread schedule timeline rendering.
//!
//! One row per trace record, one aligned column per thread. The executing
//! thread's cell shows a compact operation label (resolved through the
//! trace's name tables); every other thread that currently holds a lock
//! shows a `|` marker, so lock-hold intervals read as vertical bars. The
//! `hb` column lists the incoming cross-thread synchronization arrows
//! (`<-seq`), and the first-failure row is flagged with a `*` gutter.
//! Everything is a pure function of the trace, so the rendering is
//! byte-deterministic.

use crate::hb::CausalAnnotations;
use mtt_instrument::Op;
use mtt_trace::{Trace, TraceMeta};

fn name(table: &[String], idx: u32, prefix: &str) -> String {
    table
        .get(idx as usize)
        .filter(|s| !s.is_empty())
        .cloned()
        .unwrap_or_else(|| format!("{prefix}{idx}"))
}

/// Thread display label: `"t{id}:{name}"` when the name table knows the
/// thread, `"t{id}"` otherwise.
pub fn thread_label(meta: &TraceMeta, t: u32) -> String {
    match meta.thread_names.get(t as usize).filter(|s| !s.is_empty()) {
        Some(n) => format!("t{t}:{n}"),
        None => format!("t{t}"),
    }
}

/// Compact human-readable label for an operation, resolved through the
/// trace's name tables.
pub fn op_label(op: &Op, meta: &TraceMeta) -> String {
    let var = |v: u32| name(&meta.var_names, v, "v");
    let lock = |l: u32| name(&meta.lock_names, l, "l");
    let cond = |c: u32| name(&meta.cond_names, c, "c");
    let sem = |s: u32| name(&meta.sem_names, s, "s");
    let barrier = |b: u32| name(&meta.barrier_names, b, "b");
    let thread = |t: u32| name(&meta.thread_names, t, "t");
    match *op {
        Op::VarRead { var: v, value } => format!("rd {}={value}", var(v.0)),
        Op::VarWrite { var: v, value } => format!("wr {}={value}", var(v.0)),
        Op::VarRmw { var: v, old, new } => format!("rmw {} {old}->{new}", var(v.0)),
        Op::LockRequest { lock: l } => format!("req {}", lock(l.0)),
        Op::LockAcquire { lock: l } => format!("lock {}", lock(l.0)),
        Op::LockRelease { lock: l } => format!("unlock {}", lock(l.0)),
        Op::LockTryFail { lock: l } => format!("tryfail {}", lock(l.0)),
        Op::CondWait { cond: c, .. } => format!("wait {}", cond(c.0)),
        Op::CondWake { cond: c, .. } => format!("wake {}", cond(c.0)),
        Op::CondNotify { cond: c, all } => {
            format!("{} {}", if all { "notifyall" } else { "notify" }, cond(c.0))
        }
        Op::SemRequest { sem: s } => format!("sem-req {}", sem(s.0)),
        Op::SemAcquire { sem: s } => format!("sem-acq {}", sem(s.0)),
        Op::SemRelease { sem: s } => format!("sem-rel {}", sem(s.0)),
        Op::BarrierArrive { barrier: b } => format!("arrive {}", barrier(b.0)),
        Op::BarrierPass { barrier: b } => format!("pass {}", barrier(b.0)),
        Op::Spawn { child } => format!("spawn {}", thread(child.0)),
        Op::JoinRequest { target } => format!("join-req {}", thread(target.0)),
        Op::Join { target } => format!("join {}", thread(target.0)),
        Op::ThreadStart => "start".into(),
        Op::ThreadExit => "exit".into(),
        Op::Yield => "yield".into(),
        Op::Sleep { ticks } => format!("sleep {ticks}"),
        Op::Point { label } => format!("point {label}"),
        Op::AssertFail { label } => format!("ASSERT-FAIL {label}"),
    }
}

/// Render the aligned per-thread timeline as text.
pub fn render_timeline(trace: &Trace, ann: &CausalAnnotations) -> String {
    let meta = &trace.meta;
    let nthreads = trace
        .records
        .iter()
        .map(|r| r.thread as usize + 1)
        .max()
        .unwrap_or(0);
    let labels: Vec<String> = (0..nthreads)
        .map(|t| thread_label(meta, t as u32))
        .collect();

    // One row per record: (first-failure?, seq, per-thread cell, hb cell).
    let mut held: Vec<Vec<u32>> = vec![Vec::new(); nthreads];
    let mut rows: Vec<(bool, u64, Vec<String>, String)> = Vec::new();
    for (i, rec) in trace.records.iter().enumerate() {
        let t = rec.thread as usize;
        held[t] = rec.locks_held.clone();
        let mut cells = vec![String::new(); nthreads];
        for (other, cell) in cells.iter_mut().enumerate() {
            if other != t && !held[other].is_empty() {
                *cell = "|".into();
            }
        }
        cells[t] = op_label(&rec.op, meta);
        if !rec.locks_held.is_empty() {
            let locks: Vec<String> = rec
                .locks_held
                .iter()
                .map(|&l| name(&meta.lock_names, l, "l"))
                .collect();
            cells[t] = format!("{} [{}]", cells[t], locks.join(","));
        }
        let hb = ann
            .notes
            .get(i)
            .map(|n| {
                n.hb_from
                    .iter()
                    .map(|s| format!("<-{s}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .unwrap_or_default();
        rows.push((ann.first_failure == Some(rec.seq), rec.seq, cells, hb));
    }

    let seq_w = rows
        .iter()
        .map(|(_, s, _, _)| s.to_string().len())
        .max()
        .unwrap_or(1)
        .max(3);
    let mut widths: Vec<usize> = labels.iter().map(|l| l.len()).collect();
    for (_, _, cells, _) in &rows {
        for (t, c) in cells.iter().enumerate() {
            widths[t] = widths[t].max(c.len());
        }
    }

    let mut out = format!(
        "schedule timeline: {} (scheduler {} seed {}, noise {})\n",
        meta.program, meta.scheduler, meta.seed, meta.noise
    );
    match ann.first_failure.and_then(|seq| {
        trace
            .records
            .iter()
            .find(|r| r.seq == seq)
            .map(|r| (seq, r))
    }) {
        Some((seq, r)) => {
            let tags = if r.bug_tags.is_empty() {
                String::new()
            } else {
                format!("  [{}]", r.bug_tags.join(","))
            };
            out.push_str(&format!(
                "first failure: seq {seq}  {}  {}{tags}\n",
                thread_label(meta, r.thread),
                op_label(&r.op, meta),
            ));
        }
        None => out.push_str("first failure: none (the run passed)\n"),
    }
    out.push('\n');
    out.push_str(&format!("  {:>seq_w$}", "seq"));
    for (t, l) in labels.iter().enumerate() {
        out.push_str(&format!("  {:<w$}", l, w = widths[t]));
    }
    out.push_str("  hb\n");
    for (ff, seq, cells, hb) in &rows {
        out.push_str(if *ff { "* " } else { "  " });
        out.push_str(&format!("{seq:>seq_w$}"));
        for (t, c) in cells.iter().enumerate() {
            out.push_str(&format!("  {:<w$}", c, w = widths[t]));
        }
        out.push_str("  ");
        out.push_str(hb);
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

/// The timeline as flat CSV: one row per record with the causal columns.
pub fn timeline_csv(trace: &Trace, ann: &CausalAnnotations) -> String {
    let meta = &trace.meta;
    let mut out =
        String::from("seq,time,thread,op,locks_held,bug_tags,clock,hb_from,first_failure\n");
    for (i, rec) in trace.records.iter().enumerate() {
        let locks: Vec<String> = rec
            .locks_held
            .iter()
            .map(|&l| name(&meta.lock_names, l, "l"))
            .collect();
        let (clock, hb) = match ann.notes.get(i) {
            Some(n) => (
                n.clock
                    .components()
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(";"),
                n.hb_from
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join(";"),
            ),
            None => (String::new(), String::new()),
        };
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{}\n",
            rec.seq,
            rec.time,
            thread_label(meta, rec.thread),
            op_label(&rec.op, meta),
            locks.join(";"),
            rec.bug_tags.join(";"),
            clock,
            hb,
            if ann.first_failure == Some(rec.seq) {
                "true"
            } else {
                ""
            },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hb::annotate_trace;
    use mtt_instrument::{Event, EventSink, Loc, LockId, Op, ThreadId, VarId};
    use mtt_trace::TraceCollector;
    use std::sync::Arc;

    fn trace() -> Trace {
        let mut c = TraceCollector::new();
        let steps: Vec<(u32, Op, Vec<u32>)> = vec![
            (0, Op::ThreadStart, vec![]),
            (0, Op::LockAcquire { lock: LockId(0) }, vec![0]),
            (0, Op::Spawn { child: ThreadId(1) }, vec![0]),
            (1, Op::ThreadStart, vec![]),
            (
                1,
                Op::VarRead {
                    var: VarId(0),
                    value: 7,
                },
                vec![],
            ),
            (0, Op::LockRelease { lock: LockId(0) }, vec![]),
            (
                1,
                Op::VarWrite {
                    var: VarId(0),
                    value: 8,
                },
                vec![],
            ),
        ];
        for (seq, (t, op, held)) in steps.into_iter().enumerate() {
            c.on_event(&Event {
                seq: seq as u64,
                time: seq as u64,
                thread: ThreadId(t),
                loc: Loc::new("p", seq as u32 + 1),
                op,
                locks_held: Arc::from(held.into_iter().map(LockId).collect::<Vec<_>>()),
            });
        }
        let mut t = c.into_trace();
        t.meta.program = "demo".into();
        t.meta.scheduler = "random".into();
        t.meta.noise = "none".into();
        t.meta.thread_names = vec!["main".into(), "worker".into()];
        t.meta.var_names = vec!["x".into()];
        t.meta.lock_names = vec!["m".into()];
        t.meta.manifested_bugs = vec!["demo-bug".into()];
        t.records[6].bug_tags = vec!["demo-bug".into()];
        t
    }

    #[test]
    fn timeline_shows_columns_holds_and_arrows() {
        let t = trace();
        let ann = annotate_trace(&t);
        let text = render_timeline(&t, &ann);
        assert!(text.contains("t0:main"));
        assert!(text.contains("t1:worker"));
        assert!(
            text.contains("lock m [m]"),
            "acquire with held set:\n{text}"
        );
        // While main holds m, worker rows show the hold bar.
        assert!(text.lines().any(|l| l.contains("start") && l.contains('|')));
        assert!(text.contains("<-2"), "start arrow from spawn:\n{text}");
        // The first-failure gutter marks the tagged write.
        assert!(text
            .lines()
            .any(|l| l.starts_with("*") && l.contains("wr x=8")));
        assert!(text.contains("first failure: seq 6"));
    }

    #[test]
    fn csv_has_one_row_per_record() {
        let t = trace();
        let ann = annotate_trace(&t);
        let csv = timeline_csv(&t, &ann);
        assert_eq!(csv.lines().count(), t.records.len() + 1);
        assert!(csv.lines().next().unwrap().starts_with("seq,time,thread"));
        assert!(csv.contains("demo-bug"));
        assert!(
            csv.ends_with("true\n"),
            "failure marker on last row:\n{csv}"
        );
    }

    #[test]
    fn op_labels_resolve_names() {
        let t = trace();
        assert_eq!(
            op_label(
                &Op::VarWrite {
                    var: VarId(0),
                    value: 3
                },
                &t.meta
            ),
            "wr x=3"
        );
        assert_eq!(
            op_label(&Op::LockAcquire { lock: LockId(0) }, &t.meta),
            "lock m"
        );
        assert_eq!(
            op_label(&Op::LockAcquire { lock: LockId(9) }, &t.meta),
            "lock l9"
        );
    }
}
