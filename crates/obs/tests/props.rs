//! Property tests for the flight recorder: a journal is written
//! concurrently by many workers, so the status fold must not depend on the
//! order records landed on disk — any interleaving of the same records
//! (including duplicated `done` cells from a resumed process) must fold to
//! the same summary.

use mtt_json::ToJson;
use mtt_obs::{
    parse_journal, CampaignEnd, CampaignMeta, CellDone, CellStart, JournalRecord, StatusSummary,
};
use proptest::prelude::*;

/// Build a plausible journal for `cells` cells, `done` of them finished.
fn journal_records(cells: u64, done: u64, workers: u64, ended: bool) -> Vec<JournalRecord> {
    let mut recs = vec![JournalRecord::Campaign(CampaignMeta {
        label: "prop".into(),
        total_cells: cells,
        programs: 1,
        tools: 1,
        runs: cells,
        base_seed: 7,
        runtime: "test".into(),
        jobs: workers,
        telemetry: false,
    })];
    for i in 0..cells {
        recs.push(JournalRecord::Start(CellStart {
            cell: format!("{i:016x}"),
            program: "p".into(),
            tool: "t".into(),
            seed: 7 + i,
            run: i,
            t_us: i * 10,
        }));
    }
    for i in 0..done.min(cells) {
        recs.push(JournalRecord::Done(CellDone {
            cell: format!("{i:016x}"),
            program: "p".into(),
            tool: "t".into(),
            tool_spec: "t".into(),
            seed: 7 + i,
            run: i,
            outcome: "completed".into(),
            failed: i % 3 == 0,
            manifested: Vec::new(),
            events: 100 + i,
            sched_points: 10 + i,
            injections: 0,
            timed_out: i % 5 == 4,
            wall_us: 50 + i,
            t_us: 100 + i * 10,
            worker: i % workers.max(1),
            metrics: None,
            // Mix of shared classes and fingerprint-less (v1-style) cells
            // so the distinct-schedule union is exercised by both props.
            fingerprint: if i % 4 == 3 {
                None
            } else {
                Some(format!("{:032x}", i % 3))
            },
            // A sprinkling of native cells: the optional field must fold
            // exactly like its absence does.
            backend: (i % 6 == 5).then(|| "native".to_string()),
        }));
    }
    if ended {
        recs.push(JournalRecord::End(CampaignEnd {
            label: "prop".into(),
            completed: done.min(cells),
            t_us: cells * 20,
        }));
    }
    recs
}

/// Serialize records (in the given order) to NDJSON and fold a summary.
fn fold(records: &[JournalRecord]) -> StatusSummary {
    let text: String = records
        .iter()
        .map(|r| format!("{}\n", r.to_json().dump()))
        .collect();
    let parsed = parse_journal(&text).expect("synthesized journal parses");
    StatusSummary::from_journal(&parsed)
}

/// Reorder `records` by the (stable-sorted) `keys` drawn by proptest —
/// the vendored proptest has no shuffle strategy, so a key vector stands
/// in for an arbitrary permutation.
fn permute(records: &[JournalRecord], keys: &[u64]) -> Vec<JournalRecord> {
    let mut tagged: Vec<(u64, usize)> = records
        .iter()
        .enumerate()
        .map(|(i, _)| (keys.get(i).copied().unwrap_or(0), i))
        .collect();
    tagged.sort();
    tagged.iter().map(|&(_, i)| records[i].clone()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn status_fold_is_permutation_invariant(
        cells in 1u64..24,
        done_frac in 0u64..=100,
        workers in 1u64..8,
        ended in any::<bool>(),
        keys in prop::collection::vec(any::<u64>(), 64),
    ) {
        let done = cells * done_frac / 100;
        let records = journal_records(cells, done, workers, ended && done == cells);
        let canonical = fold(&records);
        let shuffled = permute(&records, &keys);
        prop_assert_eq!(fold(&shuffled), canonical.clone());
        prop_assert_eq!(canonical.done, done);
        prop_assert_eq!(canonical.total, Some(cells));
    }

    #[test]
    fn duplicated_done_records_fold_like_singletons(
        cells in 1u64..16,
        keys in prop::collection::vec(any::<u64>(), 48),
    ) {
        // A resumed process re-lists nothing, but an operator may well
        // concatenate two journals; duplicate `done` cells must not double
        // count.
        let records = journal_records(cells, cells, 2, true);
        let mut doubled = records.clone();
        doubled.extend(
            records
                .iter()
                .filter(|r| matches!(r, JournalRecord::Done(_)))
                .cloned(),
        );
        let shuffled = permute(&doubled, &keys);
        prop_assert_eq!(fold(&shuffled), fold(&records));
    }
}

#[test]
fn summary_counts_failures_timeouts_and_in_flight() {
    let records = journal_records(10, 7, 2, false);
    let s = fold(&records);
    assert_eq!(s.total, Some(10));
    assert_eq!(s.done, 7);
    // i % 3 == 0 for i in 0..7 → {0, 3, 6}; i % 5 == 4 → {4}.
    assert_eq!(s.failed, 3);
    assert_eq!(s.timeouts, 1);
    assert_eq!(s.in_flight, 3);
    assert!(!s.complete);
    let rendered = s.render();
    assert!(rendered.contains("7/10"), "{rendered}");
}
