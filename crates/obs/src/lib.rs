//! # mtt-obs — the campaign flight recorder
//!
//! Cross-process observability for campaigns: while `mtt-telemetry`
//! observes a single run from inside its process, this crate records what
//! a whole campaign *did* into durable state another process can read —
//! the result-bookkeeping discipline large testing campaigns live or die
//! on (Lascu & Donaldson's CK-framework integration; DESIGN.md S21).
//!
//! Three layers, all over one artifact:
//!
//! - [`journal`] — the append-only NDJSON campaign journal (schema v1):
//!   one `campaign` header, `start`/`done` records per grid cell keyed by
//!   a [`content_address`] of `(program, canonical tool_spec, seed,
//!   runtime version)`, and an `end` marker. The [`JournalSink`] flushes
//!   per record, so a crash can only truncate the final line — which
//!   readers discard, and [`truncate_partial_tail`] repairs before a
//!   resumed campaign appends. The [`ResumeCache`] turns the journal into
//!   a content-addressed result cache: resumed campaigns skip completed
//!   cells and still produce byte-identical reports.
//! - [`status`] — [`StatusSummary`]: progress, failure/timeout counts,
//!   per-worker utilization and ETA, folded permutation-invariantly from
//!   the record set (so `mtt status` can watch a live campaign written by
//!   another process, in any order).
//! - [`chrome`] — [`ChromeTrace`]: a `chrome://tracing`-loadable timeline
//!   of campaign phases, pool workers, and cells, plus the structural
//!   checker behind CI's load-check.

pub mod chrome;
pub mod journal;
pub mod status;

pub use chrome::{check_chrome_trace, ChromeTrace};
pub use journal::{
    check_journal_line, content_address, load_journal, parse_journal, truncate_partial_tail,
    CampaignEnd, CampaignMeta, CellDone, CellStart, JobDone, JournalRecord, JournalSink,
    MetricScalars, ParsedJournal, ResumeCache, JOURNAL_VERSION, KILL_AFTER_ENV,
};
pub use status::{StatusSummary, WorkerUse};
