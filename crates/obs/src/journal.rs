//! The durable, append-only campaign journal (NDJSON, schema v2).
//!
//! Every line is one JSON object carrying a `"v"` schema version and a
//! `"kind"` tag. Schema history: v2 added the optional `fingerprint`
//! field on `done` records (the canonical Mazurkiewicz-trace hash behind
//! the live distinct-schedule count); v3 added the optional `backend`
//! field on `done` records (present only for non-model backends). Readers
//! accept older records — the optional fields simply read as absent — so
//! mixed-version journals written by old and new builds keep parsing. A campaign writes one `campaign` header, a `start`/`done`
//! pair per grid cell, and a final `end` marker; pool-backed commands that
//! are not campaign-shaped write generic `job` records instead. `done`
//! records are keyed by a **content address** — a stable hash of
//! `(program, canonical tool_spec, seed, runtime version)` — which is what
//! makes the journal a result cache: a resumed campaign looks each cell up
//! by address and skips the ones a previous process already completed.
//!
//! Durability discipline: the sink flushes after every record, so the only
//! record a crash can corrupt is the final, possibly unterminated line.
//! Readers therefore treat *a missing trailing newline* as "crash
//! mid-write" and discard the fragment; any newline-**terminated** line
//! that fails to parse is real corruption and is reported as an error.
//! (`mtt journal-check` is stricter and flags both.)
//!
//! Wall-clock fields (`t_us`, `wall_us`) exist for the live `mtt status` /
//! `mtt watch` views and chrome traces only; nothing deterministic is ever
//! derived from them — resumed campaigns reconstruct reports from the
//! deterministic payload fields alone, which is why resumed output is
//! byte-identical to an uninterrupted run.

use mtt_json::{json_struct, FromJson, Json, ToJson};
use std::collections::HashMap;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

/// Journal schema version emitted in every record's `v` field.
pub const JOURNAL_VERSION: u64 = 3;

/// Oldest journal schema version this build still reads (older records
/// lack the optional `fingerprint`/`backend` fields, which decode as
/// absent).
pub const JOURNAL_MIN_VERSION: u64 = 1;

/// Environment variable that makes a [`JournalSink`] abort the process
/// (exit code 9, evoking SIGKILL) after writing N `done`/`job` records — a
/// test/CI hook for simulating a campaign killed mid-flight.
pub const KILL_AFTER_ENV: &str = "MTT_JOURNAL_KILL_AFTER";

// ---------------------------------------------------------------------
// Content addressing
// ---------------------------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// The content address of one campaign cell: a 16-hex-digit FNV-1a hash of
/// `(program, canonical tool_spec, seed, runtime version, backend)`, the
/// complete set of inputs that determine a run's deterministic outcome.
/// Two runs with the same address are the same run; a runtime version bump
/// changes every address, so a cache can never serve results produced by
/// different semantics.
///
/// `backend` is the execution-engine tag (`"model"` or `"native"`). The
/// default `"model"` contributes nothing to the hash — every address ever
/// written by a model campaign is unchanged — while any other backend is
/// mixed in after a separator, so a native cell can never satisfy a
/// `--resume` lookup for a model cell (or vice versa).
pub fn content_address(
    program: &str,
    tool_spec: &str,
    seed: u64,
    runtime: &str,
    backend: &str,
) -> String {
    let mut h = FNV_OFFSET;
    h = fnv1a(h, program.as_bytes());
    h = fnv1a(h, &[0]);
    h = fnv1a(h, tool_spec.as_bytes());
    h = fnv1a(h, &[0]);
    h = fnv1a(h, &seed.to_le_bytes());
    h = fnv1a(h, &[0]);
    h = fnv1a(h, runtime.as_bytes());
    if backend != "model" {
        h = fnv1a(h, &[0]);
        h = fnv1a(h, backend.as_bytes());
    }
    format!("{h:016x}")
}

// ---------------------------------------------------------------------
// Record types
// ---------------------------------------------------------------------

/// The scalar slice of a run's telemetry — exactly the counters the NDJSON
/// run log emits, so a resumed campaign can rebuild run-log lines
/// byte-identically. The per-site maps are deliberately absent (they hold
/// `&'static str` source locations that cannot round-trip through a file);
/// commands that need them, like `mtt profile`, refuse to resume.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricScalars {
    pub events: u64,
    pub sched_points: u64,
    pub context_switches: u64,
    pub forced_yields: u64,
    pub noise_injections: u64,
    pub spurious_wakeups: u64,
    pub lock_acquires: u64,
    pub lock_contentions: u64,
    pub waits: u64,
    pub notifies: u64,
    pub threads: u64,
    pub steps_to_first_bug: Option<u64>,
}

json_struct!(MetricScalars {
    events,
    sched_points,
    context_switches,
    forced_yields,
    noise_injections,
    spurious_wakeups,
    lock_acquires,
    lock_contentions,
    waits,
    notifies,
    threads,
    steps_to_first_bug,
});

/// The `campaign` header record: grid shape and provenance, written once
/// per process that appends to the journal (a resumed campaign appends a
/// second header — readers dedup `done` records by address, not headers).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CampaignMeta {
    /// Campaign label (`e1`, `profile-e3`, …).
    pub label: String,
    /// Total cells in the grid (programs × tools × runs).
    pub total_cells: u64,
    pub programs: u64,
    pub tools: u64,
    pub runs: u64,
    pub base_seed: u64,
    /// Runtime version baked into every cell's content address.
    pub runtime: String,
    pub jobs: u64,
    /// Whether runs carry telemetry (and `done` records carry `metrics`).
    pub telemetry: bool,
}

json_struct!(CampaignMeta {
    label,
    total_cells,
    programs,
    tools,
    runs,
    base_seed,
    runtime,
    jobs,
    telemetry,
});

/// A cell claimed by a worker (in-flight marker for the live status view).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CellStart {
    /// Content address of the cell.
    pub cell: String,
    pub program: String,
    pub tool: String,
    pub seed: u64,
    pub run: u64,
    /// Microseconds since this process opened the journal.
    pub t_us: u64,
}

json_struct!(CellStart {
    cell,
    program,
    tool,
    seed,
    run,
    t_us
});

/// A completed cell: the full deterministic payload a resumed campaign
/// needs to reconstruct the run without executing it, plus segregated
/// wall-clock fields for the status/trace views.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CellDone {
    /// Content address of the cell (the cache key).
    pub cell: String,
    pub program: String,
    pub tool: String,
    /// Canonical tool-spec string (run-log provenance).
    pub tool_spec: String,
    pub seed: u64,
    pub run: u64,
    /// Outcome tag (`completed`, `deadlock`, `step-limit`, …).
    pub outcome: String,
    /// Did the oracle judge the run as having manifested a bug?
    pub failed: bool,
    /// Tags of the documented bugs that manifested.
    pub manifested: Vec<String>,
    pub events: u64,
    pub sched_points: u64,
    pub injections: u64,
    pub timed_out: bool,
    /// Wall-clock duration of the run (segregated; never deterministic).
    pub wall_us: u64,
    /// Microseconds since this process opened the journal (segregated).
    pub t_us: u64,
    /// Pool worker that executed the run (segregated; assignment order is
    /// wall-clock dependent).
    pub worker: u64,
    /// Telemetry scalars; present iff the campaign ran with telemetry.
    pub metrics: Option<MetricScalars>,
    /// Canonical Mazurkiewicz-trace fingerprint of the run (32 hex digits),
    /// when the campaign computed one. Added in schema v2; absent on v1
    /// records — the codec below is hand-written (not `json_struct!`)
    /// precisely so a missing field decodes as `None` instead of erroring.
    pub fingerprint: Option<String>,
    /// Execution-backend tag (`"native"`), present only when the cell ran
    /// on a non-model backend. Added in schema v3; absent (= model) on
    /// older records and on every model cell, keeping model journals
    /// byte-identical across the version bump.
    pub backend: Option<String>,
}

impl ToJson for CellDone {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("cell".to_string(), self.cell.to_json()),
            ("program".to_string(), self.program.to_json()),
            ("tool".to_string(), self.tool.to_json()),
            ("tool_spec".to_string(), self.tool_spec.to_json()),
            ("seed".to_string(), self.seed.to_json()),
            ("run".to_string(), self.run.to_json()),
            ("outcome".to_string(), self.outcome.to_json()),
            ("failed".to_string(), self.failed.to_json()),
            ("manifested".to_string(), self.manifested.to_json()),
            ("events".to_string(), self.events.to_json()),
            ("sched_points".to_string(), self.sched_points.to_json()),
            ("injections".to_string(), self.injections.to_json()),
            ("timed_out".to_string(), self.timed_out.to_json()),
            ("wall_us".to_string(), self.wall_us.to_json()),
            ("t_us".to_string(), self.t_us.to_json()),
            ("worker".to_string(), self.worker.to_json()),
            ("metrics".to_string(), self.metrics.to_json()),
        ];
        if let Some(fp) = &self.fingerprint {
            fields.push(("fingerprint".to_string(), fp.to_json()));
        }
        if let Some(backend) = &self.backend {
            fields.push(("backend".to_string(), backend.to_json()));
        }
        Json::Obj(fields)
    }
}

impl FromJson for CellDone {
    fn from_json(v: &Json) -> Result<Self, mtt_json::JsonError> {
        let field = |name: &str| {
            v.get(name).ok_or_else(|| {
                mtt_json::JsonError::msg(format!("missing field `{name}` in CellDone"))
            })
        };
        Ok(CellDone {
            cell: FromJson::from_json(field("cell")?)?,
            program: FromJson::from_json(field("program")?)?,
            tool: FromJson::from_json(field("tool")?)?,
            tool_spec: FromJson::from_json(field("tool_spec")?)?,
            seed: FromJson::from_json(field("seed")?)?,
            run: FromJson::from_json(field("run")?)?,
            outcome: FromJson::from_json(field("outcome")?)?,
            failed: FromJson::from_json(field("failed")?)?,
            manifested: FromJson::from_json(field("manifested")?)?,
            events: FromJson::from_json(field("events")?)?,
            sched_points: FromJson::from_json(field("sched_points")?)?,
            injections: FromJson::from_json(field("injections")?)?,
            timed_out: FromJson::from_json(field("timed_out")?)?,
            wall_us: FromJson::from_json(field("wall_us")?)?,
            t_us: FromJson::from_json(field("t_us")?)?,
            worker: FromJson::from_json(field("worker")?)?,
            metrics: FromJson::from_json(field("metrics")?)?,
            // Absent on v1 records: tolerate, don't error.
            fingerprint: match v.get("fingerprint") {
                Some(fp) => FromJson::from_json(fp)?,
                None => None,
            },
            // Absent on v1/v2 records and on model cells: tolerate.
            backend: match v.get("backend") {
                Some(b) => FromJson::from_json(b)?,
                None => None,
            },
        })
    }
}

/// A completed generic pool job (non-campaign commands: one record per
/// job index, no content address — those workloads are not resumable).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JobDone {
    pub index: u64,
    pub wall_us: u64,
    pub t_us: u64,
    pub worker: u64,
}

json_struct!(JobDone {
    index,
    wall_us,
    t_us,
    worker
});

/// The campaign finished cleanly (a journal without one was interrupted).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CampaignEnd {
    pub label: String,
    /// Cells completed by the writing process (cache hits excluded).
    pub completed: u64,
    pub t_us: u64,
}

json_struct!(CampaignEnd {
    label,
    completed,
    t_us
});

/// One journal line.
///
/// `Done` dominates the payload size by design — it carries the full
/// deterministic cell result — and records live briefly (parse, fold,
/// drop), so boxing the large variant would only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum JournalRecord {
    Campaign(CampaignMeta),
    Start(CellStart),
    Done(CellDone),
    Job(JobDone),
    End(CampaignEnd),
}

impl JournalRecord {
    /// The record's `kind` tag.
    pub fn kind(&self) -> &'static str {
        match self {
            JournalRecord::Campaign(_) => "campaign",
            JournalRecord::Start(_) => "start",
            JournalRecord::Done(_) => "done",
            JournalRecord::Job(_) => "job",
            JournalRecord::End(_) => "end",
        }
    }
}

impl ToJson for JournalRecord {
    fn to_json(&self) -> Json {
        let payload = match self {
            JournalRecord::Campaign(r) => r.to_json(),
            JournalRecord::Start(r) => r.to_json(),
            JournalRecord::Done(r) => r.to_json(),
            JournalRecord::Job(r) => r.to_json(),
            JournalRecord::End(r) => r.to_json(),
        };
        let Json::Obj(fields) = payload else {
            unreachable!("journal payloads are objects");
        };
        let mut out = Vec::with_capacity(fields.len() + 2);
        out.push(("v".to_string(), JOURNAL_VERSION.to_json()));
        out.push(("kind".to_string(), self.kind().to_json()));
        out.extend(fields);
        Json::Obj(out)
    }
}

/// Validate one journal line against the schema and decode it. Accepts
/// every version in `JOURNAL_MIN_VERSION..=JOURNAL_VERSION` (v1 records
/// simply lack the optional fields later versions added). The error
/// message names the first violation — `mtt journal-check` prefixes it
/// with `file:line:`.
pub fn check_journal_line(line: &str) -> Result<JournalRecord, String> {
    let v = Json::parse(line).map_err(|e| format!("not valid JSON: {e}"))?;
    let Json::Obj(_) = v else {
        return Err("line is not a JSON object".into());
    };
    let version = v
        .get("v")
        .ok_or("missing required field `v`")?
        .as_u64()
        .ok_or("field `v` has the wrong type")?;
    if !(JOURNAL_MIN_VERSION..=JOURNAL_VERSION).contains(&version) {
        return Err(format!(
            "unsupported journal version {version} (this build reads v{JOURNAL_MIN_VERSION}..v{JOURNAL_VERSION})"
        ));
    }
    let kind = v
        .get("kind")
        .ok_or("missing required field `kind`")?
        .as_str()
        .ok_or("field `kind` has the wrong type")?;
    let decoded = match kind {
        "campaign" => CampaignMeta::from_json(&v).map(JournalRecord::Campaign),
        "start" => CellStart::from_json(&v).map(JournalRecord::Start),
        "done" => CellDone::from_json(&v).map(JournalRecord::Done),
        "job" => JobDone::from_json(&v).map(JournalRecord::Job),
        "end" => CampaignEnd::from_json(&v).map(JournalRecord::End),
        other => return Err(format!("unknown record kind `{other}`")),
    };
    decoded.map_err(|e| format!("invalid `{kind}` record: {e}"))
}

// ---------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------

/// A fully parsed journal.
#[derive(Clone, Debug, Default)]
pub struct ParsedJournal {
    /// Every schema-valid, newline-terminated record, in file order.
    pub records: Vec<JournalRecord>,
    /// Whether a half-written final fragment (no trailing newline — the
    /// signature of a crash mid-write) was discarded.
    pub tail_discarded: bool,
}

/// Parse journal text. Newline-terminated lines must conform to the
/// schema (`Err((1-based line, message))` otherwise); an unterminated
/// final fragment is discarded as a crash artifact, not an error.
pub fn parse_journal(text: &str) -> Result<ParsedJournal, (usize, String)> {
    let (complete, tail) = match text.rfind('\n') {
        Some(pos) => (&text[..=pos], &text[pos + 1..]),
        None => ("", text),
    };
    let mut records = Vec::new();
    for (i, line) in complete.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        records.push(check_journal_line(line).map_err(|msg| (i + 1, msg))?);
    }
    Ok(ParsedJournal {
        records,
        tail_discarded: !tail.is_empty(),
    })
}

/// Read and parse a journal file; errors are prefixed `path[:line]:`.
pub fn load_journal(path: &Path) -> Result<ParsedJournal, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: read failed: {e}", path.display()))?;
    parse_journal(&text).map_err(|(line, msg)| format!("{}:{line}: {msg}", path.display()))
}

/// If the file's final record was truncated mid-write (no trailing
/// newline), cut the fragment off so subsequent appends start on a clean
/// line boundary. Returns whether anything was truncated. Must run before
/// reopening a journal in append mode — appending after a fragment would
/// weld two records into one corrupt line.
pub fn truncate_partial_tail(path: &Path) -> io::Result<bool> {
    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    if bytes.is_empty() || bytes.ends_with(b"\n") {
        return Ok(false);
    }
    let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
    file.set_len(keep as u64)?;
    file.seek(SeekFrom::End(0))?;
    Ok(true)
}

// ---------------------------------------------------------------------
// Resume cache
// ---------------------------------------------------------------------

/// The content-address → completed-cell cache a resumed campaign consults
/// before executing each cell.
#[derive(Clone, Debug, Default)]
pub struct ResumeCache {
    map: HashMap<String, CellDone>,
}

impl ResumeCache {
    /// Index every `done` record by its content address (later duplicates
    /// win; duplicates only arise from re-runs of the same cell, whose
    /// deterministic payloads are identical anyway).
    pub fn from_records(records: &[JournalRecord]) -> Self {
        let mut map = HashMap::new();
        for rec in records {
            if let JournalRecord::Done(d) = rec {
                map.insert(d.cell.clone(), d.clone());
            }
        }
        ResumeCache { map }
    }

    /// Look a cell up by content address.
    pub fn get(&self, address: &str) -> Option<&CellDone> {
        self.map.get(address)
    }

    /// Number of cached cells.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

struct SinkState {
    w: Box<dyn Write + Send>,
    /// Worker-id assignment: first thread to complete a record becomes
    /// worker 0, and so on. Wall-clock dependent, like everything the ids
    /// feed (utilization views only).
    workers: HashMap<ThreadId, u64>,
    error: Option<String>,
    written: u64,
}

/// The append-only journal writer shared by every pool worker. Each record
/// is written and flushed under one mutex, so lines never interleave and a
/// crash can only ever truncate the final line. I/O errors are latched
/// (not panicked): the campaign finishes and the CLI reports the first
/// failure with exit 2.
pub struct JournalSink {
    state: Mutex<SinkState>,
    epoch: Instant,
    kill_after: Option<u64>,
}

impl std::fmt::Debug for JournalSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock().expect("journal sink poisoned");
        f.debug_struct("JournalSink")
            .field("written", &s.written)
            .field("error", &s.error)
            .finish_non_exhaustive()
    }
}

impl JournalSink {
    fn with_writer(w: Box<dyn Write + Send>) -> Self {
        let kill_after = std::env::var(KILL_AFTER_ENV)
            .ok()
            .and_then(|v| v.parse().ok());
        JournalSink {
            state: Mutex::new(SinkState {
                w,
                workers: HashMap::new(),
                error: None,
                written: 0,
            }),
            epoch: Instant::now(),
            kill_after,
        }
    }

    /// Open `path` for journaling: truncating for a fresh campaign,
    /// appending (after tail repair, see [`truncate_partial_tail`]) for a
    /// resumed one.
    pub fn to_file(path: &Path, append: bool) -> io::Result<Self> {
        let file = if append {
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?
        } else {
            std::fs::File::create(path)?
        };
        Ok(Self::with_writer(Box::new(file)))
    }

    /// A sink over any writer (tests, in-memory journals).
    pub fn from_writer(w: impl Write + Send + 'static) -> Self {
        Self::with_writer(Box::new(w))
    }

    /// Microseconds since this sink was opened (the `t_us` clock).
    pub fn t_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// The first write error, if any occurred. Checked by the CLI after
    /// the campaign so journal I/O failure is exit 2, not a panic.
    pub fn error(&self) -> Option<String> {
        self.state
            .lock()
            .expect("journal sink poisoned")
            .error
            .clone()
    }

    fn append(&self, rec: &JournalRecord, countable: bool) {
        let line = rec.to_json().dump();
        let mut s = self.state.lock().expect("journal sink poisoned");
        if s.error.is_some() {
            return;
        }
        let r =
            s.w.write_all(line.as_bytes())
                .and_then(|()| s.w.write_all(b"\n"))
                .and_then(|()| s.w.flush());
        if let Err(e) = r {
            s.error = Some(format!("journal write failed: {e}"));
            return;
        }
        if countable {
            s.written += 1;
            if self.kill_after.is_some_and(|n| s.written >= n) {
                // Test hook: simulate a campaign killed mid-flight. The
                // record just written is flushed; nothing after it exists.
                std::process::exit(9);
            }
        }
    }

    fn worker_id(&self) -> u64 {
        let mut s = self.state.lock().expect("journal sink poisoned");
        let next = s.workers.len() as u64;
        *s.workers.entry(std::thread::current().id()).or_insert(next)
    }

    /// Write the campaign header.
    pub fn campaign(&self, meta: CampaignMeta) {
        self.append(&JournalRecord::Campaign(meta), false);
    }

    /// Write a cell-claimed marker (fills `t_us`).
    pub fn start(&self, mut rec: CellStart) {
        rec.t_us = self.t_us();
        self.append(&JournalRecord::Start(rec), false);
    }

    /// Write a completed cell (fills `t_us` and `worker`).
    pub fn done(&self, mut rec: CellDone) {
        rec.t_us = self.t_us();
        rec.worker = self.worker_id();
        self.append(&JournalRecord::Done(rec), true);
    }

    /// Write a completed generic pool job (fills `t_us` and `worker`).
    pub fn job(&self, mut rec: JobDone) {
        rec.t_us = self.t_us();
        rec.worker = self.worker_id();
        self.append(&JournalRecord::Job(rec), true);
    }

    /// Write the clean-completion marker.
    pub fn end(&self, label: &str, completed: u64) {
        self.append(
            &JournalRecord::End(CampaignEnd {
                label: label.to_string(),
                completed,
                t_us: self.t_us(),
            }),
            false,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    fn done(cell: &str, seed: u64) -> CellDone {
        CellDone {
            cell: cell.into(),
            program: "lost_update".into(),
            tool: "none".into(),
            tool_spec: "sticky:0.9+name=none".into(),
            seed,
            run: seed,
            outcome: "completed".into(),
            failed: seed.is_multiple_of(2),
            manifested: if seed.is_multiple_of(2) {
                vec!["lost-update".into()]
            } else {
                vec![]
            },
            events: 10 + seed,
            sched_points: 20,
            injections: 0,
            timed_out: false,
            wall_us: 100,
            t_us: 0,
            worker: 0,
            metrics: None,
            fingerprint: Some(format!("{:032x}", 0xfeed_u128 + seed as u128)),
            backend: None,
        }
    }

    #[test]
    fn content_address_is_stable_and_input_sensitive() {
        let a = content_address("p", "sticky:0.9", 7, "0.1.0", "model");
        assert_eq!(a.len(), 16);
        assert_eq!(a, content_address("p", "sticky:0.9", 7, "0.1.0", "model"));
        // Every input perturbs the address.
        assert_ne!(a, content_address("q", "sticky:0.9", 7, "0.1.0", "model"));
        assert_ne!(a, content_address("p", "sticky:0.8", 7, "0.1.0", "model"));
        assert_ne!(a, content_address("p", "sticky:0.9", 8, "0.1.0", "model"));
        assert_ne!(a, content_address("p", "sticky:0.9", 7, "0.2.0", "model"));
        // The separator defends against concatenation collisions.
        assert_ne!(
            content_address("ab", "c", 0, "r", "model"),
            content_address("a", "bc", 0, "r", "model")
        );
    }

    #[test]
    fn backend_perturbs_the_content_address() {
        let model = content_address("p", "sticky:0.9", 7, "0.1.0", "model");
        let native = content_address("p", "sticky:0.9", 7, "0.1.0", "native");
        // A native cell can never satisfy a resume lookup for the model
        // cell of the same (program, tool, seed, runtime) — or vice versa.
        assert_ne!(model, native);
        // The default backend contributes nothing: model addresses are
        // byte-identical to every address written before the field existed.
        let legacy = {
            let mut h = FNV_OFFSET;
            h = fnv1a(h, b"p");
            h = fnv1a(h, &[0]);
            h = fnv1a(h, b"sticky:0.9");
            h = fnv1a(h, &[0]);
            h = fnv1a(h, &7u64.to_le_bytes());
            h = fnv1a(h, &[0]);
            h = fnv1a(h, b"0.1.0");
            format!("{h:016x}")
        };
        assert_eq!(model, legacy);
    }

    /// A shared Vec<u8> the sink can own while the test keeps reading it.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<StdMutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }
    impl SharedBuf {
        fn text(&self) -> String {
            String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
        }
    }

    #[test]
    fn sink_roundtrips_every_record_kind() {
        let buf = SharedBuf::default();
        let sink = JournalSink::from_writer(buf.clone());
        sink.campaign(CampaignMeta {
            label: "e1".into(),
            total_cells: 2,
            programs: 1,
            tools: 1,
            runs: 2,
            base_seed: 7,
            runtime: "0.1.0".into(),
            jobs: 1,
            telemetry: true,
        });
        sink.start(CellStart {
            cell: "aa".into(),
            program: "p".into(),
            tool: "t".into(),
            seed: 7,
            run: 0,
            t_us: 0,
        });
        sink.done(CellDone {
            metrics: Some(MetricScalars {
                events: 3,
                ..Default::default()
            }),
            ..done("aa", 7)
        });
        sink.job(JobDone::default());
        sink.end("e1", 1);
        assert!(sink.error().is_none());
        let text = buf.text();
        let parsed = parse_journal(&text).unwrap();
        assert!(!parsed.tail_discarded);
        let kinds: Vec<_> = parsed.records.iter().map(|r| r.kind()).collect();
        assert_eq!(kinds, ["campaign", "start", "done", "job", "end"]);
        let JournalRecord::Done(d) = &parsed.records[2] else {
            panic!("expected done");
        };
        assert_eq!(d.metrics.as_ref().unwrap().events, 3);
        assert_eq!(d.seed, 7);
    }

    #[test]
    fn unterminated_tail_is_discarded_not_an_error() {
        let buf = SharedBuf::default();
        let sink = JournalSink::from_writer(buf.clone());
        sink.done(done("aa", 1));
        let mut text = buf.text();
        // Simulate a crash mid-write of a second record.
        text.push_str("{\"v\":1,\"kind\":\"done\",\"cell\":\"bb");
        let parsed = parse_journal(&text).unwrap();
        assert!(parsed.tail_discarded);
        assert_eq!(parsed.records.len(), 1);
    }

    #[test]
    fn terminated_corruption_is_an_error_with_line_number() {
        let text =
            "{\"v\":1,\"kind\":\"end\",\"label\":\"e1\",\"completed\":1,\"t_us\":0}\nnot json\n";
        let (line, msg) = parse_journal(text).unwrap_err();
        assert_eq!(line, 2);
        assert!(msg.contains("not valid JSON"), "{msg}");
    }

    #[test]
    fn checker_rejects_schema_violations() {
        assert!(check_journal_line("[]").is_err());
        assert!(check_journal_line("{\"kind\":\"done\"}")
            .unwrap_err()
            .contains("missing required field `v`"));
        assert!(check_journal_line("{\"v\":4,\"kind\":\"end\"}")
            .unwrap_err()
            .contains("unsupported journal version"));
        assert!(check_journal_line("{\"v\":1,\"kind\":\"nope\"}")
            .unwrap_err()
            .contains("unknown record kind"));
        assert!(
            check_journal_line("{\"v\":1,\"kind\":\"end\",\"label\":\"x\"}")
                .unwrap_err()
                .contains("invalid `end` record")
        );
    }

    #[test]
    fn done_record_roundtrips_fingerprint_and_omits_it_when_absent() {
        let with = done("aa", 1);
        let line = JournalRecord::Done(with.clone()).to_json().dump();
        assert!(line.contains("\"fingerprint\""), "{line}");
        let JournalRecord::Done(back) = check_journal_line(&line).unwrap() else {
            panic!("expected done");
        };
        assert_eq!(back, with);
        let without = CellDone {
            fingerprint: None,
            ..done("bb", 2)
        };
        let line = JournalRecord::Done(without).to_json().dump();
        assert!(!line.contains("fingerprint"), "{line}");
    }

    #[test]
    fn mixed_version_journal_parses_v1_records_without_fingerprint() {
        // A journal first written by a v1 build, then resumed by a v2
        // build: v1 `done` lines lack the fingerprint field entirely and
        // must decode as `fingerprint: None`; v2 lines carry it.
        let v1 = "{\"v\":1,\"kind\":\"done\",\"cell\":\"aa\",\"program\":\"p\",\"tool\":\"t\",\
                   \"tool_spec\":\"s\",\"seed\":1,\"run\":0,\"outcome\":\"completed\",\
                   \"failed\":false,\"manifested\":[],\"events\":5,\"sched_points\":2,\
                   \"injections\":0,\"timed_out\":false,\"wall_us\":9,\"t_us\":1,\
                   \"worker\":0,\"metrics\":null}";
        let v2 = JournalRecord::Done(done("bb", 2)).to_json().dump();
        let text = format!("{v1}\n{v2}\n");
        let parsed = parse_journal(&text).expect("mixed-version journal parses");
        assert_eq!(parsed.records.len(), 2);
        let JournalRecord::Done(old) = &parsed.records[0] else {
            panic!("expected done");
        };
        assert_eq!(old.fingerprint, None);
        let JournalRecord::Done(new) = &parsed.records[1] else {
            panic!("expected done");
        };
        assert!(new.fingerprint.is_some());
    }

    #[test]
    fn mixed_backend_journal_roundtrips_and_cells_stay_distinct() {
        // One campaign journal holding both a model cell and the native
        // cell of the same (program, tool, seed, runtime): the two carry
        // distinct content addresses, the model line never mentions a
        // backend, and the resume cache keeps them apart.
        let model_addr = content_address("p", "sticky:0.9", 7, "0.1.0", "model");
        let native_addr = content_address("p", "sticky:0.9", 7, "0.1.0", "native");
        let model_cell = done(&model_addr, 7);
        let native_cell = CellDone {
            backend: Some("native".into()),
            ..done(&native_addr, 7)
        };
        let model_line = JournalRecord::Done(model_cell.clone()).to_json().dump();
        let native_line = JournalRecord::Done(native_cell.clone()).to_json().dump();
        assert!(!model_line.contains("backend"), "{model_line}");
        assert!(
            native_line.contains("\"backend\":\"native\""),
            "{native_line}"
        );

        let text = format!("{model_line}\n{native_line}\n");
        let parsed = parse_journal(&text).expect("mixed-backend journal parses");
        assert_eq!(parsed.records.len(), 2);
        for (rec, want) in parsed.records.iter().zip([&model_cell, &native_cell]) {
            let JournalRecord::Done(d) = rec else {
                panic!("expected done");
            };
            assert_eq!(d, want);
        }
        let cache = ResumeCache::from_records(&parsed.records);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&model_addr).unwrap().backend, None);
        assert_eq!(
            cache.get(&native_addr).unwrap().backend.as_deref(),
            Some("native")
        );
    }

    #[test]
    fn truncate_partial_tail_repairs_crashed_files() {
        let dir = std::env::temp_dir().join(format!("mtt-obs-tail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.ndjson");
        std::fs::write(&path, "{\"v\":1,\"kind\":\"job\",\"index\":0,\"wall_us\":1,\"t_us\":2,\"worker\":0}\n{\"v\":1,\"kind\":\"jo").unwrap();
        assert!(truncate_partial_tail(&path).unwrap());
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'));
        assert_eq!(parse_journal(&text).unwrap().records.len(), 1);
        // A clean file is left untouched.
        assert!(!truncate_partial_tail(&path).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_cache_indexes_done_records_by_address() {
        let recs = vec![
            JournalRecord::Done(done("aa", 1)),
            JournalRecord::Done(done("bb", 2)),
            JournalRecord::End(CampaignEnd::default()),
        ];
        let cache = ResumeCache::from_records(&recs);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("aa").unwrap().seed, 1);
        assert!(cache.get("cc").is_none());
        assert!(!cache.is_empty());
    }

    #[test]
    fn sink_latches_write_errors() {
        struct FullDisk;
        impl Write for FullDisk {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::WriteZero, "disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let sink = JournalSink::from_writer(FullDisk);
        sink.done(done("aa", 1));
        let err = sink.error().expect("error latched");
        assert!(err.contains("journal write failed"));
        // Subsequent writes are no-ops, not panics.
        sink.end("e1", 1);
    }
}
