//! `chrome://tracing` export: a JSON timeline of campaign phases, pool
//! workers, and individual cells.
//!
//! The output is the Trace Event Format's JSON-object form —
//! `{"traceEvents":[...],"displayTimeUnit":"ms"}` — loadable in
//! `chrome://tracing` or Perfetto. Two event shapes are emitted: complete
//! events (`"ph":"X"`, with microsecond `ts`/`dur`) for phases and cells,
//! and metadata events (`"ph":"M"`) naming the process and its threads.
//! Everything here is wall-clock by definition; the builder lives behind
//! `mtt profile --chrome-trace FILE` and never feeds deterministic output.

use mtt_json::{Json, ToJson};

/// Builder for one trace file.
#[derive(Clone, Debug, Default)]
pub struct ChromeTrace {
    events: Vec<Json>,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Name the process `pid` (metadata event).
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.metadata("process_name", pid, 0, name);
    }

    /// Name thread `tid` of process `pid` (metadata event).
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.metadata("thread_name", pid, tid, name);
    }

    fn metadata(&mut self, kind: &str, pid: u64, tid: u64, name: &str) {
        self.events.push(Json::Obj(vec![
            ("name".into(), kind.to_json()),
            ("ph".into(), "M".to_json()),
            ("pid".into(), pid.to_json()),
            ("tid".into(), tid.to_json()),
            (
                "args".into(),
                Json::Obj(vec![("name".into(), name.to_json())]),
            ),
        ]));
    }

    /// Add one complete (`"ph":"X"`) event spanning `[ts_us, ts_us+dur_us]`
    /// microseconds on the `(pid, tid)` track.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        pid: u64,
        tid: u64,
        cat: &str,
        name: &str,
        ts_us: u64,
        dur_us: u64,
        args: Vec<(String, Json)>,
    ) {
        let mut fields = vec![
            ("name".into(), name.to_json()),
            ("cat".into(), cat.to_json()),
            ("ph".into(), "X".to_json()),
            ("ts".into(), ts_us.to_json()),
            ("dur".into(), dur_us.to_json()),
            ("pid".into(), pid.to_json()),
            ("tid".into(), tid.to_json()),
        ];
        if !args.is_empty() {
            fields.push(("args".into(), Json::Obj(args)));
        }
        self.events.push(Json::Obj(fields));
    }

    /// Number of events added so far (metadata included).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The trace document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("traceEvents".into(), Json::Arr(self.events.clone())),
            ("displayTimeUnit".into(), "ms".to_json()),
        ])
    }

    /// The trace document as a compact JSON string.
    pub fn dump(&self) -> String {
        self.to_json().dump()
    }
}

/// Structural check of a chrome-trace file: the top level must be an
/// object with a `traceEvents` array, and every event must be an object
/// with a valid `ph` whose required fields are present and well-typed.
/// Returns the number of complete (`"X"`) events.
pub fn check_chrome_trace(text: &str) -> Result<usize, String> {
    let v = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let Json::Obj(_) = v else {
        return Err("top level is not a JSON object".into());
    };
    let events = v
        .get("traceEvents")
        .ok_or("missing `traceEvents`")?
        .as_arr()
        .ok_or("`traceEvents` is not an array")?;
    let mut complete = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let err = |msg: &str| format!("traceEvents[{i}]: {msg}");
        let Json::Obj(_) = ev else {
            return Err(err("not an object"));
        };
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| err("missing or non-string `ph`"))?;
        for field in ["pid", "tid"] {
            if ev.get(field).and_then(Json::as_u64).is_none() {
                return Err(err(&format!("missing or non-integer `{field}`")));
            }
        }
        if ev.get("name").and_then(Json::as_str).is_none() {
            return Err(err("missing or non-string `name`"));
        }
        match ph {
            "X" => {
                for field in ["ts", "dur"] {
                    if ev.get(field).and_then(Json::as_u64).is_none() {
                        return Err(err(&format!("missing or non-integer `{field}`")));
                    }
                }
                complete += 1;
            }
            "M" => {
                if ev.get("args").and_then(|a| a.get("name")).is_none() {
                    return Err(err("metadata event without `args.name`"));
                }
            }
            other => return Err(err(&format!("unsupported phase `{other}`"))),
        }
    }
    Ok(complete)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_output_passes_the_structural_check() {
        let mut t = ChromeTrace::new();
        t.process_name(1, "mtt profile-e3");
        t.thread_name(1, 0, "phases");
        t.thread_name(1, 1, "worker 0");
        t.complete(1, 0, "phase", "campaign.execute", 0, 1000, vec![]);
        t.complete(
            1,
            1,
            "cell",
            "lost_update/none#0",
            10,
            90,
            vec![("seed".into(), 7u64.to_json())],
        );
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        let text = t.dump();
        assert_eq!(check_chrome_trace(&text).unwrap(), 2);
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.contains("\"displayTimeUnit\":\"ms\""));
    }

    #[test]
    fn check_rejects_malformed_traces() {
        assert!(check_chrome_trace("[]").is_err());
        assert!(check_chrome_trace("{}")
            .unwrap_err()
            .contains("traceEvents"));
        assert!(check_chrome_trace("{\"traceEvents\":{}}").is_err());
        let no_ph = "{\"traceEvents\":[{\"name\":\"x\",\"pid\":1,\"tid\":0}]}";
        assert!(check_chrome_trace(no_ph).unwrap_err().contains("`ph`"));
        let no_dur =
            "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",\"ts\":1,\"pid\":1,\"tid\":0}]}";
        assert!(check_chrome_trace(no_dur).unwrap_err().contains("`dur`"));
        let bad_ph = "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"Q\",\"pid\":1,\"tid\":0}]}";
        assert!(check_chrome_trace(bad_ph).unwrap_err().contains("phase"));
    }
}
