//! Live campaign status, computed from the journal alone.
//!
//! `mtt status DIR` / `mtt watch DIR` run in a *different process* from
//! the campaign they observe: everything here is derived from journal
//! records, never from in-process state. The summary is a
//! **permutation-invariant** function of the record *set* — `done` cells
//! dedup by content address, counters are sums/maxes, and ties break by
//! deterministic ordering — so the record order a parallel campaign
//! happened to write (or a resumed campaign appended) cannot change what
//! the observer reports. A proptest pins this.

use crate::journal::{JournalRecord, ParsedJournal};
use std::collections::{BTreeMap, BTreeSet};

/// What one pool worker contributed (wall-clock view).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerUse {
    /// Worker id as assigned by the journal sink.
    pub worker: u64,
    /// Cells/jobs this worker completed.
    pub cells: u64,
    /// Summed wall time inside those runs, microseconds.
    pub busy_us: u64,
}

/// The one-screen summary of a journal.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatusSummary {
    /// Campaign label (from the header; empty if the header is missing,
    /// e.g. a journal truncated before its first record).
    pub label: String,
    /// Grid size from the header, if one was seen.
    pub total: Option<u64>,
    /// Distinct completed cells (by content address) plus generic jobs.
    pub done: u64,
    /// Completed cells whose oracle judged the run failed.
    pub failed: u64,
    /// Completed cells that exceeded the per-run budget.
    pub timeouts: u64,
    /// Cells with a `start` but no `done` record (claimed, in flight —
    /// or lost to a crash).
    pub in_flight: u64,
    /// Distinct Mazurkiewicz-trace fingerprints across completed cells —
    /// the live count of genuinely distinct schedules the campaign has
    /// visited. 0 when no record carries a fingerprint (e.g. a v1
    /// journal). Set-union semantics, so record order cannot matter.
    pub distinct_schedules: u64,
    /// Whether a clean `end` marker was seen.
    pub complete: bool,
    /// Latest `t_us` across all records: elapsed time of the most recent
    /// writing process.
    pub elapsed_us: u64,
    /// Per-worker utilization, sorted by worker id.
    pub workers: Vec<WorkerUse>,
    /// Whether a half-written final record was discarded while reading.
    pub tail_discarded: bool,
}

impl StatusSummary {
    /// Fold a parsed journal into its summary. Record order never matters:
    /// see the module docs.
    pub fn from_journal(parsed: &ParsedJournal) -> StatusSummary {
        let mut label: Option<String> = None;
        let mut total: Option<u64> = None;
        let mut elapsed_us = 0u64;
        let mut complete = false;
        // Dedup by cell address / job index; ties resolved by the minimal
        // (t_us, worker, wall_us) witness so any arrival order folds to
        // the same choice.
        let mut done_cells: BTreeMap<String, (u64, u64, u64, bool, bool)> = BTreeMap::new();
        let mut jobs: BTreeMap<u64, (u64, u64, u64)> = BTreeMap::new();
        let mut started: BTreeSet<String> = BTreeSet::new();
        let mut schedules: BTreeSet<String> = BTreeSet::new();
        for rec in &parsed.records {
            match rec {
                JournalRecord::Campaign(m) => {
                    let l = label.get_or_insert_with(|| m.label.clone());
                    if m.label < *l {
                        *l = m.label.clone();
                    }
                    total = Some(total.unwrap_or(0).max(m.total_cells));
                }
                JournalRecord::Start(s) => {
                    elapsed_us = elapsed_us.max(s.t_us);
                    started.insert(s.cell.clone());
                }
                JournalRecord::Done(d) => {
                    elapsed_us = elapsed_us.max(d.t_us);
                    if let Some(fp) = &d.fingerprint {
                        schedules.insert(fp.clone());
                    }
                    let witness = (d.t_us, d.worker, d.wall_us, d.failed, d.timed_out);
                    let e = done_cells.entry(d.cell.clone()).or_insert(witness);
                    if witness < *e {
                        *e = witness;
                    }
                }
                JournalRecord::Job(j) => {
                    elapsed_us = elapsed_us.max(j.t_us);
                    let witness = (j.t_us, j.worker, j.wall_us);
                    let e = jobs.entry(j.index).or_insert(witness);
                    if witness < *e {
                        *e = witness;
                    }
                }
                JournalRecord::End(e) => {
                    elapsed_us = elapsed_us.max(e.t_us);
                    complete = true;
                    let l = label.get_or_insert_with(|| e.label.clone());
                    if e.label < *l {
                        *l = e.label.clone();
                    }
                }
            }
        }
        let mut workers: BTreeMap<u64, WorkerUse> = BTreeMap::new();
        let mut failed = 0u64;
        let mut timeouts = 0u64;
        for &(_, worker, wall_us, f, t) in done_cells.values() {
            failed += u64::from(f);
            timeouts += u64::from(t);
            let w = workers.entry(worker).or_insert(WorkerUse {
                worker,
                ..WorkerUse::default()
            });
            w.cells += 1;
            w.busy_us += wall_us;
        }
        for &(_, worker, wall_us) in jobs.values() {
            let w = workers.entry(worker).or_insert(WorkerUse {
                worker,
                ..WorkerUse::default()
            });
            w.cells += 1;
            w.busy_us += wall_us;
        }
        let in_flight = started
            .iter()
            .filter(|cell| !done_cells.contains_key(*cell))
            .count() as u64;
        StatusSummary {
            label: label.unwrap_or_default(),
            total,
            done: done_cells.len() as u64 + jobs.len() as u64,
            failed,
            timeouts,
            in_flight,
            distinct_schedules: schedules.len() as u64,
            complete,
            elapsed_us,
            workers: workers.into_values().collect(),
            tail_discarded: parsed.tail_discarded,
        }
    }

    /// Completed cells per second of the latest writing process.
    pub fn rate_per_sec(&self) -> f64 {
        let secs = self.elapsed_us as f64 / 1e6;
        if secs > 0.0 {
            self.done as f64 / secs
        } else {
            0.0
        }
    }

    /// Estimated seconds to completion at the observed rate; `None` when
    /// the grid size is unknown, the campaign is complete, or no cell has
    /// finished yet.
    pub fn eta_secs(&self) -> Option<f64> {
        let total = self.total?;
        if self.complete || self.done == 0 || total <= self.done {
            return None;
        }
        let rate = self.rate_per_sec();
        (rate > 0.0).then(|| (total - self.done) as f64 / rate)
    }

    /// Render the summary (the `mtt status` output for one journal).
    pub fn render(&self) -> String {
        let total = self
            .total
            .map_or_else(|| "?".to_string(), |t| t.to_string());
        let mut out = format!(
            "[{}] {}/{} cells  failed {}  timeouts {}",
            self.label, self.done, total, self.failed, self.timeouts
        );
        if self.in_flight > 0 {
            out.push_str(&format!("  in flight {}", self.in_flight));
        }
        if self.distinct_schedules > 0 {
            out.push_str(&format!("  distinct schedules {}", self.distinct_schedules));
        }
        if self.complete {
            out.push_str("  complete");
        }
        if self.tail_discarded {
            out.push_str("  (half-written final record discarded)");
        }
        out.push('\n');
        if !self.complete {
            let eta = self
                .eta_secs()
                .map_or_else(|| "?".to_string(), |s| format!("{s:.1}s"));
            out.push_str(&format!(
                "  elapsed {:.1}s  {:.1} cells/s  ETA {eta}\n",
                self.elapsed_us as f64 / 1e6,
                self.rate_per_sec()
            ));
        }
        for w in &self.workers {
            out.push_str(&format!(
                "  worker {}: {} cells  busy {} ms\n",
                w.worker,
                w.cells,
                w.busy_us / 1000
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{CampaignEnd, CampaignMeta, CellDone, CellStart};

    fn done(cell: &str, worker: u64, failed: bool) -> JournalRecord {
        JournalRecord::Done(CellDone {
            cell: cell.into(),
            failed,
            wall_us: 1000,
            t_us: 5000,
            worker,
            ..CellDone::default()
        })
    }

    fn journal(records: Vec<JournalRecord>) -> ParsedJournal {
        ParsedJournal {
            records,
            tail_discarded: false,
        }
    }

    #[test]
    fn summary_counts_progress_and_failures() {
        let s = StatusSummary::from_journal(&journal(vec![
            JournalRecord::Campaign(CampaignMeta {
                label: "e1".into(),
                total_cells: 4,
                ..CampaignMeta::default()
            }),
            JournalRecord::Start(CellStart {
                cell: "cc".into(),
                t_us: 6000,
                ..CellStart::default()
            }),
            done("aa", 0, true),
            done("bb", 1, false),
        ]));
        assert_eq!(s.label, "e1");
        assert_eq!((s.total, s.done, s.failed), (Some(4), 2, 1));
        assert_eq!(s.in_flight, 1);
        assert!(!s.complete);
        assert_eq!(s.elapsed_us, 6000);
        assert_eq!(s.workers.len(), 2);
        let r = s.render();
        assert!(r.contains("[e1] 2/4 cells"), "{r}");
        assert!(r.contains("failed 1"), "{r}");
        assert!(r.contains("in flight 1"), "{r}");
        assert!(r.contains("ETA"), "{r}");
    }

    #[test]
    fn duplicate_done_records_count_once() {
        // A resumed campaign may legitimately re-run a cell (e.g. the
        // first pass had no telemetry); the observer must not double-count.
        let s = StatusSummary::from_journal(&journal(vec![
            done("aa", 0, true),
            done("aa", 1, true),
            JournalRecord::End(CampaignEnd {
                label: "e1".into(),
                completed: 1,
                t_us: 9000,
            }),
        ]));
        assert_eq!((s.done, s.failed), (1, 1));
        assert!(s.complete);
        assert!(s.render().contains("complete"));
        assert!(s.eta_secs().is_none());
    }

    #[test]
    fn distinct_schedules_union_dedups_and_tolerates_missing() {
        let fp = |cell: &str, fp: Option<&str>| {
            JournalRecord::Done(CellDone {
                cell: cell.into(),
                fingerprint: fp.map(str::to_string),
                ..CellDone::default()
            })
        };
        let recs = vec![
            fp("aa", Some("0badc0de")),
            fp("bb", Some("0badc0de")), // same schedule, different cell
            fp("cc", Some("deadbeef")),
            fp("dd", None), // v1 record: no fingerprint
        ];
        let fwd = StatusSummary::from_journal(&journal(recs.clone()));
        assert_eq!(fwd.distinct_schedules, 2);
        assert!(
            fwd.render().contains("distinct schedules 2"),
            "{}",
            fwd.render()
        );
        let rev = StatusSummary::from_journal(&journal(recs.into_iter().rev().collect()));
        assert_eq!(fwd, rev);
        // No fingerprints at all: the column stays out of the render.
        let bare = StatusSummary::from_journal(&journal(vec![fp("aa", None)]));
        assert_eq!(bare.distinct_schedules, 0);
        assert!(!bare.render().contains("distinct schedules"));
    }

    #[test]
    fn summary_is_order_invariant_on_a_small_case() {
        let recs = vec![
            JournalRecord::Campaign(CampaignMeta {
                label: "e1".into(),
                total_cells: 3,
                ..CampaignMeta::default()
            }),
            done("aa", 0, false),
            done("bb", 1, true),
            done("aa", 1, false),
        ];
        let fwd = StatusSummary::from_journal(&journal(recs.clone()));
        let rev = StatusSummary::from_journal(&journal(recs.into_iter().rev().collect()));
        assert_eq!(fwd, rev);
    }
}
