//! `RaceCell`: a torn-value detector for *real* (native-thread) races.
//!
//! The lockset and vector-clock detectors in this crate consume the
//! instrumentation event stream — they reason about *model* accesses. When
//! the runtime executes a program on real OS threads
//! (`RuntimeBackend::Native`), racy accesses are physical loads and stores
//! and need a physical oracle. `RaceCell` is that oracle, in the style of
//! the `race_cell` testbench idiom: the value is stored **twice**, in a
//! primary and a shadow word. A writer updates the primary first and the
//! shadow second; a reader loads them in the *opposite* order (shadow
//! first). Any reader that overlaps a writer can therefore observe the two
//! words mid-update and see them disagree — a **torn read**, which is
//! direct, ground-truth evidence that an unsynchronized concurrent access
//! actually happened on this execution.
//!
//! Properties:
//!
//! * **No false positives.** If every access is ordered by real
//!   synchronization (mutex acquire/release, join, …), both words are
//!   published together and readers always see them equal.
//! * **Best-effort detection.** A racy access is only flagged when the
//!   reader physically lands inside the writer's two-store window (or a
//!   write-write race leaves the words permanently disagreeing). Like any
//!   dynamic race oracle it can miss; it never lies.
//! * All operations are `Relaxed` atomics: the cell never *adds*
//!   synchronization that would mask the very races it exists to observe.

use std::sync::atomic::{AtomicI64, Ordering};

/// What one [`RaceCell::get`] observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Racey {
    /// Primary and shadow agreed: a well-ordered read of this value.
    Consistent(i64),
    /// Primary and shadow disagreed: the read overlapped an
    /// unsynchronized write (or a write-write race corrupted the pair).
    /// Carries the primary word as the best-guess value.
    Inconsistent(i64),
}

impl Racey {
    /// The observed value, regardless of consistency.
    pub fn value(self) -> i64 {
        match self {
            Racey::Consistent(v) | Racey::Inconsistent(v) => v,
        }
    }

    /// Was the observation torn?
    pub fn is_torn(self) -> bool {
        matches!(self, Racey::Inconsistent(_))
    }
}

/// An `i64` cell that detects (some) unsynchronized concurrent accesses.
///
/// See the module docs for the detection protocol. The native runtime
/// backend stores every non-volatile program variable in one of these and
/// reports torn observations as manifested data races.
#[derive(Debug, Default)]
pub struct RaceCell {
    /// Written first, read second.
    primary: AtomicI64,
    /// Written second, read first.
    shadow: AtomicI64,
}

impl RaceCell {
    /// A cell holding `value`.
    pub fn new(value: i64) -> Self {
        RaceCell {
            primary: AtomicI64::new(value),
            shadow: AtomicI64::new(value),
        }
    }

    /// Store `value`. Primary first, shadow second — the window between
    /// the two stores is what concurrent readers can catch.
    pub fn set(&self, value: i64) {
        self.primary.store(value, Ordering::Relaxed);
        self.shadow.store(value, Ordering::Relaxed);
    }

    /// Load the value, reporting whether the observation was torn.
    /// Shadow first, primary second (opposite of the writer).
    pub fn get(&self) -> Racey {
        let shadow = self.shadow.load(Ordering::Relaxed);
        let primary = self.primary.load(Ordering::Relaxed);
        if shadow == primary {
            Racey::Consistent(primary)
        } else {
            Racey::Inconsistent(primary)
        }
    }

    /// The primary word alone, for readers that hold external
    /// synchronization and only need the value (e.g. harvesting final
    /// variable values after every thread joined).
    pub fn load_synced(&self) -> i64 {
        self.primary.load(Ordering::Relaxed)
    }

    #[cfg(test)]
    fn tear(&self, primary: i64) {
        // Simulate a writer frozen between its two stores.
        self.primary.store(primary, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn sequential_use_is_always_consistent() {
        let c = RaceCell::new(7);
        assert_eq!(c.get(), Racey::Consistent(7));
        for v in [0, -3, i64::MAX, i64::MIN, 42] {
            c.set(v);
            assert_eq!(c.get(), Racey::Consistent(v));
            assert_eq!(c.load_synced(), v);
            assert!(!c.get().is_torn());
        }
    }

    #[test]
    fn a_writer_frozen_mid_update_is_observed_as_torn() {
        let c = RaceCell::new(1);
        c.tear(2); // primary updated, shadow still old: write in flight
        let r = c.get();
        assert!(r.is_torn());
        assert_eq!(r, Racey::Inconsistent(2));
        assert_eq!(r.value(), 2);
        // The writer finishing repairs the pair.
        c.set(2);
        assert_eq!(c.get(), Racey::Consistent(2));
    }

    #[test]
    fn synchronized_cross_thread_handoff_never_reports_torn() {
        // Mutex-ordered accesses must never be flagged: the no-false-
        // positive property the native backend's benign programs rely on.
        let cell = Arc::new(RaceCell::new(0));
        let guard = Arc::new(std::sync::Mutex::new(()));
        let mut handles = Vec::new();
        for t in 0..4 {
            let cell = Arc::clone(&cell);
            let guard = Arc::clone(&guard);
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let _g = guard.lock().unwrap();
                    let r = cell.get();
                    assert!(
                        !r.is_torn(),
                        "synchronized access must be consistent (thread {t}, iter {i})"
                    );
                    cell.set(r.value() + 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cell.get(), Racey::Consistent(2000));
    }

    #[test]
    fn unsynchronized_hammering_only_yields_written_values() {
        // Detection of a real race is best-effort, so this test asserts
        // only the properties that must always hold: every consistent
        // observation is a value some writer actually stored, and nothing
        // panics or wedges under contention.
        let cell = Arc::new(RaceCell::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut v = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    v += 1;
                    cell.set(v);
                }
                v
            })
        };
        let mut torn = 0u64;
        for _ in 0..200_000 {
            match cell.get() {
                Racey::Consistent(v) => assert!(v >= 0),
                Racey::Inconsistent(_) => torn += 1,
            }
        }
        stop.store(true, Ordering::Relaxed);
        let last = writer.join().unwrap();
        assert!(last > 0, "writer made progress");
        // `torn` may legitimately be zero on a machine that serialized the
        // threads; it must simply never exceed the observation count.
        assert!(torn <= 200_000);
    }
}
