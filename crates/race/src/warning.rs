//! Race warnings: the detector output format.

use mtt_instrument::{AccessKind, Loc, ThreadId, VarId};

/// One endpoint of a reported race.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessInfo {
    /// Accessing thread.
    pub thread: ThreadId,
    /// Program location of the access.
    pub loc: Loc,
    /// Read or write.
    pub kind: AccessKind,
}

mtt_json::json_struct!(AccessInfo { thread, loc, kind });

/// A reported (potential) data race on one variable.
#[derive(Clone, Debug)]
pub struct RaceWarning {
    /// The racy variable.
    pub var: VarId,
    /// The earlier access (as evidence; for lockset warnings this is the
    /// most recent conflicting access before the report).
    pub first: AccessInfo,
    /// The access at which the race was reported.
    pub second: AccessInfo,
    /// Which detector produced the warning.
    pub detector: &'static str,
    /// Human-readable evidence (empty lockset, unordered vector clocks, …).
    pub detail: String,
}

impl RaceWarning {
    /// One-line rendering for reports.
    pub fn render(&self, var_name: &str) -> String {
        format!(
            "[{}] race on `{var_name}`: {:?} {} at {} vs {:?} {} at {} ({})",
            self.detector,
            self.first.thread,
            verb(self.first.kind),
            self.first.loc,
            self.second.thread,
            verb(self.second.kind),
            self.second.loc,
            self.detail
        )
    }
}

fn verb(k: AccessKind) -> &'static str {
    match k {
        AccessKind::Read => "read",
        AccessKind::Write => "write",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_names_both_endpoints() {
        let w = RaceWarning {
            var: VarId(0),
            first: AccessInfo {
                thread: ThreadId(1),
                loc: Loc::new("a.rs", 3),
                kind: AccessKind::Write,
            },
            second: AccessInfo {
                thread: ThreadId(2),
                loc: Loc::new("b.rs", 9),
                kind: AccessKind::Read,
            },
            detector: "test",
            detail: "because".into(),
        };
        let s = w.render("counter");
        assert!(s.contains("counter"));
        assert!(s.contains("a.rs:3"));
        assert!(s.contains("b.rs:9"));
        assert!(s.contains("write"));
        assert!(s.contains("read"));
    }
}
