//! Happens-before race detection with vector clocks and FastTrack-style
//! epoch fast paths.
//!
//! The detector tracks the happens-before order induced by the model's
//! synchronization operations (lock release→acquire, notify→wake, semaphore
//! release→acquire, barrier, spawn→start, exit→join) and reports two
//! accesses to the same variable as a race exactly when neither happens
//! before the other and at least one writes. Unlike the lockset approach it
//! never reports a false alarm for the *observed* execution; the price is
//! that races the observed interleaving happened to order go unreported —
//! precisely the precision/recall trade that experiment E2 measures.

use crate::warning::{AccessInfo, RaceWarning};
use mtt_instrument::{AccessKind, CondId, Event, EventSink, LockId, Op, SemId, ThreadId, VarId};
use std::collections::HashMap;

// The vector-clock lattice itself lives in `mtt-causal` (one
// implementation shared with the trace annotator); re-exported here so the
// detector's public API is unchanged.
pub use mtt_causal::VectorClock;

/// A FastTrack epoch: one (thread, clock) pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Epoch {
    thread: ThreadId,
    clock: u32,
}

impl Epoch {
    /// Does the epoch happen before (≤) the clock `vc`?
    #[inline]
    fn le(self, vc: &VectorClock) -> bool {
        self.clock <= vc.get(self.thread)
    }
}

/// Read metadata per variable: a single epoch in the common case, widened
/// to a full clock only under concurrent read-sharing (FastTrack's adaptive
/// representation).
#[derive(Clone, Debug)]
enum ReadState {
    None,
    Epoch(Epoch, AccessInfo),
    Clock(VectorClock, HashMap<ThreadId, AccessInfo>),
}

#[derive(Clone, Debug)]
struct VarMeta {
    write: Option<(Epoch, AccessInfo)>,
    reads: ReadState,
    reported: bool,
}

impl Default for VarMeta {
    fn default() -> Self {
        VarMeta {
            write: None,
            reads: ReadState::None,
            reported: false,
        }
    }
}

/// Online/offline happens-before race detector.
#[derive(Debug, Default)]
pub struct VectorClockDetector {
    threads: HashMap<ThreadId, VectorClock>,
    locks: HashMap<LockId, VectorClock>,
    /// Per-variable synchronization clocks for atomic RMW operations.
    atomics: HashMap<VarId, VectorClock>,
    conds: HashMap<CondId, VectorClock>,
    sems: HashMap<SemId, VectorClock>,
    barriers: HashMap<u32, VectorClock>,
    /// Clock a spawned thread inherits (set at `Spawn`, consumed at
    /// `ThreadStart`).
    pending_start: HashMap<ThreadId, VectorClock>,
    /// Final clock of exited threads (consumed at `Join`).
    exited: HashMap<ThreadId, VectorClock>,
    vars: HashMap<VarId, VarMeta>,
    /// Accumulated warnings (at most one per variable).
    pub warnings: Vec<RaceWarning>,
    /// Number of accesses handled by the O(1) same-epoch fast path (a
    /// FastTrack effectiveness statistic surfaced in the benches).
    pub fast_path_hits: u64,
}

impl VectorClockDetector {
    /// Fresh detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct variables warned about.
    pub fn warning_count(&self) -> usize {
        self.warnings.len()
    }

    fn clock(&mut self, t: ThreadId) -> &mut VectorClock {
        self.threads.entry(t).or_insert_with(|| {
            let mut vc = VectorClock::new();
            vc.set(t, 1);
            vc
        })
    }

    fn now(&mut self, t: ThreadId) -> Epoch {
        let c = self.clock(t).get(t);
        Epoch {
            thread: t,
            clock: c,
        }
    }

    /// release edge: resource clock joins the thread's, thread ticks.
    fn release_into(&mut self, t: ThreadId, key: ResourceKey) {
        let tc = self.clock(t).clone();
        let rc = self.resource(key);
        rc.join(&tc);
        self.clock(t).tick(t);
    }

    /// acquire edge: thread clock joins the resource's.
    fn acquire_from(&mut self, t: ThreadId, key: ResourceKey) {
        let rc = self.resource(key).clone();
        self.clock(t).join(&rc);
    }

    fn resource(&mut self, key: ResourceKey) -> &mut VectorClock {
        match key {
            ResourceKey::Lock(l) => self.locks.entry(l).or_default(),
            ResourceKey::Cond(c) => self.conds.entry(c).or_default(),
            ResourceKey::Sem(s) => self.sems.entry(s).or_default(),
            ResourceKey::Barrier(b) => self.barriers.entry(b).or_default(),
        }
    }

    fn report(&mut self, var: VarId, first: AccessInfo, second: AccessInfo, why: &str) {
        let meta = self.vars.entry(var).or_default();
        if meta.reported {
            return;
        }
        meta.reported = true;
        self.warnings.push(RaceWarning {
            var,
            first,
            second,
            detector: "vector-clock",
            detail: why.to_string(),
        });
    }

    fn on_read(&mut self, ev: &Event, var: VarId) {
        let me = ev.thread;
        let epoch = self.now(me);
        let access = AccessInfo {
            thread: me,
            loc: ev.loc,
            kind: AccessKind::Read,
        };
        let my_clock = self.clock(me).clone();
        let meta = self.vars.entry(var).or_default();

        // Same-epoch read: nothing can have changed.
        if let ReadState::Epoch(e, _) = meta.reads {
            if e == epoch {
                self.fast_path_hits += 1;
                return;
            }
        }

        // write-read race?
        if let Some((w, winfo)) = meta.write {
            if w.thread != me && !w.le(&my_clock) {
                let second = access;
                self.report(var, winfo, second, "read is concurrent with a prior write");
                return;
            }
        }

        // Record the read.
        let meta = self.vars.entry(var).or_default();
        match &mut meta.reads {
            ReadState::None => meta.reads = ReadState::Epoch(epoch, access),
            ReadState::Epoch(e, info) => {
                if e.thread == me {
                    *e = epoch;
                    *info = access;
                } else if e.le(&my_clock) {
                    // Previous read ordered before us: epoch can be replaced.
                    *e = epoch;
                    *info = access;
                } else {
                    // Concurrent readers: widen to a clock.
                    let mut vc = VectorClock::new();
                    vc.set(e.thread, e.clock);
                    vc.set(me, epoch.clock);
                    let mut infos = HashMap::new();
                    infos.insert(e.thread, *info);
                    infos.insert(me, access);
                    meta.reads = ReadState::Clock(vc, infos);
                }
            }
            ReadState::Clock(vc, infos) => {
                vc.set(me, epoch.clock);
                infos.insert(me, access);
            }
        }
    }

    fn on_write(&mut self, ev: &Event, var: VarId) {
        let me = ev.thread;
        let epoch = self.now(me);
        let access = AccessInfo {
            thread: me,
            loc: ev.loc,
            kind: AccessKind::Write,
        };
        let my_clock = self.clock(me).clone();
        let meta = self.vars.entry(var).or_default();

        // Same-epoch write fast path.
        if let Some((w, _)) = meta.write {
            if w == epoch {
                self.fast_path_hits += 1;
                return;
            }
        }

        // write-write race?
        if let Some((w, winfo)) = meta.write {
            if w.thread != me && !w.le(&my_clock) {
                self.report(var, winfo, access, "two concurrent writes");
                return;
            }
        }
        // read-write race?
        let conflict = match &meta.reads {
            ReadState::None => None,
            ReadState::Epoch(e, info) => (e.thread != me && !e.le(&my_clock)).then_some(*info),
            ReadState::Clock(vc, infos) => {
                if vc.le(&my_clock) {
                    None
                } else {
                    infos
                        .iter()
                        .find(|(t, _)| **t != me && vc.get(**t) > my_clock.get(**t))
                        .map(|(_, info)| *info)
                }
            }
        };
        if let Some(rinfo) = conflict {
            self.report(var, rinfo, access, "write is concurrent with a prior read");
            return;
        }

        let meta = self.vars.entry(var).or_default();
        meta.write = Some((epoch, access));
        meta.reads = ReadState::None; // FastTrack: writes clear read state
    }
}

#[derive(Clone, Copy)]
enum ResourceKey {
    Lock(LockId),
    Cond(CondId),
    Sem(SemId),
    Barrier(u32),
}

impl EventSink for VectorClockDetector {
    fn on_event(&mut self, ev: &Event) {
        let me = ev.thread;
        match ev.op {
            Op::VarRead { var, .. } => self.on_read(ev, var),
            Op::VarWrite { var, .. } => self.on_write(ev, var),
            // Atomic RMW: acquire-then-release on the variable's own sync
            // clock — atomics order each other and never race.
            Op::VarRmw { var, .. } => {
                let vc = self.atomics.entry(var).or_default().clone();
                self.clock(me).join(&vc);
                let tc = self.clock(me).clone();
                self.atomics.entry(var).or_default().join(&tc);
                self.clock(me).tick(me);
            }
            Op::LockAcquire { lock } => self.acquire_from(me, ResourceKey::Lock(lock)),
            Op::LockRelease { lock } => self.release_into(me, ResourceKey::Lock(lock)),
            // wait = release(lock) at CondWait, acquire(lock)+acquire(cond)
            // at CondWake; notify = release into the cond's clock.
            Op::CondWait { lock, .. } => self.release_into(me, ResourceKey::Lock(lock)),
            Op::CondWake { cond, lock } => {
                self.acquire_from(me, ResourceKey::Lock(lock));
                self.acquire_from(me, ResourceKey::Cond(cond));
            }
            Op::CondNotify { cond, .. } => self.release_into(me, ResourceKey::Cond(cond)),
            Op::SemAcquire { sem } => self.acquire_from(me, ResourceKey::Sem(sem)),
            Op::SemRelease { sem } => self.release_into(me, ResourceKey::Sem(sem)),
            Op::BarrierArrive { barrier } => self.release_into(me, ResourceKey::Barrier(barrier.0)),
            Op::BarrierPass { barrier } => self.acquire_from(me, ResourceKey::Barrier(barrier.0)),
            Op::Spawn { child } => {
                let pc = self.clock(me).clone();
                self.pending_start.insert(child, pc);
                self.clock(me).tick(me);
            }
            Op::ThreadStart => {
                if let Some(pc) = self.pending_start.remove(&me) {
                    self.clock(me).join(&pc);
                }
            }
            Op::ThreadExit => {
                let fc = self.clock(me).clone();
                self.exited.insert(me, fc);
            }
            Op::Join { target } => {
                if let Some(fc) = self.exited.get(&target).cloned() {
                    self.clock(me).join(&fc);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtt_instrument::Loc;
    use std::sync::Arc;

    fn ev(seq: u64, thread: u32, op: Op) -> Event {
        Event {
            seq,
            time: seq,
            thread: ThreadId(thread),
            loc: Loc::new("p", seq as u32 + 1),
            op,
            locks_held: Arc::from(Vec::<LockId>::new()),
        }
    }

    fn read(seq: u64, t: u32, v: u32) -> Event {
        ev(
            seq,
            t,
            Op::VarRead {
                var: VarId(v),
                value: 0,
            },
        )
    }

    fn write(seq: u64, t: u32, v: u32) -> Event {
        ev(
            seq,
            t,
            Op::VarWrite {
                var: VarId(v),
                value: 0,
            },
        )
    }

    #[test]
    fn vector_clock_algebra() {
        let mut a = VectorClock::new();
        a.set(ThreadId(0), 3);
        let mut b = VectorClock::new();
        b.set(ThreadId(1), 2);
        assert!(!a.le(&b));
        assert!(!b.le(&a));
        let mut j = a.clone();
        j.join(&b);
        assert!(a.le(&j) && b.le(&j));
        assert_eq!(j.get(ThreadId(0)), 3);
        assert_eq!(j.get(ThreadId(1)), 2);
        assert_eq!(j.get(ThreadId(9)), 0);
        assert_eq!(j.tick(ThreadId(9)), 1);
    }

    #[test]
    fn unordered_writes_race() {
        let mut d = VectorClockDetector::new();
        d.on_event(&write(0, 0, 0));
        d.on_event(&write(1, 1, 0));
        assert_eq!(d.warning_count(), 1);
        assert!(d.warnings[0].detail.contains("concurrent"));
    }

    #[test]
    fn lock_ordered_writes_do_not_race() {
        let mut d = VectorClockDetector::new();
        let l = LockId(0);
        d.on_event(&ev(0, 0, Op::LockAcquire { lock: l }));
        d.on_event(&write(1, 0, 0));
        d.on_event(&ev(2, 0, Op::LockRelease { lock: l }));
        d.on_event(&ev(3, 1, Op::LockAcquire { lock: l }));
        d.on_event(&write(4, 1, 0));
        d.on_event(&ev(5, 1, Op::LockRelease { lock: l }));
        assert_eq!(d.warning_count(), 0);
    }

    #[test]
    fn spawn_and_join_order_accesses() {
        let mut d = VectorClockDetector::new();
        d.on_event(&write(0, 0, 0)); // parent writes
        d.on_event(&ev(1, 0, Op::Spawn { child: ThreadId(1) }));
        d.on_event(&ev(2, 1, Op::ThreadStart));
        d.on_event(&write(3, 1, 0)); // child writes after inheriting
        d.on_event(&ev(4, 1, Op::ThreadExit));
        d.on_event(&ev(
            5,
            0,
            Op::Join {
                target: ThreadId(1),
            },
        ));
        d.on_event(&write(6, 0, 0)); // parent writes after join
        assert_eq!(d.warning_count(), 0);
    }

    #[test]
    fn concurrent_read_write_races() {
        let mut d = VectorClockDetector::new();
        d.on_event(&read(0, 0, 0));
        d.on_event(&write(1, 1, 0));
        assert_eq!(d.warning_count(), 1);
        assert!(d.warnings[0].detail.contains("read"));
    }

    #[test]
    fn read_sharing_alone_is_not_a_race() {
        let mut d = VectorClockDetector::new();
        d.on_event(&read(0, 0, 0));
        d.on_event(&read(1, 1, 0));
        d.on_event(&read(2, 2, 0));
        assert_eq!(d.warning_count(), 0);
    }

    #[test]
    fn widened_read_clock_catches_all_concurrent_readers() {
        let mut d = VectorClockDetector::new();
        d.on_event(&read(0, 0, 0));
        d.on_event(&read(1, 1, 0)); // widens to clock
        d.on_event(&write(2, 2, 0)); // unordered with both readers
        assert_eq!(d.warning_count(), 1);
    }

    #[test]
    fn notify_wake_creates_order() {
        let mut d = VectorClockDetector::new();
        let (c, l) = (CondId(0), LockId(0));
        // t0 writes, then waits; t1 writes (while t0 waits) then notifies.
        d.on_event(&ev(0, 0, Op::LockAcquire { lock: l }));
        d.on_event(&write(1, 0, 0));
        d.on_event(&ev(2, 0, Op::CondWait { cond: c, lock: l }));
        d.on_event(&ev(3, 1, Op::LockAcquire { lock: l }));
        d.on_event(&write(4, 1, 0)); // ordered via lock: no race
        d.on_event(&ev(
            5,
            1,
            Op::CondNotify {
                cond: c,
                all: false,
            },
        ));
        d.on_event(&ev(6, 1, Op::LockRelease { lock: l }));
        d.on_event(&ev(7, 0, Op::CondWake { cond: c, lock: l }));
        d.on_event(&write(8, 0, 0)); // ordered via notify/wake + lock
        assert_eq!(d.warning_count(), 0);
    }

    #[test]
    fn semaphore_edges_order_accesses() {
        let mut d = VectorClockDetector::new();
        let s = SemId(0);
        d.on_event(&write(0, 0, 0));
        d.on_event(&ev(1, 0, Op::SemRelease { sem: s }));
        d.on_event(&ev(2, 1, Op::SemAcquire { sem: s }));
        d.on_event(&write(3, 1, 0));
        assert_eq!(d.warning_count(), 0);
    }

    #[test]
    fn barrier_orders_phases() {
        let mut d = VectorClockDetector::new();
        let b = mtt_instrument::BarrierId(0);
        d.on_event(&write(0, 0, 0));
        d.on_event(&ev(1, 0, Op::BarrierArrive { barrier: b }));
        d.on_event(&ev(2, 1, Op::BarrierArrive { barrier: b }));
        d.on_event(&ev(3, 0, Op::BarrierPass { barrier: b }));
        d.on_event(&ev(4, 1, Op::BarrierPass { barrier: b }));
        d.on_event(&write(5, 1, 0));
        assert_eq!(d.warning_count(), 0);
    }

    #[test]
    fn fast_path_hits_on_repeated_access() {
        let mut d = VectorClockDetector::new();
        d.on_event(&write(0, 0, 0));
        d.on_event(&write(1, 0, 0));
        d.on_event(&write(2, 0, 0));
        d.on_event(&read(3, 0, 1));
        d.on_event(&read(4, 0, 1));
        assert!(d.fast_path_hits >= 3, "hits = {}", d.fast_path_hits);
        assert_eq!(d.warning_count(), 0);
    }

    #[test]
    fn one_warning_per_variable() {
        let mut d = VectorClockDetector::new();
        d.on_event(&write(0, 0, 0));
        d.on_event(&write(1, 1, 0));
        d.on_event(&write(2, 2, 0));
        d.on_event(&write(3, 0, 1));
        d.on_event(&write(4, 1, 1));
        assert_eq!(d.warning_count(), 2);
    }

    #[test]
    fn hb_misses_lockset_style_latent_race() {
        // Two writes ordered by *different* locks via an interleaving that
        // orders them: HB stays silent (no false alarm for this execution),
        // while Eraser would flag the missing common lock.
        let mut d = VectorClockDetector::new();
        let (l1, l2) = (LockId(1), LockId(2));
        d.on_event(&ev(0, 0, Op::LockAcquire { lock: l1 }));
        d.on_event(&write(1, 0, 0));
        d.on_event(&ev(2, 0, Op::LockRelease { lock: l1 }));
        // Artificial order: t1 acquires l1 too (creating HB), then uses l2.
        d.on_event(&ev(3, 1, Op::LockAcquire { lock: l1 }));
        d.on_event(&ev(4, 1, Op::LockRelease { lock: l1 }));
        d.on_event(&ev(5, 1, Op::LockAcquire { lock: l2 }));
        d.on_event(&write(6, 1, 0));
        d.on_event(&ev(7, 1, Op::LockRelease { lock: l2 }));
        assert_eq!(d.warning_count(), 0, "HB correctly silent here");
    }
}
