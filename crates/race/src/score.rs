//! Detector scoring against annotated ground truth.
//!
//! §4 of the paper: the annotations "denote the bugs revealed by the trace
//! so that the ratio between real bugs and false warnings can be easily
//! verified". A warning is a true positive when its variable belongs to a
//! documented racy footprint; a documented racy variable with no warning is
//! a miss.

use crate::warning::RaceWarning;
use mtt_instrument::VarTable;
use std::collections::BTreeSet;

/// Precision/recall summary for one detector run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DetectorScore {
    /// Racy variables correctly warned about.
    pub true_positives: usize,
    /// Warnings on variables not part of any documented race.
    pub false_positives: usize,
    /// Documented racy variables with no warning.
    pub missed: usize,
    /// Names of the false-positive variables (diagnostics for reports).
    pub false_positive_vars: Vec<String>,
    /// Names of the missed variables.
    pub missed_vars: Vec<String>,
}

impl DetectorScore {
    /// Fraction of warnings that are real: `tp / (tp + fp)`; 1.0 when no
    /// warnings were produced (vacuously precise).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Fraction of documented racy variables found: `tp / (tp + missed)`;
    /// 1.0 when nothing was there to find.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.missed;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// The paper's "percentage of false alarms": `fp / (tp + fp)`.
    pub fn false_alarm_rate(&self) -> f64 {
        1.0 - self.precision()
    }
}

/// Grade `warnings` against the set of variable names documented as racy.
///
/// `racy_vars` comes from the benchmark's bug documentation (the variable
/// footprints of race-class bugs); `table` maps the warnings' `VarId`s back
/// to names.
pub fn score<'a, I>(warnings: &[RaceWarning], racy_vars: I, table: &VarTable) -> DetectorScore
where
    I: IntoIterator<Item = &'a str>,
{
    let truth: BTreeSet<&str> = racy_vars.into_iter().collect();
    let warned: BTreeSet<&str> = warnings.iter().map(|w| table.name(w.var)).collect();

    let mut s = DetectorScore::default();
    for w in &warned {
        if truth.contains(w) {
            s.true_positives += 1;
        } else {
            s.false_positives += 1;
            s.false_positive_vars.push(w.to_string());
        }
    }
    for t in &truth {
        if !warned.contains(t) {
            s.missed += 1;
            s.missed_vars.push(t.to_string());
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::warning::AccessInfo;
    use mtt_instrument::{AccessKind, Loc, ThreadId, VarId};

    fn warn(var: u32) -> RaceWarning {
        let a = AccessInfo {
            thread: ThreadId(0),
            loc: Loc::new("p", 1),
            kind: AccessKind::Write,
        };
        RaceWarning {
            var: VarId(var),
            first: a,
            second: a,
            detector: "t",
            detail: String::new(),
        }
    }

    fn table() -> VarTable {
        VarTable::new(vec!["x".into(), "y".into(), "z".into()])
    }

    #[test]
    fn perfect_detection() {
        let s = score(&[warn(0), warn(1)], ["x", "y"], &table());
        assert_eq!(s.true_positives, 2);
        assert_eq!(s.false_positives, 0);
        assert_eq!(s.missed, 0);
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
        assert_eq!(s.false_alarm_rate(), 0.0);
    }

    #[test]
    fn false_alarm_and_miss() {
        let s = score(&[warn(2)], ["x"], &table());
        assert_eq!(s.true_positives, 0);
        assert_eq!(s.false_positives, 1);
        assert_eq!(s.missed, 1);
        assert_eq!(s.false_positive_vars, vec!["z"]);
        assert_eq!(s.missed_vars, vec!["x"]);
        assert_eq!(s.precision(), 0.0);
        assert_eq!(s.recall(), 0.0);
        assert_eq!(s.false_alarm_rate(), 1.0);
    }

    #[test]
    fn duplicate_warnings_on_one_var_count_once() {
        let s = score(&[warn(0), warn(0), warn(0)], ["x"], &table());
        assert_eq!(s.true_positives, 1);
        assert_eq!(s.false_positives, 0);
    }

    #[test]
    fn empty_everything_is_vacuously_perfect() {
        let s = score(&[], std::iter::empty(), &table());
        assert_eq!(s.precision(), 1.0);
        assert_eq!(s.recall(), 1.0);
    }
}
