//! # mtt-race — data-race detectors
//!
//! §2.2 of the paper: race detectors "look, online or offline, for evidence
//! of existing races", and "the main problem of race detectors of all
//! breeds is that they produce too many false alarms". This crate provides
//! the two classic detector families so they can be compared on exactly the
//! axes the paper names — detection rate, false-alarm rate, and overhead:
//!
//! * [`EraserLockset`] — the lockset algorithm of Savage et al.'s Eraser
//!   (the paper's reference \[30\]): a variable must be consistently
//!   protected by at least one common lock. Sensitive (catches races that
//!   did not manifest in this interleaving) but prone to false alarms on
//!   programs synchronized without locks.
//! * [`VectorClockDetector`] — precise happens-before tracking with
//!   FastTrack-style epoch fast paths: reports only accesses genuinely
//!   unordered in the observed execution. No false alarms, but misses
//!   races the observed interleaving happened to order.
//!
//! Both implement [`mtt_instrument::EventSink`], so they run **online**
//! (attached to a live execution) and **offline** (fed a stored
//! [`mtt_trace::Trace`]) with the same code — the paper's on-line/off-line
//! duality.
//!
//! [`score()`](score::score) grades a detector's warnings against the ground truth carried
//! by annotated traces, yielding the detection/false-alarm table of
//! experiment E2.
//!
//! A third oracle, [`RaceCell`], serves the *native-threads* runtime
//! backend: it detects physically torn reads of a redundantly-stored value,
//! giving ground-truth evidence of a real race on real hardware — where
//! there is no serialized event stream to reason over.

pub mod lockset;
pub mod racecell;
pub mod score;
pub mod vectorclock;
pub mod warning;

pub use lockset::EraserLockset;
pub use racecell::{RaceCell, Racey};
pub use score::{score, DetectorScore};
pub use vectorclock::{VectorClock, VectorClockDetector};
pub use warning::{AccessInfo, RaceWarning};
