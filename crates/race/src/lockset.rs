//! The Eraser lockset algorithm (Savage et al. 1997, the paper's \[30\]).
//!
//! Invariant checked: every shared variable is protected by some lock held
//! on *every* access. Per variable the detector refines a candidate set
//! `C(v)` — the locks held at every access so far — and walks the classic
//! state machine:
//!
//! ```text
//! Virgin ──first write──► Exclusive(t) ──read by t'──► Shared
//!                              │                          │write
//!                              └──────write by t'──► SharedModified
//! ```
//!
//! `C(v)` is only refined (intersected) once the variable leaves
//! `Exclusive`, and emptiness is only reported in `SharedModified` —
//! read-sharing with no lock is benign. One warning is reported per
//! variable (the first time `C(v)` empties), which matches how Eraser-class
//! tools deduplicate their output.

use crate::warning::{AccessInfo, RaceWarning};
use mtt_instrument::{AccessKind, Event, EventSink, LockId, ThreadId, VarId};
use std::collections::HashMap;

#[derive(Clone, Debug, PartialEq, Eq)]
enum State {
    Virgin,
    Exclusive(ThreadId),
    Shared,
    SharedModified,
}

#[derive(Clone, Debug)]
struct VarState {
    state: State,
    /// Candidate lockset; `None` = not yet initialized (still Exclusive).
    candidates: Option<Vec<LockId>>,
    /// Most recent access, as warning evidence.
    last: Option<AccessInfo>,
    reported: bool,
}

impl Default for VarState {
    fn default() -> Self {
        VarState {
            state: State::Virgin,
            candidates: None,
            last: None,
            reported: false,
        }
    }
}

/// Online/offline Eraser-style lockset race detector.
#[derive(Debug, Default)]
pub struct EraserLockset {
    vars: HashMap<VarId, VarState>,
    /// Accumulated warnings.
    pub warnings: Vec<RaceWarning>,
}

impl EraserLockset {
    /// Fresh detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct variables warned about.
    pub fn warning_count(&self) -> usize {
        self.warnings.len()
    }

    /// The candidate lockset currently associated with `var` (for tests and
    /// diagnostics). `None` when the variable is still thread-exclusive.
    pub fn candidates(&self, var: VarId) -> Option<&[LockId]> {
        self.vars.get(&var)?.candidates.as_deref()
    }

    fn on_access(&mut self, ev: &Event, var: VarId, kind: AccessKind) {
        let vs = self.vars.entry(var).or_default();
        let me = ev.thread;
        let access = AccessInfo {
            thread: me,
            loc: ev.loc,
            kind,
        };

        // State transitions.
        let new_state = match (&vs.state, kind) {
            (State::Virgin, AccessKind::Read) => State::Exclusive(me),
            (State::Virgin, AccessKind::Write) => State::Exclusive(me),
            (State::Exclusive(t), _) if *t == me => State::Exclusive(me),
            (State::Exclusive(_), AccessKind::Read) => State::Shared,
            (State::Exclusive(_), AccessKind::Write) => State::SharedModified,
            (State::Shared, AccessKind::Read) => State::Shared,
            (State::Shared, AccessKind::Write) => State::SharedModified,
            (State::SharedModified, _) => State::SharedModified,
        };

        let was_exclusive = matches!(vs.state, State::Virgin | State::Exclusive(_));
        let is_shared_now = matches!(new_state, State::Shared | State::SharedModified);

        if is_shared_now {
            let held: Vec<LockId> = ev.locks_held.to_vec();
            match &mut vs.candidates {
                None => {
                    // First shared access: initialize C(v) to the locks held
                    // now (Eraser initializes to "all locks" and intersects
                    // immediately — equivalent).
                    vs.candidates = Some(held);
                }
                Some(c) => {
                    c.retain(|l| held.contains(l));
                }
            }
            let empty = vs.candidates.as_ref().is_some_and(|c| c.is_empty());
            if empty && matches!(new_state, State::SharedModified) && !vs.reported {
                vs.reported = true;
                let first = vs.last.unwrap_or(access);
                self.warnings.push(RaceWarning {
                    var,
                    first,
                    second: access,
                    detector: "eraser",
                    detail: "candidate lockset is empty".into(),
                });
            }
        } else if was_exclusive {
            // Still exclusive: nothing to refine.
        }

        vs.state = new_state;
        vs.last = Some(access);
    }
}

impl EventSink for EraserLockset {
    fn on_event(&mut self, ev: &Event) {
        // Atomic RMWs are synchronization actions, not plain data accesses:
        // Eraser examines only plain reads and writes.
        if !ev.op.is_plain_access() {
            return;
        }
        if let Some((var, kind)) = ev.var_access() {
            self.on_access(ev, var, kind);
        }
        // Lock operations themselves carry no refinement work: the held-set
        // snapshot on each access event is the whole context Eraser needs.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtt_instrument::{Loc, Op};
    use std::sync::Arc;

    fn access(seq: u64, thread: u32, var: u32, write: bool, locks: &[u32]) -> Event {
        Event {
            seq,
            time: seq,
            thread: ThreadId(thread),
            loc: Loc::new("p", seq as u32 + 1),
            op: if write {
                Op::VarWrite {
                    var: VarId(var),
                    value: 0,
                }
            } else {
                Op::VarRead {
                    var: VarId(var),
                    value: 0,
                }
            },
            locks_held: Arc::from(locks.iter().map(|&l| LockId(l)).collect::<Vec<_>>()),
        }
    }

    #[test]
    fn consistently_locked_variable_is_clean() {
        let mut d = EraserLockset::new();
        d.on_event(&access(0, 0, 0, true, &[1]));
        d.on_event(&access(1, 1, 0, true, &[1]));
        d.on_event(&access(2, 0, 0, false, &[1]));
        d.finish();
        assert!(d.warnings.is_empty());
        assert_eq!(d.candidates(VarId(0)), Some(&[LockId(1)][..]));
    }

    #[test]
    fn unlocked_shared_write_is_reported_once() {
        let mut d = EraserLockset::new();
        d.on_event(&access(0, 0, 0, true, &[]));
        d.on_event(&access(1, 1, 0, true, &[]));
        d.on_event(&access(2, 0, 0, true, &[]));
        assert_eq!(d.warning_count(), 1, "deduplicated per variable");
        let w = &d.warnings[0];
        assert_eq!(w.var, VarId(0));
        assert_eq!(w.detector, "eraser");
        assert_eq!(w.first.thread, ThreadId(0));
        assert_eq!(w.second.thread, ThreadId(1));
    }

    #[test]
    fn thread_local_variable_never_reported() {
        let mut d = EraserLockset::new();
        for i in 0..10 {
            d.on_event(&access(i, 0, 0, i % 2 == 0, &[]));
        }
        assert!(d.warnings.is_empty(), "exclusive access needs no locks");
    }

    #[test]
    fn read_sharing_without_locks_is_benign() {
        let mut d = EraserLockset::new();
        d.on_event(&access(0, 0, 0, true, &[])); // init write, exclusive
        d.on_event(&access(1, 1, 0, false, &[])); // read-share
        d.on_event(&access(2, 2, 0, false, &[]));
        assert!(
            d.warnings.is_empty(),
            "read-only sharing after init is the documented Eraser refinement"
        );
        // ...but a later unlocked write flips it to a race.
        d.on_event(&access(3, 1, 0, true, &[]));
        assert_eq!(d.warning_count(), 1);
    }

    #[test]
    fn disjoint_locks_are_a_race_eraser_style() {
        // Thread 0 always holds lock 1, thread 1 always holds lock 2: no
        // common lock — the classic lockset true positive that
        // happens-before may miss. Classic Eraser starts refining when the
        // second thread arrives, so the empty intersection shows at the
        // *third* access.
        let mut d = EraserLockset::new();
        d.on_event(&access(0, 0, 0, true, &[1]));
        d.on_event(&access(1, 1, 0, true, &[2]));
        assert_eq!(d.candidates(VarId(0)), Some(&[LockId(2)][..]));
        d.on_event(&access(2, 0, 0, true, &[1]));
        assert_eq!(d.warning_count(), 1);
        assert!(d.warnings[0].detail.contains("empty"));
    }

    #[test]
    fn lockset_refines_by_intersection() {
        let mut d = EraserLockset::new();
        d.on_event(&access(0, 0, 0, true, &[1, 2]));
        // Second thread: C(v) initialized to its held set (classic Eraser
        // does not refine while the variable is thread-exclusive).
        d.on_event(&access(1, 1, 0, true, &[2, 3]));
        assert_eq!(d.candidates(VarId(0)), Some(&[LockId(2), LockId(3)][..]));
        d.on_event(&access(2, 0, 0, true, &[2]));
        assert_eq!(d.candidates(VarId(0)), Some(&[LockId(2)][..]));
        assert!(d.warnings.is_empty());
        d.on_event(&access(3, 1, 0, true, &[2]));
        assert!(d.warnings.is_empty(), "lock 2 consistently protects");
    }

    #[test]
    fn variables_are_tracked_independently() {
        let mut d = EraserLockset::new();
        d.on_event(&access(0, 0, 0, true, &[]));
        d.on_event(&access(1, 1, 0, true, &[])); // race on var 0
        d.on_event(&access(2, 0, 1, true, &[7]));
        d.on_event(&access(3, 1, 1, true, &[7])); // var 1 clean
        assert_eq!(d.warning_count(), 1);
        assert_eq!(d.warnings[0].var, VarId(0));
    }
}
