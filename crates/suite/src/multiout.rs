//! The paper's fourth benchmark component: "a specially prepared benchmark
//! program that has no inputs and many possible results. We create the
//! program by having a 'main' that starts many of our simpler documented
//! sample programs in parallel, each of which writes its result (with a
//! number of possible outcomes) into a variable. The benchmark program
//! outputs these results as well as the order in which the sample programs
//! finished. Tools such as noise makers can be compared as to the
//! distribution of their results."
//!
//! [`program`] composes four racy mini-components (none of which can
//! deadlock, so every run terminates with *some* result vector). The
//! observable result of a run is [`signature`]: the component result
//! variables plus the thread finish order — exactly the §4.4 output. The
//! distribution analysis over many runs lives in `mtt-experiment`.

use mtt_runtime::{Outcome, Program, ProgramBuilder, ThreadId};

/// Build the composite no-input/many-outcomes program.
pub fn program() -> Program {
    let mut b = ProgramBuilder::new("multiout");
    // Component 1: lost-update counter (results 1..=2).
    let c1 = b.var("c1_counter", 0);
    // Component 2: check-then-act creations (1 or 2).
    let c2_slot = b.var("c2_slot", 0);
    let c2 = b.var("c2_creations", 0);
    // Component 3: bank transfer total (conserved or not).
    let c3_a = b.var("c3_a", 50);
    let c3_b = b.var("c3_b", 50);
    // Component 4: ordering race — who writes last wins (1 or 2).
    let c4 = b.var("c4_winner", 0);

    b.entry(move |ctx| {
        let mut kids: Vec<ThreadId> = Vec::new();
        // Component 1: two unlocked incrementers.
        for i in 0..2 {
            kids.push(ctx.spawn(format!("c1_inc{i}"), move |ctx| {
                let v = ctx.read(c1);
                ctx.yield_now();
                ctx.write(c1, v + 1);
            }));
        }
        // Component 2: two lazy initializers.
        for i in 0..2 {
            kids.push(ctx.spawn(format!("c2_init{i}"), move |ctx| {
                if ctx.read(c2_slot) == 0 {
                    ctx.yield_now();
                    ctx.write(c2_slot, 1);
                    ctx.rmw(c2, |c| c + 1);
                }
            }));
        }
        // Component 3: two opposite transfers.
        kids.push(ctx.spawn("c3_ab", move |ctx| {
            let a = ctx.read(c3_a);
            ctx.write(c3_a, a - 7);
            let v = ctx.read(c3_b);
            ctx.write(c3_b, v + 7);
        }));
        kids.push(ctx.spawn("c3_ba", move |ctx| {
            let v = ctx.read(c3_b);
            ctx.write(c3_b, v - 3);
            let a = ctx.read(c3_a);
            ctx.write(c3_a, a + 3);
        }));
        // Component 4: last writer wins.
        for i in 1..=2 {
            kids.push(ctx.spawn(format!("c4_w{i}"), move |ctx| {
                ctx.yield_now();
                ctx.write(c4, i64::from(i));
            }));
        }
        for k in kids {
            ctx.join(k);
        }
    });
    b.build()
}

/// The §4.4 observable: component results plus finish order, as a compact
/// stable string. Two runs with equal signatures behaved identically as
/// far as the benchmark output is concerned.
pub fn signature(o: &Outcome) -> String {
    let vars = ["c1_counter", "c2_creations", "c3_a", "c3_b", "c4_winner"];
    let vals: Vec<String> = vars
        .iter()
        .map(|v| o.var(v).map_or("?".to_string(), |x| x.to_string()))
        .collect();
    let order: Vec<String> = o.finish_order.iter().map(|t| t.0.to_string()).collect();
    format!("[{}]/{}", vals.join(","), order.join("-"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtt_runtime::{Execution, FifoScheduler, RandomScheduler};
    use std::collections::HashSet;

    #[test]
    fn multiout_always_terminates() {
        let p = program();
        for seed in 0..30 {
            let o = Execution::new(&p)
                .scheduler(Box::new(RandomScheduler::new(seed)))
                .run();
            assert!(o.ok(), "seed {seed}: {:?}", o.kind);
        }
    }

    #[test]
    fn fifo_collapses_the_distribution() {
        let p = program();
        let sigs: HashSet<String> = (0..10)
            .map(|_| signature(&Execution::new(&p).scheduler(Box::new(FifoScheduler)).run()))
            .collect();
        assert_eq!(
            sigs.len(),
            1,
            "the deterministic scheduler must produce one outcome"
        );
    }

    #[test]
    fn random_scheduling_spreads_the_distribution() {
        let p = program();
        let sigs: HashSet<String> = (0..60)
            .map(|seed| {
                signature(
                    &Execution::new(&p)
                        .scheduler(Box::new(RandomScheduler::new(seed)))
                        .run(),
                )
            })
            .collect();
        assert!(
            sigs.len() >= 10,
            "expected a spread of outcomes, got {}",
            sigs.len()
        );
    }

    #[test]
    fn signature_reflects_results_and_order() {
        let p = program();
        let o = Execution::new(&p).scheduler(Box::new(FifoScheduler)).run();
        let s = signature(&o);
        assert!(s.starts_with('['));
        assert!(s.contains("]/"));
        assert!(!s.contains('?'), "all component vars must exist: {s}");
    }
}
