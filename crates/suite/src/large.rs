//! The large program: a "from the field"-style web-session server
//! simulation with several independent seeded bugs, in the spirit of the
//! paper's "some very large programs with bugs from the field".

use crate::{BugClass, BugDoc, Size, SuiteProgram, Verdict};
use mtt_runtime::{ProgramBuilder, ThreadId};
use std::sync::Arc;

/// All large programs with default parameters.
pub fn all() -> Vec<SuiteProgram> {
    vec![web_sessions(3, 4), pipeline_etl(2, 6)]
}

/// A web-session server simulation.
///
/// Structure: `workers` worker threads drain a task queue (a semaphore of
/// pending requests plus an unsynchronized request counter), touch one of
/// `sessions` session slots (guarded by per-session locks), append to a
/// shared log (logger lock), and bump global statistics. A reaper thread
/// concurrently expires sessions.
///
/// Seeded bugs, each independently schedule-dependent:
///
/// * **`served-stats-race`** — `total_served` is a plain read-inc-write
///   counter shared by all workers.
/// * **`session-double-close`** — the reaper checks `state == OPEN` without
///   the session lock; a worker can close the session between the reaper's
///   check and its act, so the reaper "closes" an already-closed session and
///   the close count exceeds the open-transition count.
/// * **`log-session-deadlock`** — workers lock session → logger, the reaper
///   (on its "log first" path) locks logger → session: AB-BA across
///   subsystems.
pub fn web_sessions(workers: u32, requests_per_worker: u32) -> SuiteProgram {
    let sessions: u32 = 2;
    let build = |fixed: bool| {
        let mut b = ProgramBuilder::new(if fixed {
            "web_sessions_fixed"
        } else {
            "web_sessions"
        });
        // Session slots: 1 = open, 0 = closed.
        let state: Vec<_> = (0..sessions)
            .map(|i| b.var(format!("session{i}_open"), 1))
            .collect();
        let closes = b.var("closes", 0); // ground-truth rmw counters
        let opens = b.var("opens", 0);
        let total_served = b.var("total_served", 0); // racy stats
        let log_lines = b.var("log_lines", 0);
        let session_locks: Vec<_> = (0..sessions)
            .map(|i| b.lock(format!("session{i}")))
            .collect();
        let logger = b.lock("logger");
        let pending = b.sem("pending", 0);

        b.entry(move |ctx| {
            let mut kids: Vec<ThreadId> = Vec::new();

            // The frontend enqueues all requests up front.
            {
                let total = workers * requests_per_worker;
                kids.push(ctx.spawn("frontend", move |ctx| {
                    for _ in 0..total {
                        ctx.sem_release(pending);
                    }
                }));
            }

            // Workers.
            for w in 0..workers {
                let state = state.clone();
                let session_locks = session_locks.clone();
                kids.push(ctx.spawn(format!("worker{w}"), move |ctx| {
                    for r in 0..requests_per_worker {
                        ctx.sem_acquire(pending);
                        let sid = ((w + r) % sessions) as usize;
                        // Session work under the session lock: reopen a
                        // closed session, or close it on the final request.
                        ctx.lock(session_locks[sid]);
                        let open = ctx.read(state[sid]);
                        if open == 0 {
                            ctx.write(state[sid], 1);
                            ctx.rmw(opens, |c| c + 1);
                        } else if r == requests_per_worker - 1 {
                            ctx.yield_now();
                            ctx.write(state[sid], 0);
                            ctx.rmw(closes, |c| c + 1);
                        }
                        // Log while still holding the session lock:
                        // session -> logger order.
                        ctx.lock(logger);
                        let ll = ctx.read(log_lines);
                        ctx.write(log_lines, ll + 1);
                        ctx.unlock(logger);
                        ctx.unlock(session_locks[sid]);
                        // Global stats OUTSIDE any lock: the stats race.
                        if fixed {
                            ctx.rmw(total_served, |t| t + 1);
                        } else {
                            let t = ctx.read(total_served);
                            ctx.write(total_served, t + 1);
                        }
                    }
                }));
            }

            // The reaper expires sessions.
            {
                let state = state.clone();
                let session_locks = session_locks.clone();
                kids.push(ctx.spawn("reaper", move |ctx| {
                    ctx.sleep(5); // expire on a timer, mid-run
                    for _pass in 0..2u32 {
                        for sid in 0..sessions as usize {
                            if !fixed {
                                // BUG path: log-first ordering
                                // (logger -> session) + unlocked check.
                                let open = ctx.read(state[sid]); // unlocked!
                                if open == 1 {
                                    ctx.lock(logger);
                                    ctx.yield_now();
                                    ctx.lock(session_locks[sid]);
                                    // Double-close window: the worker may
                                    // have closed it since our check.
                                    ctx.write(state[sid], 0);
                                    ctx.rmw(closes, |c| c + 1);
                                    let ll = ctx.read(log_lines);
                                    ctx.write(log_lines, ll + 1);
                                    ctx.unlock(session_locks[sid]);
                                    ctx.unlock(logger);
                                }
                            } else {
                                // Correct path: session -> logger, checked
                                // under the lock.
                                ctx.lock(session_locks[sid]);
                                let open = ctx.read(state[sid]);
                                if open == 1 {
                                    ctx.write(state[sid], 0);
                                    ctx.rmw(closes, |c| c + 1);
                                }
                                ctx.lock(logger);
                                let ll = ctx.read(log_lines);
                                ctx.write(log_lines, ll + 1);
                                ctx.unlock(logger);
                                ctx.unlock(session_locks[sid]);
                            }
                            ctx.yield_now();
                        }
                    }
                }));
            }

            for k in kids {
                ctx.join(k);
            }
            // Postconditions (only meaningful when we did not deadlock).
            let served = ctx.read(total_served);
            ctx.check(
                served == i64::from(workers * requests_per_worker),
                "served-count",
            );
            // Every genuine close is a 1->0 transition, so under correct
            // synchronization: closes == initial_open + reopens - still_open.
            let c = ctx.read(closes);
            let op = ctx.read(opens);
            let mut still_open = 0;
            for &st in &state {
                still_open += ctx.read(st);
            }
            ctx.check(
                c == i64::from(sessions) + op - still_open,
                "close-transitions",
            );
        });
        b.build()
    };
    SuiteProgram {
        name: "web_sessions",
        size: Size::Large,
        program: build(false),
        bugs: vec![
            BugDoc::new(
                "served-stats-race",
                BugClass::DataRace,
                "total_served is a plain read-increment-write counter updated \
                 by every worker outside any lock",
            )
            .vars(&["total_served"]),
            BugDoc::new(
                "session-double-close",
                BugClass::AtomicityViolation,
                "the reaper's fast path checks session state without the \
                 session lock; a worker can close the session between the \
                 reaper's check and its act",
            )
            .vars(&["session0_open", "session1_open", "closes"]),
            BugDoc::new(
                "log-session-deadlock",
                BugClass::Deadlock,
                "workers lock session→logger, the reaper's log-first path locks \
                 logger→session: a cross-subsystem AB-BA",
            )
            .locks(&["logger", "session0", "session1"]),
        ],
        oracle: Arc::new(|o| {
            let mut v = Verdict::default();
            if o.deadlocked() {
                v.manifested.push("log-session-deadlock");
                return v;
            }
            if o.assert_failures.iter().any(|a| a.label == "served-count") {
                v.manifested.push("served-stats-race");
            }
            if o.assert_failures
                .iter()
                .any(|a| a.label == "close-transitions")
            {
                v.manifested.push("session-double-close");
            }
            v
        }),
        fixed: Some(build(true)),
        racy_vars: vec!["total_served", "session0_open", "session1_open"],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtt_runtime::{Execution, RandomScheduler};

    #[test]
    fn web_sessions_has_three_distinct_bugs() {
        let p = web_sessions(3, 4);
        let mut seen = std::collections::HashSet::new();
        for seed in 0..600 {
            let o = Execution::new(&p.program)
                .scheduler(Box::new(RandomScheduler::new(seed)))
                .max_steps(50_000)
                .run();
            for tag in p.judge(&o).manifested {
                seen.insert(tag);
            }
            if seen.len() == 3 {
                break;
            }
        }
        assert!(
            seen.contains("served-stats-race"),
            "stats race never fired: {seen:?}"
        );
        assert!(
            seen.contains("log-session-deadlock"),
            "deadlock never fired: {seen:?}"
        );
        // The double-close is the rarest: its window is a couple of steps
        // wide, so uniform random scheduling alone essentially never hits
        // it. Hunt for it the way a noise-making tool would — a sticky
        // scheduler plus sleep noise at the check-then-act site.
        if !seen.contains("session-double-close") {
            let mut found = false;
            for seed in 0..600 {
                let o = Execution::new(&p.program)
                    .scheduler(Box::new(RandomScheduler::sticky(seed, 0.9)))
                    .noise(Box::new(mtt_noise::RandomSleep::new(seed, 0.25, 20)))
                    .max_steps(50_000)
                    .run();
                if p.judge(&o).manifested.contains(&"session-double-close") {
                    found = true;
                    break;
                }
            }
            assert!(found, "double-close never fired in 600 noisy schedules");
        }
    }

    #[test]
    fn web_sessions_fixed_is_clean() {
        let p = web_sessions(3, 4);
        let fixed = p.fixed.as_ref().unwrap();
        for seed in 0..20 {
            let o = Execution::new(fixed)
                .scheduler(Box::new(RandomScheduler::new(seed)))
                .max_steps(50_000)
                .run();
            assert!(
                o.ok(),
                "seed {seed}: {:?} asserts={:?}",
                o.kind,
                o.assert_failures
            );
        }
    }
}

/// A three-stage ETL pipeline: a frontend feeds a cond-guarded handoff
/// queue, `workers` transform items into a second queue, and a committer
/// drains it. Seeded bugs:
///
/// * **`handoff-stall`** — both queues share one condition variable per
///   stage and signal with `notify` (one): a capacity signal can wake the
///   wrong side and the pipeline stalls (deadlock).
/// * **`commit-stats-race`** — the committer's `committed` tally is updated
///   with plain read-inc-write by both the committer and the audit thread's
///   reconciliation path, losing counts.
/// * **`stale-shutdown`** — the shutdown flag is non-volatile; a worker
///   that cached it before shutdown spins its bounded retry budget out and
///   abandons its in-flight item (items lost).
pub fn pipeline_etl(workers: u32, items: u32) -> SuiteProgram {
    assert!(workers >= 1 && items >= 1);
    let build = |fixed: bool| {
        let mut b = ProgramBuilder::new(if fixed {
            "pipeline_etl_fixed"
        } else {
            "pipeline_etl"
        });
        let q1 = b.var("stage1_count", 0); // frontend -> workers
        let q2 = b.var("stage2_count", 0); // workers -> committer
        let committed = b.var("committed", 0);
        let lost = b.var("lost", 0);
        let shutdown = if fixed {
            b.var("shutdown", 0)
        } else {
            b.var_nonvolatile("shutdown", 0)
        };
        let l1 = b.lock("q1");
        let l2 = b.lock("q2");
        let c1 = b.cond("q1_state");
        let c2 = b.cond("q2_state");
        let cap = 2i64;
        b.entry(move |ctx| {
            let mut kids: Vec<ThreadId> = Vec::new();
            // Frontend: produce `items` units into stage 1.
            kids.push(ctx.spawn("frontend", move |ctx| {
                for _ in 0..items {
                    ctx.lock(l1);
                    while ctx.read(q1) >= cap {
                        ctx.wait(c1, l1);
                    }
                    let v = ctx.read(q1);
                    ctx.write(q1, v + 1);
                    if fixed {
                        ctx.notify_all(c1);
                    } else {
                        ctx.notify(c1); // BUG: may wake another producer-side waiter
                    }
                    ctx.unlock(l1);
                }
                ctx.write(shutdown, 1);
            }));
            // Workers: move units from stage 1 to stage 2.
            for w in 0..workers {
                kids.push(ctx.spawn(format!("worker{w}"), move |ctx| {
                    let mut dry = 0u32;
                    loop {
                        ctx.lock(l1);
                        let mut got = false;
                        if ctx.read(q1) > 0 {
                            let v = ctx.read(q1);
                            ctx.write(q1, v - 1);
                            got = true;
                            if fixed {
                                ctx.notify_all(c1);
                            } else {
                                ctx.notify(c1);
                            }
                        }
                        ctx.unlock(l1);
                        if got {
                            dry = 0;
                            ctx.lock(l2);
                            while ctx.read(q2) >= cap {
                                ctx.wait(c2, l2);
                            }
                            let v = ctx.read(q2);
                            ctx.write(q2, v + 1);
                            if fixed {
                                ctx.notify_all(c2);
                            } else {
                                ctx.notify(c2);
                            }
                            ctx.unlock(l2);
                        } else {
                            // Lock-free polling: peek at the queue and the
                            // shutdown flag without synchronizing. Yields
                            // do not flush the thread cache, so in the
                            // buggy build (non-volatile flag) every peek
                            // after the first can be stale.
                            let mut gave_up = true;
                            loop {
                                if ctx.read(q1) > 0 {
                                    gave_up = false;
                                    break; // recheck under the lock
                                }
                                if ctx.read(shutdown) == 1 {
                                    break; // exit the worker loop below
                                }
                                dry += 1;
                                if dry > 40 {
                                    // BUG: the stale 0 burned the retry
                                    // budget; abandon the stage.
                                    ctx.rmw(lost, |v| v + 1);
                                    break;
                                }
                                ctx.yield_now();
                            }
                            if gave_up {
                                break;
                            }
                        }
                    }
                }));
            }
            // Committer: drain stage 2.
            kids.push(ctx.spawn("committer", move |ctx| {
                for _ in 0..items {
                    ctx.lock(l2);
                    while ctx.read(q2) == 0 {
                        ctx.wait(c2, l2);
                    }
                    let v = ctx.read(q2);
                    ctx.write(q2, v - 1);
                    if fixed {
                        ctx.notify_all(c2);
                    } else {
                        ctx.notify(c2);
                    }
                    ctx.unlock(l2);
                    // Tally: racy in the buggy build.
                    if fixed {
                        ctx.rmw(committed, |v| v + 1);
                    } else {
                        let t = ctx.read(committed);
                        ctx.yield_now();
                        ctx.write(committed, t + 1);
                    }
                }
            }));
            // Audit thread: periodically "reconciles" the same tally.
            kids.push(ctx.spawn("audit", move |ctx| {
                for _ in 0..4 {
                    ctx.sleep(6);
                    if fixed {
                        ctx.rmw(committed, |v| v); // read-only touch
                    } else {
                        let t = ctx.read(committed);
                        ctx.yield_now();
                        ctx.write(committed, t); // BUG: racy write-back
                    }
                }
            }));
            for k in kids {
                ctx.join(k);
            }
            let c = ctx.read(committed);
            ctx.check(c == items as i64, "all-items-committed");
        });
        b.build()
    };
    SuiteProgram {
        name: "pipeline_etl",
        size: Size::Large,
        program: build(false),
        bugs: vec![
            BugDoc::new(
                "handoff-stall",
                BugClass::WrongNotify,
                "each stage's queue signals state changes with notify-one on a \
                 condition shared by both sides; the signal can be consumed by \
                 a same-side waiter and the pipeline deadlocks",
            )
            .conds(&["q1_state", "q2_state"])
            .locks(&["q1", "q2"]),
            BugDoc::new(
                "commit-stats-race",
                BugClass::DataRace,
                "the committed tally is read-inc-written by the committer and \
                 racily written back by the audit thread",
            )
            .vars(&["committed"]),
            BugDoc::new(
                "stale-shutdown",
                BugClass::StaleRead,
                "the shutdown flag is non-volatile: a worker polling through \
                 its thread cache burns its retry budget on a stale 0 and \
                 abandons work",
            )
            .vars(&["shutdown", "lost"]),
        ],
        oracle: Arc::new(|o| {
            let mut v = Verdict::default();
            if o.deadlocked() || o.hung() {
                v.manifested.push("handoff-stall");
                return v;
            }
            if o.var("lost").unwrap_or(0) > 0 {
                v.manifested.push("stale-shutdown");
            }
            if o.assert_failures
                .iter()
                .any(|a| a.label == "all-items-committed")
                && o.var("lost").unwrap_or(0) == 0
            {
                v.manifested.push("commit-stats-race");
            }
            v
        }),
        fixed: Some(build(true)),
        racy_vars: vec!["committed"],
    }
}

#[cfg(test)]
mod etl_tests {
    use super::*;
    use mtt_runtime::{Execution, RandomScheduler};

    #[test]
    fn pipeline_etl_has_three_distinct_bugs() {
        let p = pipeline_etl(2, 6);
        let mut seen = std::collections::HashSet::new();
        for seed in 0..600 {
            let o = Execution::new(&p.program)
                .scheduler(Box::new(RandomScheduler::new(seed)))
                .max_steps(50_000)
                .run();
            for tag in p.judge(&o).manifested {
                seen.insert(tag);
            }
            if seen.len() == 3 {
                break;
            }
        }
        assert!(seen.contains("commit-stats-race"), "{seen:?}");
        assert!(
            seen.contains("handoff-stall") || seen.contains("stale-shutdown"),
            "{seen:?}"
        );
    }

    #[test]
    fn pipeline_etl_fixed_commits_everything() {
        let p = pipeline_etl(2, 6);
        let fixed = p.fixed.as_ref().unwrap();
        for seed in 0..20 {
            let o = Execution::new(fixed)
                .scheduler(Box::new(RandomScheduler::new(seed)))
                .max_steps(50_000)
                .run();
            assert!(
                o.ok(),
                "seed {seed}: {:?} asserts={:?} lost={:?}",
                o.kind,
                o.assert_failures,
                o.var("lost")
            );
            assert_eq!(o.var("committed"), Some(6), "seed {seed}");
        }
    }
}
