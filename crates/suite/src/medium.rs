//! Medium programs: realistic component structure with one or two seeded
//! bugs each.

use crate::{BugClass, BugDoc, Size, SuiteProgram, Verdict};
use mtt_runtime::{ProgramBuilder, ThreadId};
use std::sync::Arc;

/// All medium programs with default parameters.
pub fn all() -> Vec<SuiteProgram> {
    vec![
        bounded_queue(3, 3, 1),
        bank_branch(4, 3),
        memo_cache(3),
        token_ring(3, 2),
    ]
}

/// A condition-variable bounded queue whose producers and consumers share
/// ONE condition and signal with `notify` (one). A notification meant for
/// a consumer can wake a producer (or vice versa), which re-waits and
/// swallows it: the classic single-condition/notify-one deadlock.
pub fn bounded_queue(producers: u32, consumers: u32, capacity: i64) -> SuiteProgram {
    assert!(producers >= 1 && consumers >= 1 && capacity >= 1);
    let items_per_producer = 3i64;
    let total = i64::from(producers) * items_per_producer;
    assert!(
        total % i64::from(consumers) == 0,
        "items must divide evenly among consumers"
    );
    let per_consumer = total / i64::from(consumers);

    let build = |broadcast: bool| {
        let mut b = ProgramBuilder::new(if broadcast {
            "bounded_queue_fixed"
        } else {
            "bounded_queue"
        });
        let count = b.var("count", 0);
        let produced = b.var("produced", 0);
        let consumed = b.var("consumed", 0);
        let l = b.lock("queue");
        let c = b.cond("state_changed");
        b.entry(move |ctx| {
            let mut kids: Vec<ThreadId> = Vec::new();
            for i in 0..producers {
                kids.push(ctx.spawn(format!("producer{i}"), move |ctx| {
                    for _ in 0..items_per_producer {
                        ctx.lock(l);
                        while ctx.read(count) >= capacity {
                            ctx.wait(c, l);
                        }
                        let v = ctx.read(count);
                        ctx.write(count, v + 1);
                        ctx.rmw(produced, |p| p + 1);
                        if broadcast {
                            ctx.notify_all(c);
                        } else {
                            ctx.notify(c); // BUG: may wake another producer
                        }
                        ctx.unlock(l);
                    }
                }));
            }
            for i in 0..consumers {
                kids.push(ctx.spawn(format!("consumer{i}"), move |ctx| {
                    for _ in 0..per_consumer {
                        ctx.lock(l);
                        while ctx.read(count) == 0 {
                            ctx.wait(c, l);
                        }
                        let v = ctx.read(count);
                        ctx.write(count, v - 1);
                        ctx.rmw(consumed, |p| p + 1);
                        if broadcast {
                            ctx.notify_all(c);
                        } else {
                            ctx.notify(c); // BUG: may wake another consumer
                        }
                        ctx.unlock(l);
                    }
                }));
            }
            for k in kids {
                ctx.join(k);
            }
        });
        b.build()
    };
    SuiteProgram {
        name: "bounded_queue",
        size: Size::Medium,
        program: build(false),
        bugs: vec![BugDoc::new(
            "notify-one-queue",
            BugClass::WrongNotify,
            "producers and consumers wait on the same condition; notify-one can \
             deliver a 'space available' signal to a producer (which re-waits), \
             leaving every thread asleep",
        )
        .conds(&["state_changed"])
        .locks(&["queue"])
        .vars(&["count"])],
        oracle: Arc::new(|o| {
            if o.deadlocked() {
                Verdict::bug("notify-one-queue")
            } else {
                Verdict::clean()
            }
        }),
        fixed: Some(build(true)),
        racy_vars: vec![],
    }
}

/// A bank branch with per-account locks. Transfers normally acquire locks
/// in account order, but a "priority" path acquires source-before-
/// destination (deadlock); an audit thread sums balances without any locks
/// (race: it can observe money in flight).
pub fn bank_branch(accounts: u32, transfer_threads: u32) -> SuiteProgram {
    assert!(accounts >= 2);
    let initial = 100i64;
    let expected_total = initial * i64::from(accounts);

    let build = |fixed: bool| {
        let mut b = ProgramBuilder::new(if fixed {
            "bank_branch_fixed"
        } else {
            "bank_branch"
        });
        let balances: Vec<_> = (0..accounts)
            .map(|i| b.var(format!("balance{i}"), initial))
            .collect();
        let locks: Vec<_> = (0..accounts)
            .map(|i| b.lock(format!("account{i}")))
            .collect();
        let audit_bad = b.var("audit_bad", 0);
        let audit_lock = b.lock("audit");
        b.entry(move |ctx| {
            let mut kids: Vec<ThreadId> = Vec::new();
            for t in 0..transfer_threads {
                let balances = balances.clone();
                let locks = locks.clone();
                kids.push(ctx.spawn(format!("teller{t}"), move |ctx| {
                    for round in 0..2u32 {
                        let src = ((t + round) % accounts) as usize;
                        let priority = !fixed && t % 2 == 1;
                        // Normal tellers transfer to the next account and
                        // respect the global lock order. The priority path
                        // transfers to the PREVIOUS account and locks
                        // source-first — the reversed pair.
                        let dst = if priority {
                            ((t + round + accounts - 1) % accounts) as usize
                        } else {
                            ((t + round + 1) % accounts) as usize
                        };
                        let (first, second) = if priority {
                            (src, dst)
                        } else {
                            (src.min(dst), src.max(dst))
                        };
                        ctx.lock(locks[first]);
                        ctx.yield_now();
                        ctx.lock(locks[second]);
                        let vs = ctx.read(balances[src]);
                        ctx.write(balances[src], vs - 5);
                        let vd = ctx.read(balances[dst]);
                        ctx.write(balances[dst], vd + 5);
                        ctx.unlock(locks[second]);
                        ctx.unlock(locks[first]);
                    }
                }));
            }
            {
                let balances = balances.clone();
                let locks = locks.clone();
                kids.push(ctx.spawn("auditor", move |ctx| {
                    for _ in 0..3 {
                        if fixed {
                            // Correct audit: freeze the branch.
                            for &l in &locks {
                                ctx.lock(l);
                            }
                        }
                        let mut total = 0;
                        for &bal in &balances {
                            total += ctx.read(bal); // unlocked when !fixed
                        }
                        if fixed {
                            for &l in locks.iter().rev() {
                                ctx.unlock(l);
                            }
                        }
                        if total != expected_total {
                            ctx.with_lock(audit_lock, |ctx| {
                                ctx.write(audit_bad, 1);
                            });
                        }
                        ctx.yield_now();
                    }
                }));
            }
            for k in kids {
                ctx.join(k);
            }
        });
        b.build()
    };
    SuiteProgram {
        name: "bank_branch",
        size: Size::Medium,
        program: build(false),
        bugs: vec![
            BugDoc::new(
                "teller-deadlock",
                BugClass::Deadlock,
                "the priority transfer path locks source-before-destination, \
                 violating the branch's global account order",
            )
            .locks(&["account0", "account1", "account2", "account3"]),
            BugDoc::new(
                "audit-race",
                BugClass::DataRace,
                "the auditor sums balances without taking the account locks and \
                 can observe money in flight between the two halves of a transfer",
            )
            .vars(&["balance0", "balance1", "balance2", "balance3", "audit_bad"]),
        ],
        oracle: Arc::new(|o| {
            let mut v = Verdict::default();
            if o.deadlocked() {
                v.manifested.push("teller-deadlock");
            }
            if o.var("audit_bad") == Some(1) {
                v.manifested.push("audit-race");
            }
            v
        }),
        fixed: Some(build(true)),
        racy_vars: vec!["balance0", "balance1", "balance2", "balance3"],
    }
}

/// A memoizing cache: the compute-if-absent is check-then-act (double
/// compute) and the hit/miss statistics are plain racy counters.
pub fn memo_cache(workers: u32) -> SuiteProgram {
    let build = |locked: bool| {
        let mut b = ProgramBuilder::new(if locked {
            "memo_cache_fixed"
        } else {
            "memo_cache"
        });
        let cache_set = b.var("cache_set", 0);
        let cache_val = b.var("cache_val", 0);
        let computes = b.var("computes", 0); // ground-truth rmw counter
        let stat_hits = b.var("stat_hits", 0);
        let stat_misses = b.var("stat_misses", 0);
        let l = b.lock("cache");
        b.entry(move |ctx| {
            let kids: Vec<ThreadId> = (0..workers)
                .map(|i| {
                    ctx.spawn(format!("worker{i}"), move |ctx| {
                        if locked {
                            ctx.lock(l);
                        }
                        if ctx.read(cache_set) == 0 {
                            ctx.yield_now(); // the expensive compute
                            ctx.write(cache_val, 42);
                            ctx.write(cache_set, 1);
                            ctx.rmw(computes, |c| c + 1);
                            let m = ctx.read(stat_misses); // racy stats
                            ctx.write(stat_misses, m + 1);
                        } else {
                            let v = ctx.read(cache_val);
                            ctx.check(v == 42, "cache-value");
                            let h = ctx.read(stat_hits); // racy stats
                            ctx.write(stat_hits, h + 1);
                        }
                        if locked {
                            ctx.unlock(l);
                        }
                    })
                })
                .collect();
            for k in kids {
                ctx.join(k);
            }
            let c = ctx.read(computes);
            ctx.check(c == 1, "computed-once");
            let h = ctx.read(stat_hits);
            let m = ctx.read(stat_misses);
            ctx.check(h + m == workers as i64, "stats-consistent");
        });
        b.build()
    };
    SuiteProgram {
        name: "memo_cache",
        size: Size::Medium,
        program: build(false),
        bugs: vec![
            BugDoc::new(
                "double-compute",
                BugClass::AtomicityViolation,
                "compute-if-absent checks and fills the cache non-atomically; \
                 several workers can all miss and recompute",
            )
            .vars(&["cache_set", "cache_val", "computes"]),
            BugDoc::new(
                "stats-race",
                BugClass::DataRace,
                "hit/miss statistics are plain read-increment-write counters",
            )
            .vars(&["stat_hits", "stat_misses"]),
        ],
        oracle: Arc::new(|o| {
            let mut v = Verdict::default();
            if o.assert_failures.iter().any(|a| a.label == "computed-once") {
                v.manifested.push("double-compute");
            }
            if o.assert_failures
                .iter()
                .any(|a| a.label == "stats-consistent")
            {
                v.manifested.push("stats-race");
            }
            v
        }),
        fixed: Some(build(true)),
        racy_vars: vec!["cache_set", "stat_hits", "stat_misses"],
    }
}

/// A token ring: thread `i` waits for `token == i`, then passes the token
/// on. The buggy version signals with `notify` (one): the wrong waiter can
/// absorb the signal and the ring stalls.
pub fn token_ring(n: u32, rounds: u32) -> SuiteProgram {
    assert!(n >= 2);
    let build = |broadcast: bool| {
        let mut b = ProgramBuilder::new(if broadcast {
            "token_ring_fixed"
        } else {
            "token_ring"
        });
        let token = b.var("token", 0);
        let passes = b.var("passes", 0);
        let l = b.lock("ring");
        let c = b.cond("turn");
        b.entry(move |ctx| {
            let kids: Vec<ThreadId> = (0..n)
                .map(|i| {
                    ctx.spawn(format!("node{i}"), move |ctx| {
                        for _ in 0..rounds {
                            ctx.lock(l);
                            while ctx.read(token) != i64::from(i) {
                                ctx.wait(c, l);
                            }
                            ctx.write(token, i64::from((i + 1) % n));
                            ctx.rmw(passes, |p| p + 1);
                            if broadcast {
                                ctx.notify_all(c);
                            } else {
                                ctx.notify(c); // BUG: may wake a non-successor
                            }
                            ctx.unlock(l);
                        }
                    })
                })
                .collect();
            for k in kids {
                ctx.join(k);
            }
        });
        b.build()
    };
    let expected = i64::from(n) * i64::from(rounds);
    SuiteProgram {
        name: "token_ring",
        size: Size::Medium,
        program: build(false),
        bugs: vec![BugDoc::new(
            "ring-stall",
            BugClass::WrongNotify,
            "passing the token signals one arbitrary waiter; a non-successor \
             wakes, re-waits, and the successor never learns its turn came",
        )
        .conds(&["turn"])
        .vars(&["token"])],
        oracle: Arc::new(move |o| {
            if o.deadlocked() {
                Verdict::bug("ring-stall")
            } else if o.ok() && o.var("passes") == Some(expected) {
                Verdict::clean()
            } else {
                Verdict::bug("ring-stall")
            }
        }),
        fixed: Some(build(true)),
        racy_vars: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtt_runtime::{Execution, RandomScheduler};

    #[test]
    fn bounded_queue_fixed_conserves_items() {
        let p = bounded_queue(3, 3, 1);
        let fixed = p.fixed.as_ref().unwrap();
        for seed in 0..10 {
            let o = Execution::new(fixed)
                .scheduler(Box::new(RandomScheduler::new(seed)))
                .run();
            assert!(o.ok(), "seed {seed}: {:?}", o.kind);
            assert_eq!(o.var("count"), Some(0));
            assert_eq!(o.var("produced"), o.var("consumed"));
        }
    }

    #[test]
    fn bank_branch_conserves_under_fix() {
        let p = bank_branch(4, 3);
        let fixed = p.fixed.as_ref().unwrap();
        for seed in 0..10 {
            let o = Execution::new(fixed)
                .scheduler(Box::new(RandomScheduler::new(seed)))
                .run();
            assert!(o.ok(), "seed {seed}: {:?}", o.kind);
            assert_eq!(o.var("audit_bad"), Some(0), "seed {seed}");
        }
    }

    #[test]
    fn memo_cache_bugs_are_distinct() {
        // Scan seeds; double-compute and stats-race should each appear.
        let p = memo_cache(3);
        let mut double = false;
        let mut stats = false;
        for seed in 0..200 {
            let o = Execution::new(&p.program)
                .scheduler(Box::new(RandomScheduler::new(seed)))
                .run();
            let v = p.judge(&o);
            double |= v.manifested.contains(&"double-compute");
            stats |= v.manifested.contains(&"stats-race");
            if double && stats {
                break;
            }
        }
        assert!(double, "double-compute never manifested");
        assert!(stats, "stats-race never manifested");
    }

    #[test]
    fn token_ring_fixed_completes_all_rounds() {
        let p = token_ring(3, 2);
        let fixed = p.fixed.as_ref().unwrap();
        for seed in 0..10 {
            let o = Execution::new(fixed)
                .scheduler(Box::new(RandomScheduler::new(seed)))
                .run();
            assert!(o.ok(), "seed {seed}: {:?}", o.kind);
            assert_eq!(o.var("passes"), Some(6));
        }
    }
}
