//! # mtt-suite — the benchmark repository of documented-bug programs
//!
//! §4 of the paper, component one: "a repository of programs on which the
//! technologies can be evaluated", containing "many small programs that
//! illustrate specific bugs as well as larger programs and some very large
//! programs with bugs from the field", each with "documentation of the
//! repository and of the bugs in each program" plus tests/oracles.
//!
//! Every entry is a [`SuiteProgram`]:
//!
//! * a runnable [`mtt_runtime::Program`] whose concurrency bug is *real* at
//!   the model level (the bug fires or not depending on the interleaving);
//! * [`BugDoc`] metadata: a stable tag, the bug class, prose documentation
//!   and the variable/lock footprint (which also drives trace annotation);
//! * an **oracle** classifying each [`Outcome`] — which documented bugs
//!   manifested in that run;
//! * where meaningful, a `fixed` twin with the bug repaired (so detectors
//!   can be scored for false alarms on clean code);
//! * the ground-truth list of racy variables for detector scoring.
//!
//! The [`multiout`] module is the paper's fourth benchmark component: the
//! no-input, many-outcomes composite program.

pub mod large;
pub mod medium;
pub mod multiout;
pub mod small;

use mtt_runtime::{Outcome, Program};
use std::sync::Arc;

/// Classification of documented concurrency bugs, following the taxonomy
/// the paper's §2 walks through.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BugClass {
    /// Unsynchronized conflicting accesses (lost update et al.).
    DataRace,
    /// Individually-synchronized accesses whose *sequence* must be atomic
    /// (check-then-act, compound interface).
    AtomicityViolation,
    /// Correctness depends on an ordering nothing enforces
    /// (sleep-based synchronization, init races).
    OrderingViolation,
    /// Cyclic lock acquisition (AB-BA, dining philosophers) or other
    /// unserviceable waits.
    Deadlock,
    /// A notify that can fire before the wait, or a wait missing its
    /// predicate loop.
    MissedSignal,
    /// `notify` waking the wrong waiter where `notify_all` was needed.
    WrongNotify,
    /// Semaphore permit accounting errors.
    SemaphoreMisuse,
    /// Wrong barrier party count or phase structure.
    BarrierMisuse,
    /// Non-volatile flag read from a stale thread cache.
    StaleRead,
}

mtt_json::json_enum!(BugClass {
    DataRace,
    AtomicityViolation,
    OrderingViolation,
    Deadlock,
    MissedSignal,
    WrongNotify,
    SemaphoreMisuse,
    BarrierMisuse,
    StaleRead,
});

/// Documentation of one seeded bug.
#[derive(Clone, Debug)]
pub struct BugDoc {
    /// Stable tag (used in trace annotations and reports).
    pub tag: &'static str,
    /// Bug class.
    pub class: BugClass,
    /// What the bug is and why it fires.
    pub description: &'static str,
    /// Shared variables involved (trace-annotation footprint).
    pub vars: Vec<&'static str>,
    /// Locks involved.
    pub locks: Vec<&'static str>,
    /// Condition variables involved.
    pub conds: Vec<&'static str>,
}

impl BugDoc {
    fn new(tag: &'static str, class: BugClass, description: &'static str) -> Self {
        BugDoc {
            tag,
            class,
            description,
            vars: Vec::new(),
            locks: Vec::new(),
            conds: Vec::new(),
        }
    }

    fn vars(mut self, vars: &[&'static str]) -> Self {
        self.vars = vars.to_vec();
        self
    }

    fn locks(mut self, locks: &[&'static str]) -> Self {
        self.locks = locks.to_vec();
        self
    }

    fn conds(mut self, conds: &[&'static str]) -> Self {
        self.conds = conds.to_vec();
        self
    }
}

/// Size bucket, per the paper's "many small … larger … very large".
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Size {
    /// Illustrates one specific bug.
    Small,
    /// A component with realistic structure.
    Medium,
    /// A "from the field"-style program with several independent bugs.
    Large,
}

/// The oracle's verdict on one execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Verdict {
    /// Tags of documented bugs that manifested in this run.
    pub manifested: Vec<&'static str>,
}

impl Verdict {
    /// Did any documented bug manifest?
    pub fn failed(&self) -> bool {
        !self.manifested.is_empty()
    }

    fn clean() -> Self {
        Verdict::default()
    }

    fn bug(tag: &'static str) -> Self {
        Verdict {
            manifested: vec![tag],
        }
    }
}

/// Oracle type: classify an outcome.
pub type OracleFn = Arc<dyn Fn(&Outcome) -> Verdict + Send + Sync>;

/// One benchmark entry.
#[derive(Clone)]
pub struct SuiteProgram {
    /// Unique name.
    pub name: &'static str,
    /// Size bucket.
    pub size: Size,
    /// The buggy program.
    pub program: Program,
    /// Documented bugs.
    pub bugs: Vec<BugDoc>,
    /// Classifies outcomes (which bugs manifested).
    pub oracle: OracleFn,
    /// Repaired twin, when available.
    pub fixed: Option<Program>,
    /// Ground truth for race detectors: variables genuinely involved in a
    /// data race / atomicity violation in the buggy version.
    pub racy_vars: Vec<&'static str>,
}

impl SuiteProgram {
    /// Run the oracle.
    pub fn judge(&self, outcome: &Outcome) -> Verdict {
        (self.oracle)(outcome)
    }

    /// Bug tags documented for this program.
    pub fn bug_tags(&self) -> Vec<&'static str> {
        self.bugs.iter().map(|b| b.tag).collect()
    }

    /// Trace-annotation footprints for this program's bugs.
    pub fn footprints(&self) -> Vec<mtt_trace::BugFootprint> {
        self.bugs
            .iter()
            .map(|b| mtt_trace::BugFootprint {
                tag: b.tag.to_string(),
                vars: b.vars.iter().map(|s| s.to_string()).collect(),
                locks: b.locks.iter().map(|s| s.to_string()).collect(),
                conds: b.conds.iter().map(|s| s.to_string()).collect(),
            })
            .collect()
    }
}

impl std::fmt::Debug for SuiteProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SuiteProgram")
            .field("name", &self.name)
            .field("size", &self.size)
            .field("bugs", &self.bug_tags())
            .finish()
    }
}

/// The whole repository, smallest first.
pub fn all() -> Vec<SuiteProgram> {
    let mut v = small::all();
    v.extend(medium::all());
    v.extend(large::all());
    v
}

/// Look a program up by name.
pub fn by_name(name: &str) -> Option<SuiteProgram> {
    all().into_iter().find(|p| p.name == name)
}

/// The standard subset used by the fast prepared experiments: every small
/// program plus one medium.
pub fn quick_set() -> Vec<SuiteProgram> {
    let mut v = small::all();
    v.push(medium::bounded_queue(3, 3, 1));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtt_runtime::{Execution, RandomScheduler};

    #[test]
    fn registry_names_are_unique_and_sized() {
        let progs = all();
        assert!(progs.len() >= 18, "repository too small: {}", progs.len());
        let mut names: Vec<&str> = progs.iter().map(|p| p.name).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate program names");
        assert!(progs.iter().any(|p| p.size == Size::Small));
        assert!(progs.iter().any(|p| p.size == Size::Medium));
        assert!(progs.iter().any(|p| p.size == Size::Large));
    }

    #[test]
    fn every_program_documents_its_bugs() {
        for p in all() {
            assert!(!p.bugs.is_empty(), "{}: no documented bugs", p.name);
            for b in &p.bugs {
                assert!(!b.description.is_empty(), "{}: empty description", p.name);
                assert!(
                    !b.vars.is_empty() || !b.locks.is_empty() || !b.conds.is_empty(),
                    "{}: bug {} has an empty footprint",
                    p.name,
                    b.tag
                );
            }
        }
    }

    #[test]
    fn by_name_roundtrip() {
        for p in all() {
            assert_eq!(by_name(p.name).unwrap().name, p.name);
        }
        assert!(by_name("no-such-program").is_none());
    }

    #[test]
    fn every_bug_is_reachable_and_every_program_can_pass() {
        // For each program: some seed manifests a documented bug, and some
        // seed (or the fixed twin) completes cleanly. This is the
        // repository's own acceptance test: the bugs are real and
        // schedule-dependent, not constant failures.
        for p in all() {
            let mut found_bug = false;
            let mut found_clean = false;
            for seed in 0..200 {
                let o = Execution::new(&p.program)
                    .scheduler(Box::new(RandomScheduler::new(seed)))
                    .max_steps(50_000)
                    .run();
                let v = p.judge(&o);
                if v.failed() {
                    found_bug = true;
                } else {
                    found_clean = true;
                }
                if found_bug && found_clean {
                    break;
                }
            }
            assert!(
                found_bug,
                "{}: no documented bug manifested in 200 random schedules",
                p.name
            );
            // Programs whose bug is near-deterministic under random
            // scheduling may never produce a clean run; they must then
            // provide a fixed twin that does.
            if !found_clean {
                let fixed = p
                    .fixed
                    .as_ref()
                    .unwrap_or_else(|| panic!("{}: never clean and no fixed twin", p.name));
                let o = Execution::new(fixed)
                    .scheduler(Box::new(RandomScheduler::new(1)))
                    .max_steps(50_000)
                    .run();
                assert!(
                    p.judge(&o).manifested.is_empty() && o.ok(),
                    "{}: fixed twin still fails: {:?}",
                    p.name,
                    o.kind
                );
            }
        }
    }

    #[test]
    fn fixed_twins_pass_many_seeds() {
        for p in all() {
            if let Some(fixed) = &p.fixed {
                for seed in 0..30 {
                    let o = Execution::new(fixed)
                        .scheduler(Box::new(RandomScheduler::new(seed)))
                        .max_steps(50_000)
                        .run();
                    assert!(
                        o.ok(),
                        "{} (fixed) failed at seed {seed}: {:?} asserts={:?}",
                        p.name,
                        o.kind,
                        o.assert_failures
                    );
                }
            }
        }
    }

    #[test]
    fn verdict_api() {
        assert!(!Verdict::clean().failed());
        assert!(Verdict::bug("t").failed());
        assert_eq!(Verdict::bug("t").manifested, vec!["t"]);
    }
}
