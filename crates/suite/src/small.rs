//! The small programs: each illustrates one specific, documented
//! concurrency bug ("many small programs that illustrate specific bugs").
//!
//! Conventions:
//!
//! * every builder returns a [`SuiteProgram`] with the bug documented,
//!   its variable/lock footprint filled in, an oracle, and (where the fix
//!   is instructive) a repaired twin;
//! * bugs are *schedule-dependent* wherever the bug class allows it: some
//!   interleavings fail, others pass — the property that makes noise
//!   makers, replay and exploration worth comparing;
//! * programs avoid unbounded spinning (bounded retry + assertion instead),
//!   so experiment campaigns never burn the step budget waiting.

use crate::{BugClass, BugDoc, Size, SuiteProgram, Verdict};
use mtt_runtime::{ProgramBuilder, ThreadId};
use std::sync::Arc;

/// All small programs with default parameters.
pub fn all() -> Vec<SuiteProgram> {
    vec![
        lost_update(2, 2),
        bank_transfer(),
        check_then_act(),
        missed_signal(),
        wrong_notify(),
        dining_philosophers(3),
        ab_ba(),
        producer_consumer_unsync(2, 2),
        sleep_sync(),
        stale_flag(),
        sem_leak(),
        barrier_opt_out(),
        compound_vector(),
        nested_monitor(),
        publish_stale(),
        unguarded_wait(),
        reader_writer(2),
        sem_double_release(),
    ]
}

/// The canonical lost update: `threads` workers each perform `increments`
/// non-atomic `x = x + 1` sequences.
pub fn lost_update(threads: u32, increments: u32) -> SuiteProgram {
    let build = |locked: bool| {
        let mut b = ProgramBuilder::new(if locked {
            "lost_update_fixed"
        } else {
            "lost_update"
        });
        let x = b.var("x", 0);
        let l = b.lock("l");
        b.entry(move |ctx| {
            let kids: Vec<ThreadId> = (0..threads)
                .map(|i| {
                    ctx.spawn(format!("inc{i}"), move |ctx| {
                        for _ in 0..increments {
                            if locked {
                                ctx.lock(l);
                            }
                            let v = ctx.read(x);
                            ctx.write(x, v + 1);
                            if locked {
                                ctx.unlock(l);
                            }
                        }
                    })
                })
                .collect();
            for k in kids {
                ctx.join(k);
            }
        });
        b.build()
    };
    let expected = i64::from(threads) * i64::from(increments);
    SuiteProgram {
        name: "lost_update",
        size: Size::Small,
        program: build(false),
        bugs: vec![BugDoc::new(
            "lost-update",
            BugClass::DataRace,
            "x = x + 1 is a read followed by a write with no lock; two threads \
             interleaving between them lose an increment",
        )
        .vars(&["x"])],
        oracle: Arc::new(move |o| {
            if o.ok() && o.var("x") == Some(expected) {
                Verdict::clean()
            } else {
                Verdict::bug("lost-update")
            }
        }),
        fixed: Some(build(true)),
        racy_vars: vec!["x"],
    }
}

/// Two opposite transfers between two accounts; each transfer is four
/// separate accesses, so interleavings corrupt the conserved total.
pub fn bank_transfer() -> SuiteProgram {
    let build = |locked: bool| {
        let mut b = ProgramBuilder::new(if locked {
            "bank_transfer_fixed"
        } else {
            "bank_transfer"
        });
        let a = b.var("acct_a", 100);
        let acct_b = b.var("acct_b", 100);
        let l = b.lock("bank");
        b.entry(move |ctx| {
            let t1 = ctx.spawn("xfer_ab", move |ctx| {
                if locked {
                    ctx.lock(l);
                }
                let va = ctx.read(a);
                ctx.write(a, va - 10);
                let vb = ctx.read(acct_b);
                ctx.write(acct_b, vb + 10);
                if locked {
                    ctx.unlock(l);
                }
            });
            let t2 = ctx.spawn("xfer_ba", move |ctx| {
                if locked {
                    ctx.lock(l);
                }
                let vb = ctx.read(acct_b);
                ctx.write(acct_b, vb - 20);
                let va = ctx.read(a);
                ctx.write(a, va + 20);
                if locked {
                    ctx.unlock(l);
                }
            });
            ctx.join(t1);
            ctx.join(t2);
        });
        b.build()
    };
    SuiteProgram {
        name: "bank_transfer",
        size: Size::Small,
        program: build(false),
        bugs: vec![BugDoc::new(
            "transfer-atomicity",
            BugClass::AtomicityViolation,
            "a transfer reads and writes both balances non-atomically; \
             concurrent transfers interleave and violate conservation of money",
        )
        .vars(&["acct_a", "acct_b"])],
        oracle: Arc::new(|o| {
            let total = o.var("acct_a").unwrap_or(0) + o.var("acct_b").unwrap_or(0);
            if o.ok() && total == 200 {
                Verdict::clean()
            } else {
                Verdict::bug("transfer-atomicity")
            }
        }),
        fixed: Some(build(true)),
        racy_vars: vec!["acct_a", "acct_b"],
    }
}

/// Lazy initialization without atomicity: both threads can observe the
/// empty slot and both create.
pub fn check_then_act() -> SuiteProgram {
    let build = |locked: bool| {
        let mut b = ProgramBuilder::new(if locked {
            "check_then_act_fixed"
        } else {
            "check_then_act"
        });
        let slot = b.var("slot", 0);
        let creations = b.var("creations", 0);
        let l = b.lock("init");
        b.entry(move |ctx| {
            let kids: Vec<ThreadId> = (0..2)
                .map(|i| {
                    ctx.spawn(format!("init{i}"), move |ctx| {
                        if locked {
                            ctx.lock(l);
                        }
                        if ctx.read(slot) == 0 {
                            ctx.yield_now(); // widen the window
                            ctx.write(slot, 1);
                            ctx.rmw(creations, |c| c + 1);
                        }
                        if locked {
                            ctx.unlock(l);
                        }
                    })
                })
                .collect();
            for k in kids {
                ctx.join(k);
            }
            let c = ctx.read(creations);
            ctx.check(c == 1, "created-once");
        });
        b.build()
    };
    SuiteProgram {
        name: "check_then_act",
        size: Size::Small,
        program: build(false),
        bugs: vec![BugDoc::new(
            "double-create",
            BugClass::AtomicityViolation,
            "the emptiness check and the creation are separate operations; \
             two initializers can both pass the check",
        )
        .vars(&["slot", "creations"])],
        oracle: Arc::new(|o| {
            if o.assert_failures.iter().any(|a| a.label == "created-once") {
                Verdict::bug("double-create")
            } else {
                Verdict::clean()
            }
        }),
        fixed: Some(build(true)),
        racy_vars: vec!["slot"],
    }
}

/// Wait with no predicate loop + a notify that may fire first.
pub fn missed_signal() -> SuiteProgram {
    let buggy = {
        let mut b = ProgramBuilder::new("missed_signal");
        let l = b.lock("l");
        let c = b.cond("c");
        b.entry(move |ctx| {
            let waiter = ctx.spawn("waiter", move |ctx| {
                ctx.lock(l);
                ctx.wait(c, l); // BUG: no predicate re-check
                ctx.unlock(l);
            });
            let notifier = ctx.spawn("notifier", move |ctx| {
                ctx.notify(c); // may fire before the wait begins
            });
            ctx.join(waiter);
            ctx.join(notifier);
        });
        b.build()
    };
    let fixed = {
        let mut b = ProgramBuilder::new("missed_signal_fixed");
        let posted = b.var("posted", 0);
        let l = b.lock("l");
        let c = b.cond("c");
        b.entry(move |ctx| {
            let waiter = ctx.spawn("waiter", move |ctx| {
                ctx.lock(l);
                while ctx.read(posted) == 0 {
                    ctx.wait(c, l);
                }
                ctx.unlock(l);
            });
            let notifier = ctx.spawn("notifier", move |ctx| {
                ctx.lock(l);
                ctx.write(posted, 1);
                ctx.notify(c);
                ctx.unlock(l);
            });
            ctx.join(waiter);
            ctx.join(notifier);
        });
        b.build()
    };
    SuiteProgram {
        name: "missed_signal",
        size: Size::Small,
        program: buggy,
        bugs: vec![BugDoc::new(
            "missed-signal",
            BugClass::MissedSignal,
            "the notify carries no state and the wait re-checks nothing; if the \
             notify runs first, the waiter sleeps forever",
        )
        .conds(&["c"])
        .locks(&["l"])],
        oracle: Arc::new(|o| {
            if o.deadlocked() {
                Verdict::bug("missed-signal")
            } else {
                Verdict::clean()
            }
        }),
        fixed: Some(fixed),
        racy_vars: vec![],
    }
}

/// One condition variable shared by two waiters with different predicates;
/// `notify` (one) can wake the wrong waiter, which re-waits and swallows
/// the signal.
pub fn wrong_notify() -> SuiteProgram {
    let build = |all: bool| {
        let mut b = ProgramBuilder::new(if all {
            "wrong_notify_fixed"
        } else {
            "wrong_notify"
        });
        let pa = b.var("pred_a", 0);
        let pb = b.var("pred_b", 0);
        let l = b.lock("l");
        let c = b.cond("c");
        b.entry(move |ctx| {
            let wa = ctx.spawn("want_a", move |ctx| {
                ctx.lock(l);
                while ctx.read(pa) == 0 {
                    ctx.wait(c, l);
                }
                ctx.unlock(l);
            });
            let wb = ctx.spawn("want_b", move |ctx| {
                ctx.lock(l);
                while ctx.read(pb) == 0 {
                    ctx.wait(c, l);
                }
                ctx.unlock(l);
            });
            let setter = ctx.spawn("setter", move |ctx| {
                ctx.lock(l);
                ctx.write(pa, 1);
                if all {
                    ctx.notify_all(c);
                } else {
                    ctx.notify(c); // BUG: may wake want_b
                }
                ctx.unlock(l);
                ctx.lock(l);
                ctx.write(pb, 1);
                if all {
                    ctx.notify_all(c);
                } else {
                    ctx.notify(c);
                }
                ctx.unlock(l);
            });
            ctx.join(wa);
            ctx.join(wb);
            ctx.join(setter);
        });
        b.build()
    };
    SuiteProgram {
        name: "wrong_notify",
        size: Size::Small,
        program: build(false),
        bugs: vec![BugDoc::new(
            "wrong-notify",
            BugClass::WrongNotify,
            "two waiters with different predicates share one condition; \
             notify-one can wake the waiter whose predicate is still false, \
             consuming the signal meant for the other",
        )
        .conds(&["c"])
        .vars(&["pred_a", "pred_b"])],
        oracle: Arc::new(|o| {
            if o.deadlocked() {
                Verdict::bug("wrong-notify")
            } else {
                Verdict::clean()
            }
        }),
        fixed: Some(build(true)),
        racy_vars: vec![],
    }
}

/// `n` philosophers each take their left fork then their right: the cyclic
/// acquisition order can deadlock.
pub fn dining_philosophers(n: u32) -> SuiteProgram {
    assert!(n >= 2);
    let build = |ordered: bool| {
        let mut b = ProgramBuilder::new(if ordered {
            "dining_philosophers_fixed"
        } else {
            "dining_philosophers"
        });
        let meals = b.var("meals", 0);
        let forks: Vec<_> = (0..n).map(|i| b.lock(format!("fork{i}"))).collect();
        b.entry(move |ctx| {
            let kids: Vec<ThreadId> = (0..n)
                .map(|i| {
                    let left = forks[i as usize];
                    let right = forks[((i + 1) % n) as usize];
                    // The classic fix: acquire in global order.
                    let (first, second) = if ordered && left.0 > right.0 {
                        (right, left)
                    } else {
                        (left, right)
                    };
                    ctx.spawn(format!("phil{i}"), move |ctx| {
                        ctx.lock(first);
                        ctx.yield_now(); // widen the window
                        ctx.lock(second);
                        ctx.rmw(meals, |m| m + 1);
                        ctx.unlock(second);
                        ctx.unlock(first);
                    })
                })
                .collect();
            for k in kids {
                ctx.join(k);
            }
        });
        b.build()
    };
    let expected = i64::from(n);
    SuiteProgram {
        name: "dining_philosophers",
        size: Size::Small,
        program: build(false),
        bugs: vec![BugDoc::new(
            "dining-deadlock",
            BugClass::Deadlock,
            "every philosopher holds the left fork while waiting for the right: \
             the waits-for graph is a cycle",
        )
        .locks(&["fork0", "fork1", "fork2"])],
        oracle: Arc::new(move |o| {
            if o.deadlocked() {
                Verdict::bug("dining-deadlock")
            } else if o.ok() && o.var("meals") == Some(expected) {
                Verdict::clean()
            } else {
                Verdict::bug("dining-deadlock")
            }
        }),
        fixed: Some(build(true)),
        racy_vars: vec![],
    }
}

/// The minimal two-lock ordering deadlock.
pub fn ab_ba() -> SuiteProgram {
    let build = |consistent: bool| {
        let mut b = ProgramBuilder::new(if consistent { "ab_ba_fixed" } else { "ab_ba" });
        let done = b.var("done", 0);
        let la = b.lock("a");
        let lb = b.lock("b");
        b.entry(move |ctx| {
            let t1 = ctx.spawn("t1", move |ctx| {
                ctx.lock(la);
                ctx.yield_now();
                ctx.lock(lb);
                ctx.rmw(done, |d| d + 1);
                ctx.unlock(lb);
                ctx.unlock(la);
            });
            let t2 = ctx.spawn("t2", move |ctx| {
                let (first, second) = if consistent { (la, lb) } else { (lb, la) };
                ctx.lock(first);
                ctx.yield_now();
                ctx.lock(second);
                ctx.rmw(done, |d| d + 1);
                ctx.unlock(second);
                ctx.unlock(first);
            });
            ctx.join(t1);
            ctx.join(t2);
        });
        b.build()
    };
    SuiteProgram {
        name: "ab_ba",
        size: Size::Small,
        program: build(false),
        bugs: vec![BugDoc::new(
            "ab-ba-deadlock",
            BugClass::Deadlock,
            "thread 1 locks a then b, thread 2 locks b then a; when each holds \
             its first lock, neither can proceed",
        )
        .locks(&["a", "b"])],
        oracle: Arc::new(|o| {
            if o.deadlocked() {
                Verdict::bug("ab-ba-deadlock")
            } else {
                Verdict::clean()
            }
        }),
        fixed: Some(build(true)),
        racy_vars: vec![],
    }
}

/// A counter-based bounded buffer with no synchronization: concurrent
/// consumers both take the "same" item.
pub fn producer_consumer_unsync(items: u32, consumers: u32) -> SuiteProgram {
    let build = |locked: bool| {
        let mut b = ProgramBuilder::new(if locked {
            "pc_unsync_fixed"
        } else {
            "pc_unsync"
        });
        let count = b.var("count", 0);
        let consumed = b.var("consumed", 0);
        let l = b.lock("q");
        b.entry(move |ctx| {
            let producer = ctx.spawn("producer", move |ctx| {
                for _ in 0..items {
                    if locked {
                        ctx.lock(l);
                    }
                    let c = ctx.read(count);
                    ctx.write(count, c + 1);
                    if locked {
                        ctx.unlock(l);
                    }
                }
            });
            let kids: Vec<ThreadId> = (0..consumers)
                .map(|i| {
                    ctx.spawn(format!("consumer{i}"), move |ctx| {
                        for _ in 0..items {
                            if locked {
                                ctx.lock(l);
                            }
                            let c = ctx.read(count);
                            if c > 0 {
                                ctx.yield_now(); // the take is not atomic
                                ctx.write(count, c - 1);
                                ctx.rmw(consumed, |v| v + 1);
                            }
                            if locked {
                                ctx.unlock(l);
                            }
                        }
                    })
                })
                .collect();
            ctx.join(producer);
            for k in kids {
                ctx.join(k);
            }
            // Conservation: produced == count + consumed.
            let c = ctx.read(count);
            let taken = ctx.read(consumed);
            ctx.check(c + taken == items as i64, "items-conserved");
            ctx.check(c >= 0, "no-underflow");
        });
        b.build()
    };
    SuiteProgram {
        name: "pc_unsync",
        size: Size::Small,
        program: build(false),
        bugs: vec![BugDoc::new(
            "pc-race",
            BugClass::DataRace,
            "the emptiness check, the take, and the counter update are separate \
             unsynchronized operations; items are duplicated or lost",
        )
        .vars(&["count", "consumed"])],
        oracle: Arc::new(|o| {
            if o.assert_failures.is_empty() && o.ok() {
                Verdict::clean()
            } else {
                Verdict::bug("pc-race")
            }
        }),
        fixed: Some(build(true)),
        racy_vars: vec!["count"],
    }
}

/// Synchronization by sleeping: the consumer "waits long enough" for the
/// producer. Any delay of the producer (noise!) breaks the assumption.
pub fn sleep_sync() -> SuiteProgram {
    let buggy = {
        let mut b = ProgramBuilder::new("sleep_sync");
        let data = b.var("data", 0);
        b.entry(move |ctx| {
            let producer = ctx.spawn("producer", move |ctx| {
                for _ in 0..6 {
                    ctx.yield_now(); // startup work before the init write
                }
                ctx.write(data, 42);
            });
            let consumer = ctx.spawn("consumer", move |ctx| {
                ctx.sleep(12); // "surely the producer is done by now"
                let d = ctx.read(data);
                ctx.check(d == 42, "read-after-init");
            });
            // Unrelated background load: under a fair scheduler it competes
            // with the producer for cycles, which is exactly what the sleep
            // "synchronization" fails to account for.
            let background = ctx.spawn("background", move |ctx| {
                for _ in 0..30 {
                    ctx.yield_now();
                }
            });
            ctx.join(producer);
            ctx.join(consumer);
            ctx.join(background);
        });
        b.build()
    };
    let fixed = {
        let mut b = ProgramBuilder::new("sleep_sync_fixed");
        let data = b.var("data", 0);
        let ready = b.var("ready", 0);
        let l = b.lock("l");
        let c = b.cond("c");
        b.entry(move |ctx| {
            let producer = ctx.spawn("producer", move |ctx| {
                for _ in 0..6 {
                    ctx.yield_now();
                }
                ctx.write(data, 42);
                ctx.lock(l);
                ctx.write(ready, 1);
                ctx.notify_all(c);
                ctx.unlock(l);
            });
            let consumer = ctx.spawn("consumer", move |ctx| {
                ctx.lock(l);
                while ctx.read(ready) == 0 {
                    ctx.wait(c, l);
                }
                ctx.unlock(l);
                let d = ctx.read(data);
                ctx.check(d == 42, "read-after-init");
            });
            ctx.join(producer);
            ctx.join(consumer);
        });
        b.build()
    };
    SuiteProgram {
        name: "sleep_sync",
        size: Size::Small,
        program: buggy,
        bugs: vec![BugDoc::new(
            "sleep-sync",
            BugClass::OrderingViolation,
            "a sleep stands in for synchronization; a scheduler (or noise maker) \
             that delays the producer past the sleep exposes the missing ordering",
        )
        .vars(&["data"])],
        oracle: Arc::new(|o| {
            if o.assert_failures
                .iter()
                .any(|a| a.label == "read-after-init")
            {
                Verdict::bug("sleep-sync")
            } else {
                Verdict::clean()
            }
        }),
        fixed: Some(fixed),
        racy_vars: vec!["data"],
    }
}

/// A non-volatile stop flag read through the thread cache: the worker can
/// spin on the stale value. Bounded spin turns the hang into an assertion.
pub fn stale_flag() -> SuiteProgram {
    let build = |volatile: bool| {
        let mut b = ProgramBuilder::new(if volatile {
            "stale_flag_fixed"
        } else {
            "stale_flag"
        });
        let flag = if volatile {
            b.var("flag", 0)
        } else {
            b.var_nonvolatile("flag", 0)
        };
        let saw = b.var("saw_stop", 0);
        b.entry(move |ctx| {
            let worker = ctx.spawn("worker", move |ctx| {
                let mut spins = 0;
                while ctx.read(flag) == 0 && spins < 60 {
                    ctx.yield_now(); // plain yield: no cache flush
                    spins += 1;
                }
                ctx.write(saw, i64::from(spins < 60));
                ctx.check(spins < 60, "flag-observed");
            });
            ctx.sleep(5); // let the worker cache the initial value
            ctx.write(flag, 1);
            ctx.join(worker);
        });
        b.build()
    };
    SuiteProgram {
        name: "stale_flag",
        size: Size::Small,
        program: build(false),
        bugs: vec![BugDoc::new(
            "stale-flag",
            BugClass::StaleRead,
            "the stop flag is not volatile; the worker's cached copy is never \
             invalidated because the spin loop performs no synchronization",
        )
        .vars(&["flag"])],
        oracle: Arc::new(|o| {
            if o.assert_failures.iter().any(|a| a.label == "flag-observed") || o.hung() {
                Verdict::bug("stale-flag")
            } else {
                Verdict::clean()
            }
        }),
        fixed: Some(build(true)),
        racy_vars: vec!["flag"],
    }
}

/// A semaphore permit leaked on an "error path": later acquirers starve.
pub fn sem_leak() -> SuiteProgram {
    let build = |always_release: bool| {
        let mut b = ProgramBuilder::new(if always_release {
            "sem_leak_fixed"
        } else {
            "sem_leak"
        });
        let errors = b.var("error_mode", 0);
        let served = b.var("served", 0);
        let err_lock = b.lock("error_flag");
        let s = b.sem("pool", 1);
        b.entry(move |ctx| {
            let trigger = ctx.spawn("trigger", move |ctx| {
                ctx.yield_now();
                // Flip into "error mode" at a racy moment. The flag itself
                // is properly locked: the seeded bug is the leaked permit,
                // not a data race.
                ctx.with_lock(err_lock, |ctx| ctx.write(errors, 1));
            });
            let kids: Vec<ThreadId> = (0..3)
                .map(|i| {
                    ctx.spawn(format!("worker{i}"), move |ctx| {
                        ctx.sem_acquire(s);
                        ctx.rmw(served, |v| v + 1);
                        let err = ctx.with_lock(err_lock, |ctx| ctx.read(errors));
                        if always_release || err == 0 {
                            ctx.sem_release(s);
                        }
                        // BUG: on the error path the permit is never returned.
                    })
                })
                .collect();
            ctx.join(trigger);
            for k in kids {
                ctx.join(k);
            }
        });
        b.build()
    };
    SuiteProgram {
        name: "sem_leak",
        size: Size::Small,
        program: build(false),
        bugs: vec![BugDoc::new(
            "sem-leak",
            BugClass::SemaphoreMisuse,
            "a worker that observes error mode forgets to release its permit; \
             with one permit in the pool, every later acquirer blocks forever",
        )
        .vars(&["error_mode"])],
        oracle: Arc::new(|o| {
            if o.deadlocked() {
                Verdict::bug("sem-leak")
            } else {
                Verdict::clean()
            }
        }),
        fixed: Some(build(true)),
        racy_vars: vec![],
    }
}

/// A barrier participant that (racily) decides to skip the barrier: the
/// remaining parties wait forever.
pub fn barrier_opt_out() -> SuiteProgram {
    let build = |always_arrive: bool| {
        let mut b = ProgramBuilder::new(if always_arrive {
            "barrier_opt_out_fixed"
        } else {
            "barrier_opt_out"
        });
        let skip = b.var("skip_work", 0);
        let phase = b.var("phase_done", 0);
        let bar = b.barrier("phase", 3);
        b.entry(move |ctx| {
            let canceller = ctx.spawn("canceller", move |ctx| {
                ctx.yield_now();
                ctx.write(skip, 1);
            });
            let kids: Vec<ThreadId> = (0..3)
                .map(|i| {
                    ctx.spawn(format!("party{i}"), move |ctx| {
                        // The fixed party never consults the (racy) flag.
                        let s = if always_arrive { 0 } else { ctx.read(skip) };
                        if always_arrive || s == 0 || i != 2 {
                            ctx.rmw(phase, |p| p + 1);
                            ctx.barrier_wait(bar);
                        }
                        // BUG: party 2 opts out when it sees the flag, but
                        // the barrier still expects 3 parties.
                    })
                })
                .collect();
            ctx.join(canceller);
            for k in kids {
                ctx.join(k);
            }
        });
        b.build()
    };
    SuiteProgram {
        name: "barrier_opt_out",
        size: Size::Small,
        program: build(false),
        bugs: vec![BugDoc::new(
            "barrier-party",
            BugClass::BarrierMisuse,
            "one party conditionally skips the barrier while the party count \
             still includes it; the other parties wait forever",
        )
        .vars(&["skip_work"])],
        oracle: Arc::new(|o| {
            if o.deadlocked() {
                Verdict::bug("barrier-party")
            } else {
                Verdict::clean()
            }
        }),
        fixed: Some(build(true)),
        // The opt-out decision itself reads the flag unsynchronized: the
        // race and the barrier misuse are two faces of the same bug.
        racy_vars: vec!["skip_work"],
    }
}

/// The `Vector`-style compound-interface bug: size check and element use
/// are individually synchronized but not atomic together.
pub fn compound_vector() -> SuiteProgram {
    let program = {
        let mut b = ProgramBuilder::new("compound_vector");
        let size = b.var("size", 1);
        let valid = b.var("elem_valid", 1);
        let l = b.lock("vec");
        b.entry(move |ctx| {
            let reader = ctx.spawn("reader", move |ctx| {
                let s = ctx.with_lock(l, |ctx| ctx.read(size));
                if s > 0 {
                    ctx.yield_now(); // the gap between check and use
                    let v = ctx.with_lock(l, |ctx| ctx.read(valid));
                    ctx.check(v == 1, "get-in-bounds");
                }
            });
            let remover = ctx.spawn("remover", move |ctx| {
                ctx.lock(l);
                let s = ctx.read(size);
                if s > 0 {
                    ctx.write(size, s - 1);
                    ctx.write(valid, 0); // element gone
                }
                ctx.unlock(l);
            });
            ctx.join(reader);
            ctx.join(remover);
        });
        b.build()
    };
    // The fix is structural: one critical section spanning check and use.
    let fixed = {
        let mut b = ProgramBuilder::new("compound_vector_fixed");
        let size = b.var("size", 1);
        let valid = b.var("elem_valid", 1);
        let l = b.lock("vec");
        b.entry(move |ctx| {
            let reader = ctx.spawn("reader", move |ctx| {
                ctx.lock(l);
                let s = ctx.read(size);
                if s > 0 {
                    ctx.yield_now();
                    let v = ctx.read(valid);
                    ctx.check(v == 1, "get-in-bounds");
                }
                ctx.unlock(l);
            });
            let remover = ctx.spawn("remover", move |ctx| {
                ctx.lock(l);
                let s = ctx.read(size);
                if s > 0 {
                    ctx.write(size, s - 1);
                    ctx.write(valid, 0);
                }
                ctx.unlock(l);
            });
            ctx.join(reader);
            ctx.join(remover);
        });
        b.build()
    };
    SuiteProgram {
        name: "compound_vector",
        size: Size::Small,
        program,
        bugs: vec![BugDoc::new(
            "compound-interface",
            BugClass::AtomicityViolation,
            "size() and get() each take the vector lock, but the remover can \
             run between them — the individually-synchronized compound \
             operation is not atomic",
        )
        .vars(&["size", "elem_valid"])
        .locks(&["vec"])],
        oracle: Arc::new(|o| {
            if o.assert_failures.iter().any(|a| a.label == "get-in-bounds") {
                Verdict::bug("compound-interface")
            } else {
                Verdict::clean()
            }
        }),
        fixed: Some(fixed),
        // Every access is individually locked: lockset and happens-before
        // detectors are rightly silent — the bug is atomicity-only and
        // belongs to noise/exploration/oracle-based techniques.
        racy_vars: vec![],
    }
}

/// The nested-monitor problem: waiting on an inner condition while holding
/// an outer lock starves the notifier.
pub fn nested_monitor() -> SuiteProgram {
    let buggy = {
        let mut b = ProgramBuilder::new("nested_monitor");
        let ready = b.var("ready", 0);
        let outer = b.lock("outer");
        let inner = b.lock("inner");
        let c = b.cond("c");
        b.entry(move |ctx| {
            let consumer = ctx.spawn("consumer", move |ctx| {
                ctx.lock(outer); // BUG: held across the wait
                ctx.lock(inner);
                while ctx.read(ready) == 0 {
                    ctx.wait(c, inner); // releases inner only, not outer
                }
                ctx.unlock(inner);
                ctx.unlock(outer);
            });
            let producer = ctx.spawn("producer", move |ctx| {
                ctx.lock(outer); // blocks forever once consumer waits
                ctx.lock(inner);
                ctx.write(ready, 1);
                ctx.notify(c);
                ctx.unlock(inner);
                ctx.unlock(outer);
            });
            ctx.join(consumer);
            ctx.join(producer);
        });
        b.build()
    };
    let fixed = {
        let mut b = ProgramBuilder::new("nested_monitor_fixed");
        let ready = b.var("ready", 0);
        let inner = b.lock("inner");
        let c = b.cond("c");
        b.entry(move |ctx| {
            let consumer = ctx.spawn("consumer", move |ctx| {
                ctx.lock(inner);
                while ctx.read(ready) == 0 {
                    ctx.wait(c, inner);
                }
                ctx.unlock(inner);
            });
            let producer = ctx.spawn("producer", move |ctx| {
                ctx.lock(inner);
                ctx.write(ready, 1);
                ctx.notify(c);
                ctx.unlock(inner);
            });
            ctx.join(consumer);
            ctx.join(producer);
        });
        b.build()
    };
    SuiteProgram {
        name: "nested_monitor",
        size: Size::Small,
        program: buggy,
        bugs: vec![BugDoc::new(
            "nested-monitor",
            BugClass::Deadlock,
            "the consumer waits on the inner condition while still holding the \
             outer lock; the producer needs the outer lock to ever notify",
        )
        .locks(&["outer", "inner"])
        .conds(&["c"])],
        oracle: Arc::new(|o| {
            if o.deadlocked() {
                Verdict::bug("nested-monitor")
            } else {
                Verdict::clean()
            }
        }),
        fixed: Some(fixed),
        racy_vars: vec![],
    }
}

/// Publication through a volatile flag while the payload is plain: the
/// consumer can observe the flag yet read a stale payload from its cache —
/// the double-checked-locking visibility bug, model style.
pub fn publish_stale() -> SuiteProgram {
    let build = |payload_volatile: bool| {
        let mut b = ProgramBuilder::new(if payload_volatile {
            "publish_stale_fixed"
        } else {
            "publish_stale"
        });
        let data = if payload_volatile {
            b.var("data", 0)
        } else {
            b.var_nonvolatile("data", 0)
        };
        let flag = b.var("flag", 0); // volatile
        b.entry(move |ctx| {
            let consumer = ctx.spawn("consumer", move |ctx| {
                let _prefetch = ctx.read(data); // may cache the unset payload
                let mut spins = 0;
                while ctx.read(flag) == 0 && spins < 50 {
                    ctx.yield_now();
                    spins += 1;
                }
                if ctx.read(flag) == 1 {
                    let d = ctx.read(data); // can be the stale cached 0
                    ctx.check(d == 42, "payload-visible");
                }
            });
            let producer = ctx.spawn("producer", move |ctx| {
                ctx.write(data, 42);
                ctx.write(flag, 1);
            });
            ctx.join(consumer);
            ctx.join(producer);
        });
        b.build()
    };
    SuiteProgram {
        name: "publish_stale",
        size: Size::Small,
        program: build(false),
        bugs: vec![BugDoc::new(
            "publish-stale",
            BugClass::StaleRead,
            "the readiness flag is volatile but the payload is not: a consumer \
             that cached the payload before publication sees flag=1 with the \
             old payload — the double-checked-locking pitfall",
        )
        .vars(&["data", "flag"])],
        oracle: Arc::new(|o| {
            if o.assert_failures
                .iter()
                .any(|a| a.label == "payload-visible")
            {
                Verdict::bug("publish-stale")
            } else {
                Verdict::clean()
            }
        }),
        fixed: Some(build(true)),
        racy_vars: vec!["data"],
    }
}

/// A wait with no predicate loop. Under plain scheduling it (usually)
/// works; a missed notify shows up as deadlock, and **spurious wakeups**
/// (see [`mtt_runtime::ExecutionOptions::spurious_wakeups`]) expose the
/// missing loop directly — the waiter proceeds with the predicate false.
pub fn unguarded_wait() -> SuiteProgram {
    let build = |guarded: bool| {
        let mut b = ProgramBuilder::new(if guarded {
            "unguarded_wait_fixed"
        } else {
            "unguarded_wait"
        });
        let ready = b.var("ready", 0);
        let l = b.lock("l");
        let c = b.cond("c");
        b.entry(move |ctx| {
            let waiter = ctx.spawn("waiter", move |ctx| {
                ctx.lock(l);
                if guarded {
                    while ctx.read(ready) == 0 {
                        ctx.wait(c, l);
                    }
                } else {
                    ctx.wait(c, l); // BUG: no predicate loop
                }
                let r = ctx.read(ready);
                ctx.check(r == 1, "ready-after-wait");
                ctx.unlock(l);
            });
            let producer = ctx.spawn("producer", move |ctx| {
                ctx.sleep(2); // usually enough for the waiter to park — not always
                ctx.lock(l);
                ctx.write(ready, 1);
                ctx.notify(c);
                ctx.unlock(l);
            });
            ctx.join(waiter);
            ctx.join(producer);
        });
        b.build()
    };
    SuiteProgram {
        name: "unguarded_wait",
        size: Size::Small,
        program: build(false),
        bugs: vec![BugDoc::new(
            "unguarded-wait",
            BugClass::MissedSignal,
            "the wait has no predicate re-check: a notify that fires first \
             deadlocks it, and any spurious wakeup sails past the wait with \
             the predicate still false",
        )
        .conds(&["c"])
        .vars(&["ready"])],
        oracle: Arc::new(|o| {
            let assert_hit = o
                .assert_failures
                .iter()
                .any(|a| a.label == "ready-after-wait");
            if o.deadlocked() || assert_hit {
                Verdict::bug("unguarded-wait")
            } else {
                Verdict::clean()
            }
        }),
        fixed: Some(build(true)),
        racy_vars: vec![],
    }
}

/// Readers–writers where the reader count is maintained with plain
/// read-inc-write updates: lost updates corrupt the gate protocol, letting
/// a writer overlap readers or leaving the gate permit lost forever.
pub fn reader_writer(readers: u32) -> SuiteProgram {
    let build = |counted: bool| {
        let mut b = ProgramBuilder::new(if counted {
            "reader_writer_fixed"
        } else {
            "reader_writer"
        });
        let rc = b.var("readers", 0);
        let in_rs = b.var("in_read_section", 0);
        let writer_in = b.var("writer_in", 0);
        let violations = b.var("violations", 0);
        let count_lock = b.lock("count");
        let gate = b.sem("gate", 1);
        b.entry(move |ctx| {
            let mut kids: Vec<ThreadId> = Vec::new();
            for i in 0..readers {
                kids.push(ctx.spawn(format!("reader{i}"), move |ctx| {
                    // Enter.
                    if counted {
                        ctx.lock(count_lock);
                    }
                    let r = ctx.read(rc);
                    ctx.write(rc, r + 1);
                    if r == 0 {
                        ctx.sem_acquire(gate); // first reader takes the gate
                    }
                    if counted {
                        ctx.unlock(count_lock);
                    }
                    // Read section: a writer here is a violation.
                    ctx.rmw(in_rs, |v| v + 1);
                    if ctx.read(writer_in) == 1 {
                        ctx.rmw(violations, |v| v + 1);
                    }
                    ctx.yield_now();
                    ctx.rmw(in_rs, |v| v - 1);
                    // Exit.
                    if counted {
                        ctx.lock(count_lock);
                    }
                    let r = ctx.read(rc);
                    ctx.write(rc, r - 1);
                    if r == 1 {
                        ctx.sem_release(gate); // last reader returns it
                    }
                    if counted {
                        ctx.unlock(count_lock);
                    }
                }));
            }
            kids.push(ctx.spawn("writer", move |ctx| {
                ctx.sem_acquire(gate);
                ctx.write(writer_in, 1);
                ctx.yield_now();
                // A reader past the gate while the writer holds it.
                if ctx.read(in_rs) > 0 {
                    ctx.rmw(violations, |v| v + 1);
                }
                ctx.write(writer_in, 0);
                ctx.sem_release(gate);
            }));
            for k in kids {
                ctx.join(k);
            }
            let v = ctx.read(violations);
            ctx.check(v == 0, "rw-exclusion");
        });
        b.build()
    };
    SuiteProgram {
        name: "reader_writer",
        size: Size::Small,
        program: build(false),
        bugs: vec![BugDoc::new(
            "rw-count-race",
            BugClass::DataRace,
            "the reader count is read-inc-write with no lock: two entering \
             readers both see zero (double gate acquisition / writer overlap) \
             or both see one on exit (gate permit lost, writer starves)",
        )
        .vars(&["readers", "writer_in", "in_read_section"])],
        oracle: Arc::new(|o| {
            let bad = o.assert_failures.iter().any(|a| a.label == "rw-exclusion");
            if bad || o.deadlocked() {
                Verdict::bug("rw-count-race")
            } else {
                Verdict::clean()
            }
        }),
        fixed: Some(build(true)),
        // `writer_in` is read by readers while the writer writes it — the
        // violation-detection mechanism is itself an (intentional) race.
        racy_vars: vec!["readers", "writer_in"],
    }
}

/// A retry path that releases its semaphore permit twice: the pool's
/// capacity silently grows and the critical section overfills.
pub fn sem_double_release() -> SuiteProgram {
    let build = |single_release: bool| {
        let mut b = ProgramBuilder::new(if single_release {
            "sem_double_release_fixed"
        } else {
            "sem_double_release"
        });
        let inside = b.var("inside", 0);
        let flaky = b.var("flaky_mode", 0);
        let flaky_lock = b.lock("flaky_flag");
        let pool = b.sem("pool", 1);
        b.entry(move |ctx| {
            let trigger = ctx.spawn("trigger", move |ctx| {
                ctx.yield_now();
                ctx.with_lock(flaky_lock, |ctx| ctx.write(flaky, 1));
            });
            let kids: Vec<ThreadId> = (0..3)
                .map(|i| {
                    ctx.spawn(format!("worker{i}"), move |ctx| {
                        ctx.sem_acquire(pool);
                        let n = ctx.rmw(inside, |v| v + 1) + 1;
                        ctx.check(n <= 1, "pool-capacity");
                        ctx.yield_now();
                        ctx.rmw(inside, |v| v - 1);
                        ctx.sem_release(pool);
                        let f = ctx.with_lock(flaky_lock, |ctx| ctx.read(flaky));
                        if !single_release && f == 1 && i == 0 {
                            // BUG: the retry path releases again.
                            ctx.sem_release(pool);
                        }
                    })
                })
                .collect();
            ctx.join(trigger);
            for k in kids {
                ctx.join(k);
            }
        });
        b.build()
    };
    SuiteProgram {
        name: "sem_double_release",
        size: Size::Small,
        program: build(false),
        bugs: vec![BugDoc::new(
            "sem-double-release",
            BugClass::SemaphoreMisuse,
            "an error-retry path returns its permit twice; the pool now \
             admits two workers into a one-permit critical section",
        )
        .vars(&["flaky_mode", "inside"])],
        oracle: Arc::new(|o| {
            if o.assert_failures.iter().any(|a| a.label == "pool-capacity") {
                Verdict::bug("sem-double-release")
            } else {
                Verdict::clean()
            }
        }),
        fixed: Some(build(true)),
        racy_vars: vec![],
    }
}
