//! Sink-composition behavior through the public API only: the flight
//! recorder's wraparound, Tee's delivery contract, and a counting sink
//! nested under a plan filter — the compositions the experiment harness
//! and the telemetry layer rely on.

use mtt_instrument::{
    CountingSink, Event, EventSink, FilteredSink, InstrumentationPlan, Loc, LockId, Op, OpClass,
    OpClassSet, RingSink, Tee, ThreadId, VarId, VarTable,
};
use std::sync::{Arc, Mutex};

fn ev(seq: u64, op: Op) -> Event {
    Event {
        seq,
        time: seq,
        thread: ThreadId(0),
        loc: Loc::new("sinks.rs", 1),
        op,
        locks_held: Arc::from(Vec::<LockId>::new()),
    }
}

#[test]
fn ring_sink_wraps_exactly_at_capacity() {
    let mut r = RingSink::new(4);

    // Below capacity: nothing evicted yet.
    for i in 0..4 {
        r.on_event(&ev(i, Op::Yield));
    }
    assert_eq!(r.len(), 4);
    assert_eq!(r.events().map(|e| e.seq).collect::<Vec<_>>(), [0, 1, 2, 3]);

    // The fifth event must evict exactly the oldest, nothing else.
    r.on_event(&ev(4, Op::Yield));
    assert_eq!(r.len(), 4);
    assert_eq!(r.events().map(|e| e.seq).collect::<Vec<_>>(), [1, 2, 3, 4]);

    // Several full laps later the window is still the most recent four,
    // oldest first, and `seen` counts every offer including evicted ones.
    for i in 5..23 {
        r.on_event(&ev(i, Op::Yield));
    }
    assert_eq!(r.seen, 23);
    assert_eq!(r.len(), 4);
    assert_eq!(
        r.events().map(|e| e.seq).collect::<Vec<_>>(),
        [19, 20, 21, 22]
    );
}

/// Records every call it receives into a shared log, tagged with a name,
/// so a test can assert cross-sink ordering.
struct LogSink {
    name: &'static str,
    log: Arc<Mutex<Vec<String>>>,
}

impl EventSink for LogSink {
    fn on_event(&mut self, ev: &Event) {
        self.log
            .lock()
            .unwrap()
            .push(format!("{}:event:{}", self.name, ev.seq));
    }

    fn finish(&mut self) {
        self.log
            .lock()
            .unwrap()
            .push(format!("{}:finish", self.name));
    }
}

#[test]
fn tee_delivers_each_event_to_every_sink_in_attachment_order() {
    let log = Arc::new(Mutex::new(Vec::new()));
    let mut tee = Tee::new();
    for name in ["a", "b", "c"] {
        tee.push(Box::new(LogSink {
            name,
            log: Arc::clone(&log),
        }));
    }

    tee.on_event(&ev(0, Op::Yield));
    tee.on_event(&ev(1, Op::Yield));
    tee.finish();

    // Per-event fan-out completes (a, b, c) before the next event starts,
    // and finish propagates to every sink in the same order.
    let got = log.lock().unwrap().clone();
    assert_eq!(
        got,
        [
            "a:event:0",
            "b:event:0",
            "c:event:0", //
            "a:event:1",
            "b:event:1",
            "c:event:1", //
            "a:finish",
            "b:finish",
            "c:finish",
        ]
    );
}

#[test]
fn counting_sink_under_filter_sees_only_selected_classes() {
    // A plan that selects only lock operations, resolved against a table
    // with one variable so variable events have something to refer to.
    let plan = InstrumentationPlan {
        ops: OpClassSet::of(&[OpClass::Lock]),
        ..Default::default()
    };
    let filter = plan.resolve(&VarTable::new(vec!["x".into()]));
    let mut sink = FilteredSink::new(filter, CountingSink::new());

    sink.on_event(&ev(0, Op::LockAcquire { lock: LockId(0) }));
    sink.on_event(&ev(1, Op::Yield));
    sink.on_event(&ev(
        2,
        Op::VarWrite {
            var: VarId(0),
            value: 7,
        },
    ));
    sink.on_event(&ev(3, Op::LockRelease { lock: LockId(0) }));
    sink.finish();

    // Only the two lock events reach the counter; the filter is invisible
    // to the inner sink apart from the reduced stream. finish() must reach
    // the inner sink even though it is wrapped.
    assert_eq!(sink.inner().total, 2);
    assert_eq!(sink.inner().class_count(OpClass::Lock), 2);
    assert_eq!(sink.inner().class_count(OpClass::Delay), 0);
    assert_eq!(sink.inner().class_count(OpClass::VarAccess), 0);
    let inner = sink.into_inner();
    assert!(inner.is_finished());
}
