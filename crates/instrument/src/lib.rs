//! # mtt-instrument — the instrumentation layer
//!
//! The 2003 PADTAD paper ("Benchmark and Framework for Encouraging Research
//! on Multi-Threaded Testing Tools", Havelund/Stoller/Ur) makes
//! *instrumentation* the enabling technology of the whole framework: every
//! dynamic technique — noise making, race detection, replay, coverage,
//! systematic exploration — consumes a stream of events produced at
//! instrumentation points, and the instrumentor must expose a **standard,
//! open interface** so that a researcher can replace one component and reuse
//! the rest.
//!
//! This crate is that interface, in Rust:
//!
//! * [`Event`] / [`Op`] / [`Loc`] — the record produced at every
//!   instrumentation point. It carries exactly the fields the paper
//!   specifies for its standard trace format: the program location, what was
//!   instrumented (operation kind), which variable was touched, the thread,
//!   whether the access is a read or a write, and the set of locks held.
//! * [`InstrumentationPlan`] — the knob set of a bytecode instrumentor
//!   (which operation kinds, variables, sites and threads to instrument),
//!   plus attached [`StaticInfo`] so static analyses can guide placement
//!   (§3 of the paper: "if the instrumentor is told some information by the
//!   static analyzer ... this can be used to decide on a subset of the
//!   points to be instrumented").
//! * [`EventSink`] — the callback interface every dynamic tool implements.
//!   Sinks compose ([`Tee`]), count ([`CountingSink`]), buffer
//!   ([`VecSink`], [`RingSink`]) and can be filtered ([`FilteredSink`]).
//!
//! The crate is dependency-light on purpose: tools written against it do not
//! need the runtime, and offline tools can replay serialized traces through
//! the same sink interface.

pub mod event;
pub mod plan;
pub mod sink;
pub mod statics;

pub use event::{
    file_name, intern_file_id, intern_static, AccessKind, BarrierId, CondId, Event, Loc, LocKey,
    LockId, Op, OpClass, SemId, ThreadId, VarId,
};
pub use plan::{InstrumentationPlan, OpClassSet, ResolvedFilter, Select, VarTable};
pub use sink::{
    shared, CountingSink, EventSink, FilteredSink, NullSink, RingSink, Shared, Tee, VecSink,
};
pub use statics::{SiteFacts, StaticInfo, VarFacts};
