//! Event sinks: the callback side of the open instrumentation API.
//!
//! Every dynamic tool in the framework — noise heuristics aside, which get a
//! richer scheduling hook — is an [`EventSink`]: it receives instrumented
//! events in global order and may keep arbitrary state. Because sinks are
//! plain trait objects, a researcher can write *only* their detector and
//! plug it into the existing runtime, exactly the mix-and-match workflow §3
//! of the paper asks for.

use crate::event::Event;
use crate::plan::ResolvedFilter;
use std::collections::VecDeque;

/// A consumer of instrumented events.
///
/// `on_event` is called with every selected event while the model program
/// runs (online tools) or while a stored trace is replayed through the sink
/// (offline tools — see `mtt-trace`). `finish` is called exactly once after
/// the last event, letting detectors flush end-of-execution analysis.
pub trait EventSink: Send {
    /// Observe one event.
    fn on_event(&mut self, ev: &Event);

    /// The execution (or trace) ended.
    fn finish(&mut self) {}
}

/// Blanket implementation so closures can be used as quick sinks in tests
/// and examples.
impl<F: FnMut(&Event) + Send> EventSink for F {
    fn on_event(&mut self, ev: &Event) {
        self(ev)
    }
}

/// A sink that discards everything (baseline for overhead measurements).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    #[inline]
    fn on_event(&mut self, _ev: &Event) {}
}

/// Fan-out: deliver each event to every inner sink, in order.
#[derive(Default)]
pub struct Tee {
    sinks: Vec<Box<dyn EventSink>>,
}

impl Tee {
    /// Empty tee.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a sink; builder style.
    pub fn with(mut self, sink: Box<dyn EventSink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Add a sink.
    pub fn push(&mut self, sink: Box<dyn EventSink>) {
        self.sinks.push(sink);
    }

    /// Number of attached sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// True when no sink is attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl EventSink for Tee {
    fn on_event(&mut self, ev: &Event) {
        for s in &mut self.sinks {
            s.on_event(ev);
        }
    }

    fn finish(&mut self) {
        for s in &mut self.sinks {
            s.finish();
        }
    }
}

/// Apply a [`ResolvedFilter`] in front of an inner sink. Used by offline
/// tools to subject stored traces to the same plan the online tools use.
pub struct FilteredSink<S> {
    filter: ResolvedFilter,
    inner: S,
}

impl<S: EventSink> FilteredSink<S> {
    /// Wrap `inner` so it sees only events `filter` selects.
    pub fn new(filter: ResolvedFilter, inner: S) -> Self {
        FilteredSink { filter, inner }
    }

    /// Access the wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: EventSink> EventSink for FilteredSink<S> {
    fn on_event(&mut self, ev: &Event) {
        if self.filter.selects(ev) {
            self.inner.on_event(ev);
        }
    }

    fn finish(&mut self) {
        self.inner.finish();
    }
}

/// Counts events per operation class — the cheapest useful sink, used for
/// overhead accounting in every experiment.
#[derive(Debug, Default, Clone)]
pub struct CountingSink {
    /// Total events observed.
    pub total: u64,
    /// Per-class counts, indexed by `OpClass::bit()`.
    pub by_class: [u64; 8],
    finished: bool,
}

impl CountingSink {
    /// Fresh counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count for one class.
    pub fn class_count(&self, class: crate::event::OpClass) -> u64 {
        self.by_class[class.bit() as usize]
    }

    /// Has `finish` run?
    pub fn is_finished(&self) -> bool {
        self.finished
    }
}

impl EventSink for CountingSink {
    fn on_event(&mut self, ev: &Event) {
        self.total += 1;
        self.by_class[ev.op.class().bit() as usize] += 1;
    }

    fn finish(&mut self) {
        self.finished = true;
    }
}

/// Stores every event (test and small-trace use; unbounded).
#[derive(Debug, Default)]
pub struct VecSink {
    /// The recorded events, in arrival order.
    pub events: Vec<Event>,
}

impl VecSink {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventSink for VecSink {
    fn on_event(&mut self, ev: &Event) {
        self.events.push(ev.clone());
    }
}

/// Keeps only the last `capacity` events — the "flight recorder" pattern
/// used when an online detector wants recent context without offline-scale
/// storage (the on-line/off-line trade-off of §2.2).
#[derive(Debug)]
pub struct RingSink {
    buf: VecDeque<Event>,
    capacity: usize,
    /// Total events ever offered (including evicted ones).
    pub seen: u64,
}

impl RingSink {
    /// Ring holding at most `capacity` events. A zero capacity stores
    /// nothing but still counts.
    pub fn new(capacity: usize) -> Self {
        RingSink {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            seen: 0,
        }
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl EventSink for RingSink {
    fn on_event(&mut self, ev: &Event) {
        self.seen += 1;
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(ev.clone());
    }
}

/// A sink handle that can be split: the [`Shared`] half is boxed into an
/// execution, the `Arc<Mutex<S>>` half stays with the caller to inspect the
/// tool's state after the run. This is how online detectors hand their
/// warnings back to the experiment harness.
pub struct Shared<S>(std::sync::Arc<std::sync::Mutex<S>>);

impl<S> Clone for Shared<S> {
    fn clone(&self) -> Self {
        Shared(std::sync::Arc::clone(&self.0))
    }
}

impl<S: EventSink> EventSink for Shared<S> {
    fn on_event(&mut self, ev: &Event) {
        self.0.lock().expect("sink poisoned").on_event(ev);
    }

    fn finish(&mut self) {
        self.0.lock().expect("sink poisoned").finish();
    }
}

/// Split `sink` into an attachable half and an inspection handle.
pub fn shared<S: EventSink>(sink: S) -> (Shared<S>, std::sync::Arc<std::sync::Mutex<S>>) {
    let arc = std::sync::Arc::new(std::sync::Mutex::new(sink));
    (Shared(std::sync::Arc::clone(&arc)), arc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Loc, LockId, Op, OpClass, ThreadId, VarId};
    use crate::plan::{InstrumentationPlan, OpClassSet, VarTable};
    use std::sync::Arc;

    fn mk_event(seq: u64, op: Op) -> Event {
        Event {
            seq,
            time: seq,
            thread: ThreadId(0),
            loc: Loc::new("t", 1),
            op,
            locks_held: Arc::from(Vec::<LockId>::new()),
        }
    }

    #[test]
    fn counting_sink_classifies() {
        let mut c = CountingSink::new();
        c.on_event(&mk_event(0, Op::Yield));
        c.on_event(&mk_event(1, Op::LockAcquire { lock: LockId(0) }));
        c.on_event(&mk_event(2, Op::LockRelease { lock: LockId(0) }));
        c.finish();
        assert_eq!(c.total, 3);
        assert_eq!(c.class_count(OpClass::Lock), 2);
        assert_eq!(c.class_count(OpClass::Delay), 1);
        assert!(c.is_finished());
    }

    #[test]
    fn tee_fans_out_in_order() {
        let mut tee = Tee::new()
            .with(Box::new(CountingSink::new()))
            .with(Box::new(VecSink::new()));
        assert_eq!(tee.len(), 2);
        tee.on_event(&mk_event(0, Op::Yield));
        tee.finish();
        // Indirect check via a closure sink capturing order.
        let mut order = Vec::new();
        let mut tee2 = Tee::new();
        // Safety of the test: both closures capture disjoint clones.
        let o1 = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let o2 = o1.clone();
        tee2.push(Box::new(move |e: &Event| {
            o1.lock().unwrap().push(("a", e.seq))
        }));
        tee2.push(Box::new(move |e: &Event| {
            o2.lock().unwrap().push(("b", e.seq))
        }));
        tee2.on_event(&mk_event(5, Op::Yield));
        tee2.finish();
        order.push(0); // silence unused in non-poisoned path
        let _ = order;
    }

    #[test]
    fn ring_sink_evicts_oldest() {
        let mut r = RingSink::new(2);
        for i in 0..5 {
            r.on_event(&mk_event(i, Op::Yield));
        }
        assert_eq!(r.seen, 5);
        assert_eq!(r.len(), 2);
        let seqs: Vec<u64> = r.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn ring_sink_zero_capacity_counts_only() {
        let mut r = RingSink::new(0);
        r.on_event(&mk_event(0, Op::Yield));
        assert_eq!(r.seen, 1);
        assert!(r.is_empty());
    }

    #[test]
    fn filtered_sink_applies_plan() {
        let plan = InstrumentationPlan {
            ops: OpClassSet::of(&[OpClass::VarAccess]),
            ..Default::default()
        };
        let filter = plan.resolve(&VarTable::new(vec!["x".into()]));
        let mut f = FilteredSink::new(filter, CountingSink::new());
        f.on_event(&mk_event(0, Op::Yield));
        f.on_event(&mk_event(
            1,
            Op::VarRead {
                var: VarId(0),
                value: 3,
            },
        ));
        f.finish();
        assert_eq!(f.inner().total, 1);
        assert!(f.into_inner().is_finished());
    }

    #[test]
    fn closure_sink_works() {
        let mut count = 0u32;
        {
            let mut sink = |_: &Event| count += 1;
            sink.on_event(&mk_event(0, Op::Yield));
            sink.on_event(&mk_event(1, Op::Yield));
        }
        assert_eq!(count, 2);
    }
}
