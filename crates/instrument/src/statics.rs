//! Static-analysis facts, in the shape the instrumentor consumes.
//!
//! §3 of the paper describes two uses for information gleaned statically:
//! pick a *subset* of instrumentation points (e.g. only accesses to
//! variables that can be touched by more than one thread), or pass the
//! information *through* the instrumented call so the dynamic tool can use
//! it. [`StaticInfo`] supports both: [`crate::InstrumentationPlan`] can
//! restrict itself to variables/sites a `StaticInfo` marks as interesting,
//! and sinks can hold a copy to annotate their own output.
//!
//! Facts are keyed by *name* (variables) and [`Loc`] (sites) rather than by
//! runtime ids, because static analysis runs before any execution exists;
//! the plan resolves names to ids against the program's variable table at
//! execution start.

use crate::event::Loc;
use std::collections::BTreeMap;

/// Statically derived facts about one shared variable.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VarFacts {
    /// May the variable be accessed by more than one thread? Conservative:
    /// `true` when the analysis cannot prove thread-locality.
    pub shared: bool,
    /// May the variable be written at all (by any thread)?
    pub written: bool,
    /// Names of locks that are held at *every* statically-visible access.
    /// Empty means "no common lock" — the static-lockset race signal.
    pub guarded_by: Vec<String>,
}

mtt_json::json_struct!(VarFacts {
    shared,
    written,
    guarded_by,
});

/// Statically derived facts about one instrumentation site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteFacts {
    /// Does the site touch a variable the analysis considers shared?
    pub touches_shared: bool,
    /// Can a context switch at this site change observable behaviour?
    /// `false` for sites inside a no-switch region (purely thread-local
    /// computation), which noise makers and race detectors may skip.
    pub switch_relevant: bool,
    /// Number of distinct threads that can statically reach this site.
    pub reaching_threads: u32,
    /// May this site ever execute in parallel with a conflicting access to
    /// the same data? `false` only when a may-happen-in-parallel analysis
    /// proved the site serialized against every other access (e.g. all
    /// accesses share a lock, or only one thread instance can reach it).
    pub may_run_parallel: bool,
}

impl Default for SiteFacts {
    fn default() -> Self {
        // Absent analysis, every site must be assumed interesting.
        SiteFacts {
            touches_shared: true,
            switch_relevant: true,
            reaching_threads: u32::MAX,
            may_run_parallel: true,
        }
    }
}

mtt_json::json_struct!(SiteFacts {
    touches_shared,
    switch_relevant,
    reaching_threads,
    may_run_parallel,
});

/// The full bundle of facts a static analysis exports for one program.
///
/// This is the interchange type between `mtt-static` (producer) and
/// `mtt-instrument` / `mtt-noise` / `mtt-coverage` (consumers). An empty
/// `StaticInfo` (no facts) is always safe: consumers treat missing entries
/// conservatively.
#[derive(Clone, Debug, Default)]
pub struct StaticInfo {
    /// Per-variable facts, keyed by the variable's registered name.
    pub vars: BTreeMap<String, VarFacts>,
    /// Per-site facts.
    pub sites: BTreeMap<Loc, SiteFacts>,
    /// Statically detected potential races: (variable name, human-readable
    /// explanation). Consumed directly as warnings, and by experiments that
    /// compare static and dynamic detector output.
    pub race_warnings: Vec<(String, String)>,
    /// Statically detected potential deadlocks (lock-order cycles), as the
    /// lock-name cycle plus an explanation.
    pub deadlock_warnings: Vec<(Vec<String>, String)>,
    /// Source-line pairs proven to commute by an independence analysis,
    /// canonically ordered `(min, max)` and sorted. Consumed by sleep-set
    /// partial-order reduction; an absent pair always means "dependent",
    /// so the empty vector is the safe default.
    pub independent_line_pairs: Vec<(u32, u32)>,
}

mtt_json::json_struct!(StaticInfo {
    vars,
    sites,
    race_warnings,
    deadlock_warnings,
    independent_line_pairs,
});

impl StaticInfo {
    /// True when no analysis results are present.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty() && self.sites.is_empty()
    }

    /// Is `name` known to be thread-local (provably not shared)?
    ///
    /// Returns `false` (i.e. "must assume shared") when no fact is recorded.
    pub fn is_provably_local(&self, name: &str) -> bool {
        self.vars.get(name).is_some_and(|f| !f.shared)
    }

    /// Names of variables the analysis says can be touched by more than one
    /// thread — the feasibility set the paper wants for coverage models
    /// ("static techniques could be used to evaluate which variables can be
    /// accessed by multiple threads").
    pub fn shared_var_names(&self) -> impl Iterator<Item = &str> {
        self.vars
            .iter()
            .filter(|(_, f)| f.shared)
            .map(|(n, _)| n.as_str())
    }

    /// Is instrumenting `loc` useful? `true` when unknown (conservative).
    /// A site is prunable when it is switch-irrelevant, touches nothing
    /// shared, or provably never runs in parallel with a conflicting access.
    pub fn site_relevant(&self, loc: &Loc) -> bool {
        self.sites
            .get(loc)
            .is_none_or(|f| f.switch_relevant && f.touches_shared && f.may_run_parallel)
    }

    /// Are the operations at lines `a` and `b` proven to commute?
    /// `false` when no fact is recorded — the conservative default.
    pub fn lines_independent(&self, a: u32, b: u32) -> bool {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.independent_line_pairs.binary_search(&key).is_ok()
    }

    /// Merge facts from another analysis pass. Sharing/written flags are
    /// OR-ed (conservative union); guard sets are intersected; site facts
    /// are OR-ed on relevance. Independence pairs are intersected (a pair
    /// survives only if both passes proved it), with "no facts" treated as
    /// "defer to the other pass".
    pub fn merge(&mut self, other: &StaticInfo) {
        for (name, of) in &other.vars {
            let e = self.vars.entry(name.clone()).or_default();
            e.shared |= of.shared;
            e.written |= of.written;
            if e.guarded_by.is_empty() {
                e.guarded_by = of.guarded_by.clone();
            } else {
                e.guarded_by.retain(|l| of.guarded_by.contains(l));
            }
        }
        for (loc, of) in &other.sites {
            let e = self.sites.entry(*loc).or_insert_with(|| SiteFacts {
                touches_shared: false,
                switch_relevant: false,
                reaching_threads: 0,
                may_run_parallel: false,
            });
            e.touches_shared |= of.touches_shared;
            e.switch_relevant |= of.switch_relevant;
            e.reaching_threads = e.reaching_threads.max(of.reaching_threads);
            e.may_run_parallel |= of.may_run_parallel;
        }
        self.race_warnings
            .extend(other.race_warnings.iter().cloned());
        self.deadlock_warnings
            .extend(other.deadlock_warnings.iter().cloned());
        if self.independent_line_pairs.is_empty() {
            self.independent_line_pairs = other.independent_line_pairs.clone();
        } else if !other.independent_line_pairs.is_empty() {
            self.independent_line_pairs
                .retain(|p| other.independent_line_pairs.binary_search(p).is_ok());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_info_is_conservative() {
        let info = StaticInfo::default();
        assert!(info.is_empty());
        assert!(!info.is_provably_local("x"));
        assert!(info.site_relevant(&Loc::new("f", 1)));
    }

    #[test]
    fn shared_var_enumeration() {
        let mut info = StaticInfo::default();
        info.vars.insert(
            "shared_counter".into(),
            VarFacts {
                shared: true,
                written: true,
                guarded_by: vec![],
            },
        );
        info.vars.insert(
            "local_tmp".into(),
            VarFacts {
                shared: false,
                written: true,
                guarded_by: vec![],
            },
        );
        let shared: Vec<_> = info.shared_var_names().collect();
        assert_eq!(shared, vec!["shared_counter"]);
        assert!(info.is_provably_local("local_tmp"));
        assert!(!info.is_provably_local("shared_counter"));
    }

    #[test]
    fn irrelevant_site_is_skippable() {
        let mut info = StaticInfo::default();
        let loc = Loc::new("prog", 12);
        info.sites.insert(
            loc,
            SiteFacts {
                touches_shared: false,
                switch_relevant: false,
                reaching_threads: 1,
                may_run_parallel: true,
            },
        );
        assert!(!info.site_relevant(&loc));
        assert!(info.site_relevant(&Loc::new("prog", 13)));
    }

    #[test]
    fn merge_is_conservative_union() {
        let mut a = StaticInfo::default();
        a.vars.insert(
            "x".into(),
            VarFacts {
                shared: false,
                written: false,
                guarded_by: vec!["l1".into(), "l2".into()],
            },
        );
        let mut b = StaticInfo::default();
        b.vars.insert(
            "x".into(),
            VarFacts {
                shared: true,
                written: true,
                guarded_by: vec!["l2".into()],
            },
        );
        a.merge(&b);
        let f = &a.vars["x"];
        assert!(f.shared && f.written);
        assert_eq!(f.guarded_by, vec!["l2".to_string()]);
    }

    #[test]
    fn merge_site_facts_takes_max_relevance() {
        let loc = Loc::new("p", 3);
        let mut a = StaticInfo::default();
        a.sites.insert(
            loc,
            SiteFacts {
                touches_shared: false,
                switch_relevant: false,
                reaching_threads: 1,
                may_run_parallel: false,
            },
        );
        let mut b = StaticInfo::default();
        b.sites.insert(
            loc,
            SiteFacts {
                touches_shared: true,
                switch_relevant: true,
                reaching_threads: 2,
                may_run_parallel: true,
            },
        );
        a.merge(&b);
        assert!(a.site_relevant(&loc));
        assert_eq!(a.sites[&loc].reaching_threads, 2);
    }

    #[test]
    fn independence_lookup_is_symmetric_and_conservative() {
        let info = StaticInfo {
            independent_line_pairs: vec![(2, 5), (3, 3)],
            ..Default::default()
        };
        assert!(info.lines_independent(2, 5));
        assert!(info.lines_independent(5, 2));
        assert!(info.lines_independent(3, 3));
        assert!(!info.lines_independent(2, 3), "absent pair means dependent");
    }

    #[test]
    fn merge_intersects_independence_pairs() {
        let mut a = StaticInfo {
            independent_line_pairs: vec![(1, 2), (2, 5)],
            ..Default::default()
        };
        let b = StaticInfo {
            independent_line_pairs: vec![(2, 5), (7, 9)],
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.independent_line_pairs, vec![(2, 5)]);

        // Empty defers to the other pass, in both directions.
        let mut c = StaticInfo::default();
        c.merge(&b);
        assert_eq!(c.independent_line_pairs, vec![(2, 5), (7, 9)]);
        let mut d = b.clone();
        d.merge(&StaticInfo::default());
        assert_eq!(d.independent_line_pairs, vec![(2, 5), (7, 9)]);
    }
}
