//! The event model: what an instrumentation point reports.
//!
//! An [`Event`] is the unit of information flowing from the instrumented
//! program to every dynamic testing tool. The field set mirrors the record
//! format specified in §4 of the paper: *"Each record in the traces contain
//! information about the location in the program from which it was called,
//! what was instrumented, which variable was touched, thread name, if it is
//! a read or write"* — plus the lock context that offline lockset-based race
//! detectors need.

use mtt_json::{FromJson, Json, JsonError, JsonKey, ToJson};
use std::fmt;
use std::sync::Arc;

macro_rules! id_type {
    ($(#[$m:meta])* $name:ident) => {
        $(#[$m])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        mtt_json::json_newtype!($name);

        impl $name {
            /// Raw index, usable for dense table lookups.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a model thread. Thread 0 is always the program's main
    /// thread; children get dense ids in spawn order, which keeps replays
    /// stable across executions of a deterministic program.
    ThreadId
);
id_type!(
    /// Identifier of a registered shared variable.
    VarId
);
id_type!(
    /// Identifier of a registered mutex.
    LockId
);
id_type!(
    /// Identifier of a registered condition variable.
    CondId
);
id_type!(
    /// Identifier of a registered counting semaphore.
    SemId
);
id_type!(
    /// Identifier of a registered barrier.
    BarrierId
);

impl ThreadId {
    /// The program's main thread.
    pub const MAIN: ThreadId = ThreadId(0);
}

/// Whether a variable operation reads or writes the shared store.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    Read,
    Write,
}

mtt_json::json_enum!(AccessKind { Read, Write });

impl AccessKind {
    /// True for [`AccessKind::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// A static program location: the "site" of an instrumentation point.
///
/// Sites are produced by the [`crate::site!`] macro (file + line of the
/// operation in the benchmark program source) or synthesized by front ends
/// such as the MiniProg compiler. Two events with equal `Loc` come from the
/// same static program point, which is what coverage models and noise
/// placement strategies key on.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Loc {
    /// Source file (or MiniProg program name) containing the operation.
    pub file: &'static str,
    /// 1-based line number within `file`.
    pub line: u32,
}

impl Loc {
    /// A location for operations synthesized by the framework itself.
    pub const SYNTHETIC: Loc = Loc {
        file: "<synthetic>",
        line: 0,
    };

    /// Build a location from parts (used by code generators).
    pub const fn new(file: &'static str, line: u32) -> Self {
        Loc { file, line }
    }
}

impl Loc {
    /// The interned `(file id, line)` key for this location.
    ///
    /// Hot-path consumers (per-event site counters, coverage models) key
    /// their tables on this pair instead of on `Loc` itself: comparing or
    /// hashing a `LocKey` is two integer operations, where keying on `Loc`
    /// compares/hashes the whole file-path string — and formatting the
    /// JSON key form would even allocate a `String` per lookup. The string
    /// form survives only at serialization time, once per *distinct* site.
    pub fn key(&self) -> LocKey {
        LocKey {
            file: intern_file_id(self.file),
            line: self.line,
        }
    }
}

/// Interned form of a [`Loc`]: a dense file id plus the line number.
///
/// Ordering on `LocKey` is by id, which is *insertion* order of the file
/// pool — stable within a process but not across processes. Anything
/// serialized must therefore convert back to [`Loc`] (see
/// [`LocKey::loc`]) and use its lexicographic string order, which is what
/// keeps reports byte-identical across runs and job counts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocKey {
    /// Dense id of the interned file name (see [`intern_file_id`]).
    pub file: u32,
    /// 1-based line number.
    pub line: u32,
}

impl LocKey {
    /// Resolve back to the string-keyed location.
    pub fn loc(self) -> Loc {
        Loc {
            file: file_name(self.file),
            line: self.line,
        }
    }
}

impl ToJson for Loc {
    /// Serialized as `"file:line"` so locations are legal JSON map keys.
    fn to_json(&self) -> Json {
        Json::Str(self.to_key())
    }
}

impl FromJson for Loc {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let s = v
            .as_str()
            .ok_or_else(|| JsonError::expected("\"file:line\" string", v))?;
        Loc::from_key(s)
    }
}

impl JsonKey for Loc {
    fn to_key(&self) -> String {
        format!("{}:{}", self.file, self.line)
    }

    /// Parse `"file:line"`; the file part is interned (file names may
    /// legally contain ':', so the split is at the *last* colon).
    fn from_key(key: &str) -> Result<Self, JsonError> {
        let (file, line) = key
            .rsplit_once(':')
            .ok_or_else(|| JsonError::msg("location key must be \"file:line\""))?;
        let line = line
            .parse::<u32>()
            .map_err(|_| JsonError::msg("invalid line number in location key"))?;
        Ok(Loc {
            file: intern_static(file),
            line,
        })
    }
}

impl fmt::Debug for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.file, self.line)
    }
}

/// Intern a string into a `&'static str`.
///
/// [`Loc`] requires `&'static str` file names, but trace readers and
/// MiniProg front ends produce owned strings at runtime. The interner leaks
/// each *distinct* string once; the set of source files and program names in
/// a process is small and bounded, so the leak is too.
pub fn intern_static(s: &str) -> &'static str {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static POOL: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let pool = POOL.get_or_init(|| Mutex::new(HashSet::new()));
    let mut set = pool.lock().expect("intern pool poisoned");
    if let Some(&existing) = set.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    set.insert(leaked);
    leaked
}

/// The process-wide file-id pool backing [`Loc::key`].
struct FilePool {
    by_name: std::collections::HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn file_pool() -> &'static std::sync::RwLock<FilePool> {
    use std::sync::{OnceLock, RwLock};
    static POOL: OnceLock<RwLock<FilePool>> = OnceLock::new();
    POOL.get_or_init(|| {
        RwLock::new(FilePool {
            by_name: std::collections::HashMap::new(),
            names: Vec::new(),
        })
    })
}

/// Intern a file name into a dense `u32` id (first come, first numbered).
///
/// Ids are per-process: the set of distinct source files is tiny, so the
/// common case is a read-locked hash lookup; the write lock is taken once
/// per new file ever seen.
pub fn intern_file_id(file: &'static str) -> u32 {
    if let Some(&id) = file_pool()
        .read()
        .expect("file pool poisoned")
        .by_name
        .get(file)
    {
        return id;
    }
    let mut pool = file_pool().write().expect("file pool poisoned");
    if let Some(&id) = pool.by_name.get(file) {
        return id;
    }
    let id = pool.names.len() as u32;
    pool.names.push(file);
    pool.by_name.insert(file, id);
    id
}

/// Resolve a file id handed out by [`intern_file_id`] back to its name.
///
/// # Panics
/// On an id that was never issued in this process.
pub fn file_name(id: u32) -> &'static str {
    file_pool().read().expect("file pool poisoned").names[id as usize]
}

/// Capture the current source location as a [`Loc`].
#[macro_export]
macro_rules! site {
    () => {
        $crate::Loc {
            file: file!(),
            line: line!(),
        }
    };
}

/// The operation performed at an instrumentation point.
///
/// Every scheduling-relevant action of the model runtime is one of these.
/// Blocking primitives produce *two* events — a `…Request` before the thread
/// may block and an acquire/pass event once it proceeds — because online
/// deadlock monitors need to see intent, and noise makers want a hook before
/// the blocking decision is made.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// A read of `var` that observed `value`.
    VarRead { var: VarId, value: i64 },
    /// A write of `value` into `var`.
    VarWrite { var: VarId, value: i64 },
    /// An atomic read-modify-write of `var` (old value `old`, new value
    /// `new`). Atomic operations are synchronization actions: race
    /// detectors treat them as sync edges on the variable, not as plain
    /// data accesses.
    VarRmw { var: VarId, old: i64, new: i64 },
    /// The thread is about to acquire `lock` (may block).
    LockRequest { lock: LockId },
    /// The thread acquired `lock`.
    LockAcquire { lock: LockId },
    /// The thread released `lock`.
    LockRelease { lock: LockId },
    /// A `try_lock` that failed immediately.
    LockTryFail { lock: LockId },
    /// The thread began waiting on `cond`, releasing `lock`.
    CondWait { cond: CondId, lock: LockId },
    /// The thread woke from `cond` and re-acquired `lock`.
    CondWake { cond: CondId, lock: LockId },
    /// The thread signalled `cond`; `all` distinguishes notify-all.
    CondNotify { cond: CondId, all: bool },
    /// The thread is about to acquire one permit of `sem` (may block).
    SemRequest { sem: SemId },
    /// The thread acquired one permit of `sem`.
    SemAcquire { sem: SemId },
    /// The thread released one permit of `sem`.
    SemRelease { sem: SemId },
    /// The thread arrived at `barrier` (may block until the party is full).
    BarrierArrive { barrier: BarrierId },
    /// The thread passed `barrier`.
    BarrierPass { barrier: BarrierId },
    /// The thread spawned `child`.
    Spawn { child: ThreadId },
    /// The thread is about to join `target` (may block).
    JoinRequest { target: ThreadId },
    /// The thread completed a join on `target`.
    Join { target: ThreadId },
    /// First event of every thread.
    ThreadStart,
    /// Last event of every thread.
    ThreadExit,
    /// A voluntary scheduling point with no semantic effect.
    Yield,
    /// The thread slept for `ticks` units of virtual time.
    Sleep { ticks: u32 },
    /// A user-defined program point (label index into the program's label
    /// table), usable as a pure instrumentation hook.
    Point { label: u32 },
    /// An executable assertion evaluated to false. `label` indexes the
    /// program's label table.
    AssertFail { label: u32 },
}

mtt_json::json_enum!(Op {
    VarRead { var, value },
    VarWrite { var, value },
    VarRmw { var, old, new },
    LockRequest { lock },
    LockAcquire { lock },
    LockRelease { lock },
    LockTryFail { lock },
    CondWait { cond, lock },
    CondWake { cond, lock },
    CondNotify { cond, all },
    SemRequest { sem },
    SemAcquire { sem },
    SemRelease { sem },
    BarrierArrive { barrier },
    BarrierPass { barrier },
    Spawn { child },
    JoinRequest { target },
    Join { target },
    ThreadStart,
    ThreadExit,
    Yield,
    Sleep { ticks },
    Point { label },
    AssertFail { label },
});

/// Coarse classification of [`Op`]s, used by [`crate::plan`] filters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// `VarRead` / `VarWrite`.
    VarAccess,
    /// Mutex request/acquire/release/try-fail.
    Lock,
    /// Condition wait/wake/notify.
    Cond,
    /// Semaphore request/acquire/release.
    Sem,
    /// Barrier arrive/pass.
    Barrier,
    /// Spawn, join, thread start/exit.
    ThreadLife,
    /// Yield and sleep.
    Delay,
    /// `Point` and `AssertFail`.
    Marker,
}

mtt_json::json_enum!(OpClass {
    VarAccess,
    Lock,
    Cond,
    Sem,
    Barrier,
    ThreadLife,
    Delay,
    Marker,
});

impl OpClass {
    /// All classes, in a stable order.
    pub const ALL: [OpClass; 8] = [
        OpClass::VarAccess,
        OpClass::Lock,
        OpClass::Cond,
        OpClass::Sem,
        OpClass::Barrier,
        OpClass::ThreadLife,
        OpClass::Delay,
        OpClass::Marker,
    ];

    /// Dense index for bitset storage.
    #[inline]
    pub fn bit(self) -> u8 {
        self as u8
    }
}

impl Op {
    /// The coarse class of this operation.
    pub fn class(&self) -> OpClass {
        match self {
            Op::VarRead { .. } | Op::VarWrite { .. } | Op::VarRmw { .. } => OpClass::VarAccess,
            Op::LockRequest { .. }
            | Op::LockAcquire { .. }
            | Op::LockRelease { .. }
            | Op::LockTryFail { .. } => OpClass::Lock,
            Op::CondWait { .. } | Op::CondWake { .. } | Op::CondNotify { .. } => OpClass::Cond,
            Op::SemRequest { .. } | Op::SemAcquire { .. } | Op::SemRelease { .. } => OpClass::Sem,
            Op::BarrierArrive { .. } | Op::BarrierPass { .. } => OpClass::Barrier,
            Op::Spawn { .. }
            | Op::JoinRequest { .. }
            | Op::Join { .. }
            | Op::ThreadStart
            | Op::ThreadExit => OpClass::ThreadLife,
            Op::Yield | Op::Sleep { .. } => OpClass::Delay,
            Op::Point { .. } | Op::AssertFail { .. } => OpClass::Marker,
        }
    }

    /// The variable touched, if this is a variable access.
    pub fn var(&self) -> Option<VarId> {
        match self {
            Op::VarRead { var, .. } | Op::VarWrite { var, .. } | Op::VarRmw { var, .. } => {
                Some(*var)
            }
            _ => None,
        }
    }

    /// Read/write kind, if this is a variable access.
    pub fn access_kind(&self) -> Option<AccessKind> {
        match self {
            Op::VarRead { .. } => Some(AccessKind::Read),
            // An atomic RMW is at least a write for coverage purposes.
            Op::VarWrite { .. } | Op::VarRmw { .. } => Some(AccessKind::Write),
            _ => None,
        }
    }

    /// The lock involved, if any.
    pub fn lock(&self) -> Option<LockId> {
        match self {
            Op::LockRequest { lock }
            | Op::LockAcquire { lock }
            | Op::LockRelease { lock }
            | Op::LockTryFail { lock }
            | Op::CondWait { lock, .. }
            | Op::CondWake { lock, .. } => Some(*lock),
            _ => None,
        }
    }

    /// True if the operation is one of the `…Request`/`Arrive` events that
    /// precede a potentially blocking action.
    pub fn is_blocking_request(&self) -> bool {
        matches!(
            self,
            Op::LockRequest { .. }
                | Op::SemRequest { .. }
                | Op::JoinRequest { .. }
                | Op::BarrierArrive { .. }
                | Op::CondWait { .. }
        )
    }

    /// True if the operation establishes a happens-before edge (release or
    /// acquire semantics) in the model's synchronization order.
    pub fn is_sync(&self) -> bool {
        !matches!(
            self,
            Op::VarRead { .. }
                | Op::VarWrite { .. }
                | Op::Yield
                | Op::Sleep { .. }
                | Op::Point { .. }
                | Op::AssertFail { .. }
        )
    }

    /// True for plain (non-atomic) variable reads/writes — the accesses
    /// data-race detectors examine.
    pub fn is_plain_access(&self) -> bool {
        matches!(self, Op::VarRead { .. } | Op::VarWrite { .. })
    }
}

/// One instrumentation record.
///
/// Events are delivered to [`crate::EventSink`]s in global order (`seq` is
/// strictly increasing across the whole execution) because the model runtime
/// interleaves at most one thread at a time.
#[derive(Clone, Debug)]
pub struct Event {
    /// Global sequence number, dense from 0.
    pub seq: u64,
    /// Virtual time at which the operation happened.
    pub time: u64,
    /// The executing thread.
    pub thread: ThreadId,
    /// Static program location of the operation.
    pub loc: Loc,
    /// The operation itself.
    pub op: Op,
    /// Locks held by `thread` *after* the operation took effect. Shared so
    /// that the hot path clones a pointer, not a vector (the held-set only
    /// changes at lock operations).
    pub locks_held: Arc<[LockId]>,
}

mtt_json::json_struct!(Event {
    seq,
    time,
    thread,
    loc,
    op,
    locks_held,
});

impl Event {
    /// Convenience: variable + access kind for variable events.
    pub fn var_access(&self) -> Option<(VarId, AccessKind)> {
        Some((self.op.var()?, self.op.access_kind()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_class_partition_is_total() {
        // Every Op constructor maps to exactly one class; spot-check each arm.
        let v = VarId(1);
        let l = LockId(2);
        let c = CondId(3);
        let s = SemId(4);
        let b = BarrierId(5);
        let t = ThreadId(6);
        let cases: Vec<(Op, OpClass)> = vec![
            (Op::VarRead { var: v, value: 0 }, OpClass::VarAccess),
            (Op::VarWrite { var: v, value: 1 }, OpClass::VarAccess),
            (Op::LockRequest { lock: l }, OpClass::Lock),
            (Op::LockAcquire { lock: l }, OpClass::Lock),
            (Op::LockRelease { lock: l }, OpClass::Lock),
            (Op::LockTryFail { lock: l }, OpClass::Lock),
            (Op::CondWait { cond: c, lock: l }, OpClass::Cond),
            (Op::CondWake { cond: c, lock: l }, OpClass::Cond),
            (Op::CondNotify { cond: c, all: true }, OpClass::Cond),
            (Op::SemRequest { sem: s }, OpClass::Sem),
            (Op::SemAcquire { sem: s }, OpClass::Sem),
            (Op::SemRelease { sem: s }, OpClass::Sem),
            (Op::BarrierArrive { barrier: b }, OpClass::Barrier),
            (Op::BarrierPass { barrier: b }, OpClass::Barrier),
            (Op::Spawn { child: t }, OpClass::ThreadLife),
            (Op::JoinRequest { target: t }, OpClass::ThreadLife),
            (Op::Join { target: t }, OpClass::ThreadLife),
            (Op::ThreadStart, OpClass::ThreadLife),
            (Op::ThreadExit, OpClass::ThreadLife),
            (Op::Yield, OpClass::Delay),
            (Op::Sleep { ticks: 3 }, OpClass::Delay),
            (Op::Point { label: 0 }, OpClass::Marker),
            (Op::AssertFail { label: 0 }, OpClass::Marker),
        ];
        for (op, class) in cases {
            assert_eq!(op.class(), class, "class of {op:?}");
        }
    }

    #[test]
    fn var_and_access_kind_extraction() {
        let r = Op::VarRead {
            var: VarId(7),
            value: 42,
        };
        assert_eq!(r.var(), Some(VarId(7)));
        assert_eq!(r.access_kind(), Some(AccessKind::Read));
        assert!(!AccessKind::Read.is_write());
        let w = Op::VarWrite {
            var: VarId(7),
            value: 42,
        };
        assert_eq!(w.access_kind(), Some(AccessKind::Write));
        assert!(AccessKind::Write.is_write());
        assert_eq!(Op::Yield.var(), None);
    }

    #[test]
    fn blocking_request_ops() {
        assert!(Op::LockRequest { lock: LockId(0) }.is_blocking_request());
        assert!(Op::CondWait {
            cond: CondId(0),
            lock: LockId(0)
        }
        .is_blocking_request());
        assert!(!Op::LockAcquire { lock: LockId(0) }.is_blocking_request());
        assert!(!Op::Yield.is_blocking_request());
    }

    #[test]
    fn sync_ops_exclude_plain_accesses() {
        assert!(!Op::VarRead {
            var: VarId(0),
            value: 0
        }
        .is_sync());
        assert!(!Op::Sleep { ticks: 1 }.is_sync());
        assert!(Op::LockAcquire { lock: LockId(0) }.is_sync());
        assert!(Op::Spawn { child: ThreadId(1) }.is_sync());
    }

    #[test]
    fn site_macro_captures_location() {
        let loc = site!();
        assert!(loc.file.ends_with("event.rs"));
        assert!(loc.line > 0);
        assert_eq!(format!("{loc}"), format!("{}:{}", loc.file, loc.line));
    }

    #[test]
    fn id_types_display_and_index() {
        let t = ThreadId(3);
        assert_eq!(t.index(), 3);
        assert_eq!(format!("{t}"), "3");
        assert_eq!(format!("{t:?}"), "ThreadId(3)");
        assert_eq!(ThreadId::MAIN, ThreadId(0));
    }
}
