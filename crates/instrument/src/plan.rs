//! The instrumentor's open API: *what* to instrument.
//!
//! A bytecode instrumentor, as the paper describes it, has "a standard
//! interface that let the user tell it what type of instructions to
//! instrument, which variables, and where to instrument in terms of methods
//! and classes". [`InstrumentationPlan`] is that interface for the model
//! runtime: a declarative selection over operation classes, variables,
//! sites, and threads, optionally informed by [`StaticInfo`].
//!
//! Plans are written against variable *names* (static analysis does not know
//! runtime ids); before an execution starts the runtime resolves the plan
//! against its [`VarTable`] into a [`ResolvedFilter`], a dense-bitset
//! predicate cheap enough for the per-event hot path.

use crate::event::{Event, Loc, OpClass, ThreadId, VarId};
use crate::statics::StaticInfo;
use std::collections::BTreeSet;

/// A selection over a namable domain: everything, an allow-list, or a
/// deny-list.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum Select<T: Ord> {
    /// Select every element.
    #[default]
    All,
    /// Select only the listed elements.
    Only(BTreeSet<T>),
    /// Select everything but the listed elements.
    Except(BTreeSet<T>),
}

impl<T: Ord> Select<T> {
    /// Build an allow-list selection.
    pub fn only<I: IntoIterator<Item = T>>(items: I) -> Self {
        Select::Only(items.into_iter().collect())
    }

    /// Build a deny-list selection.
    pub fn except<I: IntoIterator<Item = T>>(items: I) -> Self {
        Select::Except(items.into_iter().collect())
    }

    /// Does the selection include `item`?
    pub fn includes(&self, item: &T) -> bool {
        match self {
            Select::All => true,
            Select::Only(set) => set.contains(item),
            Select::Except(set) => !set.contains(item),
        }
    }
}

/// A set of [`OpClass`]es stored as a bitmask.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct OpClassSet(u16);

impl OpClassSet {
    /// The empty set.
    pub const NONE: OpClassSet = OpClassSet(0);
    /// Every operation class.
    pub const ALL: OpClassSet = OpClassSet((1 << OpClass::ALL.len()) - 1);

    /// Set containing exactly the given classes.
    pub fn of(classes: &[OpClass]) -> Self {
        let mut mask = 0u16;
        for c in classes {
            mask |= 1 << c.bit();
        }
        OpClassSet(mask)
    }

    /// The classes relevant to synchronization-aware tools (everything but
    /// pure markers and delays).
    pub fn sync_and_access() -> Self {
        Self::of(&[
            OpClass::VarAccess,
            OpClass::Lock,
            OpClass::Cond,
            OpClass::Sem,
            OpClass::Barrier,
            OpClass::ThreadLife,
        ])
    }

    /// Insert a class.
    pub fn insert(&mut self, c: OpClass) {
        self.0 |= 1 << c.bit();
    }

    /// Remove a class.
    pub fn remove(&mut self, c: OpClass) {
        self.0 &= !(1 << c.bit());
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, c: OpClass) -> bool {
        self.0 & (1 << c.bit()) != 0
    }

    /// Number of classes in the set.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// True when no class is selected.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }
}

impl Default for OpClassSet {
    fn default() -> Self {
        OpClassSet::ALL
    }
}

impl std::fmt::Debug for OpClassSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set()
            .entries(OpClass::ALL.iter().filter(|c| self.contains(**c)))
            .finish()
    }
}

/// The mapping from variable names to runtime ids for one program,
/// established when the program registers its shared variables.
#[derive(Clone, Debug, Default)]
pub struct VarTable {
    names: Vec<String>,
}

impl VarTable {
    /// Build from registered names in id order (index = `VarId`).
    pub fn new(names: Vec<String>) -> Self {
        VarTable { names }
    }

    /// Name of `var`, or `"?"` for unknown ids.
    pub fn name(&self, var: VarId) -> &str {
        self.names.get(var.index()).map_or("?", |s| s.as_str())
    }

    /// Id of the variable called `name`.
    pub fn id(&self, name: &str) -> Option<VarId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| VarId(i as u32))
    }

    /// Number of registered variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no variable is registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(VarId, name)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (VarId(i as u32), n.as_str()))
    }
}

/// Declarative instrumentation plan — the "open API" of the instrumentor.
#[derive(Clone, Debug, Default)]
pub struct InstrumentationPlan {
    /// Which operation classes produce events for the plan's sinks.
    pub ops: OpClassSet,
    /// Which variables (by registered name) are instrumented. Non-selected
    /// variables still execute correctly; their accesses just emit no event
    /// to the plan's consumers.
    pub vars: Select<String>,
    /// Which threads are instrumented.
    pub threads: Select<ThreadId>,
    /// Which sites are instrumented.
    pub sites: Select<Loc>,
    /// Optional static-analysis facts. When present and
    /// [`Self::use_static_advice`] is set, accesses to provably thread-local
    /// variables and sites marked irrelevant are dropped.
    pub static_info: StaticInfo,
    /// Apply `static_info` to prune instrumentation points.
    pub use_static_advice: bool,
}

impl InstrumentationPlan {
    /// Instrument everything (the default and the conservative choice).
    pub fn full() -> Self {
        Self::default()
    }

    /// Instrument only synchronization and shared-variable accesses — the
    /// footprint needed by race detectors and replay.
    pub fn sync_and_access() -> Self {
        InstrumentationPlan {
            ops: OpClassSet::sync_and_access(),
            ..Self::default()
        }
    }

    /// Full instrumentation pruned by a static analysis (§3 of the paper).
    pub fn advised(info: StaticInfo) -> Self {
        InstrumentationPlan {
            static_info: info,
            use_static_advice: true,
            ..Self::default()
        }
    }

    /// Resolve the plan against a program's variable table into the dense
    /// filter evaluated per event.
    pub fn resolve(&self, vars: &VarTable) -> ResolvedFilter {
        let mut var_selected = vec![true; vars.len()];
        for (id, name) in vars.iter() {
            let mut sel = self.vars.includes(&name.to_string());
            if sel && self.use_static_advice && self.static_info.is_provably_local(name) {
                sel = false;
            }
            var_selected[id.index()] = sel;
        }
        ResolvedFilter {
            ops: self.ops,
            var_selected,
            threads: self.threads.clone(),
            sites: self.sites.clone(),
            pruned_sites: if self.use_static_advice {
                self.static_info
                    .sites
                    .iter()
                    .filter(|(_, f)| !(f.switch_relevant && f.touches_shared && f.may_run_parallel))
                    .map(|(l, _)| *l)
                    .collect()
            } else {
                BTreeSet::new()
            },
        }
    }
}

/// A plan resolved against a concrete variable table; the per-event filter.
#[derive(Clone, Debug)]
pub struct ResolvedFilter {
    ops: OpClassSet,
    var_selected: Vec<bool>,
    threads: Select<ThreadId>,
    sites: Select<Loc>,
    pruned_sites: BTreeSet<Loc>,
}

impl ResolvedFilter {
    /// A filter that passes everything (used when no plan is configured).
    pub fn pass_all() -> Self {
        ResolvedFilter {
            ops: OpClassSet::ALL,
            var_selected: Vec::new(),
            threads: Select::All,
            sites: Select::All,
            pruned_sites: BTreeSet::new(),
        }
    }

    /// Should `ev` be delivered to sinks?
    pub fn selects(&self, ev: &Event) -> bool {
        if !self.ops.contains(ev.op.class()) {
            return false;
        }
        if let Some(var) = ev.op.var() {
            // Unregistered ids (beyond the table) stay conservative: selected.
            if let Some(&sel) = self.var_selected.get(var.index()) {
                if !sel {
                    return false;
                }
            }
        }
        if !self.threads.includes(&ev.thread) {
            return false;
        }
        if self.pruned_sites.contains(&ev.loc) {
            return false;
        }
        self.sites.includes(&ev.loc)
    }

    /// How many instrumentation *variables* the filter keeps, out of the
    /// table size — the reduction statistic experiment E7 reports.
    pub fn selected_var_count(&self) -> usize {
        self.var_selected.iter().filter(|&&s| s).count()
    }

    /// Number of sites pruned by static advice.
    pub fn pruned_site_count(&self) -> usize {
        self.pruned_sites.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{LockId, Op};
    use crate::statics::{SiteFacts, VarFacts};
    use std::sync::Arc;

    fn ev(op: Op, thread: ThreadId, loc: Loc) -> Event {
        Event {
            seq: 0,
            time: 0,
            thread,
            loc,
            op,
            locks_held: Arc::from(Vec::<LockId>::new()),
        }
    }

    fn table() -> VarTable {
        VarTable::new(vec!["a".into(), "b".into(), "local".into()])
    }

    #[test]
    fn select_semantics() {
        let only = Select::only(["x".to_string()]);
        assert!(only.includes(&"x".to_string()));
        assert!(!only.includes(&"y".to_string()));
        let except = Select::except(["x".to_string()]);
        assert!(!except.includes(&"x".to_string()));
        assert!(except.includes(&"y".to_string()));
        assert!(Select::<String>::All.includes(&"anything".to_string()));
    }

    #[test]
    fn opclass_set_operations() {
        let mut s = OpClassSet::NONE;
        assert!(s.is_empty());
        s.insert(OpClass::Lock);
        s.insert(OpClass::VarAccess);
        assert_eq!(s.len(), 2);
        assert!(s.contains(OpClass::Lock));
        assert!(!s.contains(OpClass::Barrier));
        s.remove(OpClass::Lock);
        assert!(!s.contains(OpClass::Lock));
        assert_eq!(OpClassSet::ALL.len(), OpClass::ALL.len());
    }

    #[test]
    fn var_table_lookup_roundtrip() {
        let t = table();
        assert_eq!(t.id("b"), Some(VarId(1)));
        assert_eq!(t.name(VarId(1)), "b");
        assert_eq!(t.name(VarId(99)), "?");
        assert_eq!(t.id("nope"), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn full_plan_selects_everything() {
        let f = InstrumentationPlan::full().resolve(&table());
        let e = ev(
            Op::VarRead {
                var: VarId(0),
                value: 1,
            },
            ThreadId(2),
            Loc::new("f", 1),
        );
        assert!(f.selects(&e));
        assert_eq!(f.selected_var_count(), 3);
    }

    #[test]
    fn op_class_filtering() {
        let plan = InstrumentationPlan {
            ops: OpClassSet::of(&[OpClass::Lock]),
            ..Default::default()
        };
        let f = plan.resolve(&table());
        assert!(f.selects(&ev(
            Op::LockAcquire { lock: LockId(0) },
            ThreadId(0),
            Loc::new("f", 1)
        )));
        assert!(!f.selects(&ev(
            Op::VarRead {
                var: VarId(0),
                value: 0
            },
            ThreadId(0),
            Loc::new("f", 1)
        )));
    }

    #[test]
    fn var_name_filtering() {
        let plan = InstrumentationPlan {
            vars: Select::only(["a".to_string()]),
            ..Default::default()
        };
        let f = plan.resolve(&table());
        assert!(f.selects(&ev(
            Op::VarWrite {
                var: VarId(0),
                value: 0
            },
            ThreadId(0),
            Loc::new("f", 1)
        )));
        assert!(!f.selects(&ev(
            Op::VarWrite {
                var: VarId(1),
                value: 0
            },
            ThreadId(0),
            Loc::new("f", 1)
        )));
        assert_eq!(f.selected_var_count(), 1);
    }

    #[test]
    fn static_advice_prunes_local_vars_and_dead_sites() {
        let mut info = StaticInfo::default();
        info.vars.insert(
            "local".into(),
            VarFacts {
                shared: false,
                written: true,
                guarded_by: vec![],
            },
        );
        let dead = Loc::new("prog", 7);
        info.sites.insert(
            dead,
            SiteFacts {
                touches_shared: false,
                switch_relevant: false,
                reaching_threads: 1,
                may_run_parallel: true,
            },
        );
        let f = InstrumentationPlan::advised(info).resolve(&table());
        // "local" (VarId 2) pruned, "a"/"b" kept.
        assert_eq!(f.selected_var_count(), 2);
        assert!(!f.selects(&ev(
            Op::VarRead {
                var: VarId(2),
                value: 0
            },
            ThreadId(0),
            Loc::new("f", 1)
        )));
        // dead site pruned even for otherwise-selected ops.
        assert!(!f.selects(&ev(Op::Yield, ThreadId(0), dead)));
        assert_eq!(f.pruned_site_count(), 1);
    }

    #[test]
    fn thread_and_site_filtering() {
        let plan = InstrumentationPlan {
            threads: Select::only([ThreadId(1)]),
            sites: Select::except([Loc::new("skip", 3)]),
            ..Default::default()
        };
        let f = plan.resolve(&table());
        assert!(!f.selects(&ev(Op::Yield, ThreadId(0), Loc::new("x", 1))));
        assert!(f.selects(&ev(Op::Yield, ThreadId(1), Loc::new("x", 1))));
        assert!(!f.selects(&ev(Op::Yield, ThreadId(1), Loc::new("skip", 3))));
    }

    #[test]
    fn unregistered_var_id_is_conservatively_selected() {
        let plan = InstrumentationPlan {
            vars: Select::only(["a".to_string()]),
            ..Default::default()
        };
        let f = plan.resolve(&table());
        // VarId beyond the table (e.g. registered after resolve) passes.
        assert!(f.selects(&ev(
            Op::VarRead {
                var: VarId(42),
                value: 0
            },
            ThreadId(0),
            Loc::new("f", 1)
        )));
    }
}
