//! # mtt-explore — systematic state-space exploration
//!
//! §2.2 of the paper: systematic state-space exploration "integrates
//! automatic test generation, execution and evaluation in a single tool ...
//! by controlling and observing the execution of all the components, and by
//! reinitializing their executions. They search for deadlocks, and for
//! violations of user-specified assertions. Whenever an error is detected
//! during state-space exploration, a scenario leading to the error state is
//! saved. Scenarios can be executed and replayed."
//!
//! This crate is a **stateless search** in the VeriSoft tradition: the
//! program is re-executed from the start with a *forced decision prefix*,
//! and the tree of scheduler decisions is walked depth-first. Reductions:
//!
//! * **Visible-operation POR** ([`ExploreOptions::branch_only_visible`]):
//!   alternatives are only explored at scheduling points that follow an
//!   operation on shared state (CHESS's reduction — reordering around
//!   thread-invisible operations cannot change observable behaviour).
//! * **Preemption bounding** ([`ExploreOptions::preemption_bound`]): bound
//!   the number of *involuntary* context switches per schedule; iterate the
//!   bound upward ([`Explorer::iterative_preemption_bounds`]) to find most
//!   bugs with very few preemptions, as CHESS demonstrated.
//! * **Stateful hashing** ([`ExploreOptions::stateful`]): CMC-style visited
//!   set over model-state fingerprints (shared store + lock owners +
//!   per-thread observation history); deterministic model threads make the
//!   pruning sound modulo hash collision.
//! * **Sleep-set DPOR** ([`ExploreOptions::sleep_sets`]): Godefroid-style
//!   sleep sets fed by a *static* independence oracle
//!   ([`StaticInfo::lines_independent`], produced by `mtt-static`'s
//!   `StaticIndependence` pass). When an alternative has been fully
//!   explored from a branch point, the sibling runs carry it in their
//!   sleep set and skip re-exploring it until a dependent operation (per
//!   the oracle) wakes it. An absent oracle fact means "dependent", so
//!   missing static advice degrades to plain exploration, never to an
//!   unsound one.
//!
//! Every bug found is reproduced once more under a recording scheduler to
//! produce a clean [`mtt_replay::ReplayLog`] — the saved "scenario" that
//! can be replayed, exactly as the paper prescribes.
//!
//! Orthogonal to the reductions, [`ExploreOptions::saturation`] attaches a
//! Good–Turing **saturation budget** (`mtt-coverage`'s
//! [`SaturationAdvisor`]): every execution's canonical Mazurkiewicz-trace
//! fingerprint (`mtt-causal`) feeds the advisor, and the search stops once
//! the estimated unseen mass of schedule classes drops below ε — the
//! principled answer to the paper's "how many times should each test be
//! executed" question.

use mtt_causal::Fingerprinter;
use mtt_coverage::{Advice, SaturationAdvisor};
use mtt_instrument::{Event, EventSink, Loc, Op, StaticInfo, ThreadId};
use mtt_replay::{record, ReplayLog};
use mtt_runtime::{Execution, ExecutionOptions, NoNoise, Outcome, Program, SchedView, Scheduler};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------
// Per-run recording scheduler
// ---------------------------------------------------------------------

/// What one execution recorded at each scheduling point.
#[derive(Debug, Default)]
struct RunRecord {
    /// Chosen thread per point.
    decisions: Vec<u32>,
    /// Runnable set per point.
    runnables: Vec<Vec<u32>>,
    /// Thread whose event triggered each point (None for the initial pick).
    prev: Vec<Option<u32>>,
    /// Whether the event preceding each point was "visible" (shared-state
    /// relevant). The initial point counts as visible.
    visible: Vec<bool>,
    /// Model-state fingerprint at each point (only filled in stateful mode).
    state_hash: Vec<u64>,
    /// Source location of the event each decision produced (`locs[k]` is
    /// the op run by `decisions[k]`); feeds the sleep-set wake rule.
    locs: Vec<Loc>,
    /// Mazurkiewicz-trace fingerprint state, fed only when a saturation
    /// budget is attached.
    fp: Fingerprinter,
}

/// Scheduler that forces a decision prefix and then runs a deterministic
/// default policy (keep the previous thread when possible), recording
/// everything the explorer needs.
struct ForcedPrefix {
    prefix: Vec<u32>,
    record: Arc<Mutex<RunRecord>>,
    last_prev: Option<u32>,
    last_visible: bool,
    stateful: bool,
    fingerprint: bool,
    state: StateTracker,
    static_info: Option<Arc<StaticInfo>>,
}

impl ForcedPrefix {
    fn new(
        prefix: Vec<u32>,
        stateful: bool,
        fingerprint: bool,
        static_info: Option<Arc<StaticInfo>>,
    ) -> (Self, Arc<Mutex<RunRecord>>) {
        let record = Arc::new(Mutex::new(RunRecord::default()));
        (
            ForcedPrefix {
                prefix,
                record: Arc::clone(&record),
                last_prev: None,
                last_visible: true,
                stateful,
                fingerprint,
                state: StateTracker::default(),
                static_info,
            },
            record,
        )
    }
}

impl Scheduler for ForcedPrefix {
    fn pick(&mut self, view: &SchedView<'_>) -> ThreadId {
        let mut rec = self.record.lock().expect("run record poisoned");
        let idx = rec.decisions.len();
        let chosen = if idx < self.prefix.len() {
            let forced = ThreadId(self.prefix[idx]);
            if view.is_runnable(forced) {
                forced
            } else {
                // The prefix is infeasible (can happen only with buggy
                // branch generation); degrade deterministically.
                view.runnable[0]
            }
        } else {
            // Default policy: stay on the previous thread (minimizes
            // preemptions, the natural baseline for preemption bounding).
            view.prev
                .filter(|p| view.is_runnable(*p))
                .unwrap_or(view.runnable[0])
        };
        rec.decisions.push(chosen.0);
        rec.runnables
            .push(view.runnable.iter().map(|t| t.0).collect());
        rec.prev.push(self.last_prev);
        rec.visible.push(self.last_visible);
        rec.state_hash.push(if self.stateful {
            self.state.fingerprint()
        } else {
            0
        });
        chosen
    }

    fn on_event(&mut self, ev: &Event) {
        self.last_prev = Some(ev.thread.0);
        {
            let mut rec = self.record.lock().expect("run record poisoned");
            rec.locs.push(ev.loc);
            if self.fingerprint {
                rec.fp.on_event(ev);
            }
        }
        // Static refinement of the visibility reduction: an operation a
        // may-happen-in-parallel analysis proved serialized (or thread-local)
        // commutes with its neighbours just like a yield does, so the point
        // after it needs no alternatives.
        self.last_visible = is_visible(&ev.op)
            && self
                .static_info
                .as_ref()
                .is_none_or(|info| info.site_relevant(&ev.loc));
        if self.stateful {
            self.state.observe(ev);
        }
    }

    fn name(&self) -> &str {
        "explore"
    }
}

/// Operations whose reordering with neighbouring operations can change
/// observable behaviour. Yields, sleeps and markers commute with everything.
fn is_visible(op: &Op) -> bool {
    !matches!(op, Op::Yield | Op::Sleep { .. } | Op::Point { .. })
}

/// Incremental model-state fingerprint, reconstructed from the event
/// stream: shared-store contents (from write events), lock owners, and a
/// rolling per-thread observation-history hash (reads with the values they
/// observed). For deterministic model threads, equal fingerprints imply
/// equal continuations (modulo hash collision).
#[derive(Debug, Default)]
struct StateTracker {
    vars: HashMap<u32, i64>,
    lock_owner: HashMap<u32, u32>,
    thread_hist: HashMap<u32, u64>,
}

impl StateTracker {
    fn observe(&mut self, ev: &Event) {
        let t = ev.thread.0;
        let h = self.thread_hist.entry(t).or_insert(0xcbf2_9ce4_8422_2325);
        // FNV-ish rolling hash over the thread's observations.
        let mut mix = |x: u64| {
            *h ^= x;
            *h = h.wrapping_mul(0x1000_0000_01b3);
        };
        match ev.op {
            Op::VarRead { var, value } => {
                mix(1);
                mix(u64::from(var.0));
                mix(value as u64);
            }
            Op::VarWrite { var, value } => {
                mix(2);
                mix(u64::from(var.0));
                mix(value as u64);
                self.vars.insert(var.0, value);
            }
            Op::VarRmw { var, old, new } => {
                mix(8);
                mix(u64::from(var.0));
                mix(old as u64);
                mix(new as u64);
                self.vars.insert(var.0, new);
            }
            Op::LockAcquire { lock } => {
                mix(3);
                mix(u64::from(lock.0));
                self.lock_owner.insert(lock.0, t);
            }
            Op::LockRelease { lock } => {
                mix(4);
                mix(u64::from(lock.0));
                self.lock_owner.remove(&lock.0);
            }
            Op::CondWait { lock, .. } => {
                mix(5);
                self.lock_owner.remove(&lock.0);
            }
            Op::CondWake { lock, .. } => {
                mix(6);
                self.lock_owner.insert(lock.0, t);
            }
            other => {
                mix(7);
                let mut dh = DefaultHasher::new();
                other.hash(&mut dh);
                mix(dh.finish());
            }
        }
    }

    fn fingerprint(&self) -> u64 {
        // Order-independent combination of the maps (XOR of keyed hashes).
        let mut acc = 0u64;
        let mut item = |tag: u64, k: u64, v: u64| {
            let mut h = DefaultHasher::new();
            (tag, k, v).hash(&mut h);
            acc ^= h.finish();
        };
        for (&k, &v) in &self.vars {
            item(1, u64::from(k), v as u64);
        }
        for (&k, &v) in &self.lock_owner {
            item(2, u64::from(k), u64::from(v));
        }
        for (&k, &v) in &self.thread_hist {
            item(3, u64::from(k), v);
        }
        acc
    }
}

// ---------------------------------------------------------------------
// The explorer
// ---------------------------------------------------------------------

/// Exploration budgets and reductions.
#[derive(Clone, Debug)]
pub struct ExploreOptions {
    /// Maximum executions before giving up (0 = unlimited).
    pub max_executions: u64,
    /// Only consider alternatives at the first `max_depth` scheduling
    /// points of each execution (0 = unlimited).
    pub max_depth: usize,
    /// Bound on involuntary context switches per schedule (`None` = off).
    pub preemption_bound: Option<u32>,
    /// Branch only at points following a visible operation.
    pub branch_only_visible: bool,
    /// Static analysis facts (escape + may-happen-in-parallel). When set,
    /// the visibility reduction also treats operations at statically
    /// irrelevant sites — thread-local or proven serialized — as invisible,
    /// shrinking the branch tree further (§3: static advice consumed by a
    /// dynamic tool).
    pub static_info: Option<Arc<StaticInfo>>,
    /// Sleep-set DPOR driven by the static independence oracle in
    /// [`StaticInfo::independent_line_pairs`]. Once a branch alternative is
    /// fully explored, sibling runs keep it asleep — skipping it at later
    /// branch points — until an operation the oracle cannot prove
    /// independent wakes it. Without `static_info` (or with an empty
    /// oracle) every operation wakes everything and the search is plain
    /// visible-operation POR.
    pub sleep_sets: bool,
    /// Good–Turing saturation budget: each execution's Mazurkiewicz-trace
    /// fingerprint feeds the advisor, and the search stops once the
    /// estimated unseen schedule-class mass drops below the advisor's ε
    /// (after its `min_runs`). `None` = run to the other budgets.
    pub saturation: Option<SaturationAdvisor>,
    /// CMC-style visited-state pruning.
    pub stateful: bool,
    /// Stop at the first bug.
    pub stop_on_first_bug: bool,
    /// Step budget per execution (model hang guard).
    pub max_steps_per_exec: u64,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_executions: 10_000,
            max_depth: 400,
            preemption_bound: None,
            branch_only_visible: true,
            static_info: None,
            sleep_sets: false,
            saturation: None,
            stateful: false,
            stop_on_first_bug: true,
            max_steps_per_exec: 20_000,
        }
    }
}

/// A bug found during exploration.
#[derive(Debug)]
pub struct BugFound {
    /// The forcing prefix that reaches the bug (the saved "scenario").
    pub prefix: Vec<u32>,
    /// The buggy outcome.
    pub outcome: Outcome,
    /// A clean replay log re-recorded over the bug schedule.
    pub schedule: ReplayLog,
}

/// Exploration statistics and findings.
#[derive(Debug, Default)]
pub struct ExploreResult {
    /// Executions performed.
    pub executions: u64,
    /// Total scheduling points executed (transitions).
    pub transitions: u64,
    /// Bugs found (one entry per distinct buggy schedule encountered, or
    /// just the first with `stop_on_first_bug`).
    pub bugs: Vec<BugFound>,
    /// Did the search exhaust the (bounded) schedule tree?
    pub exhausted: bool,
    /// Fingerprints of distinct observable outcomes (the §4.4 distribution
    /// support discovered exhaustively).
    pub distinct_outcomes: HashSet<u64>,
    /// Branch points pruned by the visited-state set.
    pub pruned_by_state: u64,
    /// Branch points skipped by the visibility reduction.
    pub pruned_by_visibility: u64,
    /// Alternatives skipped by the preemption bound.
    pub pruned_by_preemption: u64,
    /// Alternatives skipped because they were asleep (already covered by an
    /// explored sibling per the static independence oracle).
    pub pruned_by_sleep: u64,
    /// Distinct Mazurkiewicz-trace classes visited (saturation mode only;
    /// 0 when no budget was attached).
    pub distinct_schedules: usize,
    /// Final Good–Turing unseen-mass estimate (saturation mode only).
    pub unseen_mass: Option<f64>,
    /// Whether the saturation budget ended the search.
    pub stopped_by_saturation: bool,
}

impl ExploreResult {
    /// Executions until the first bug (None if no bug found).
    pub fn executions_to_first_bug(&self) -> Option<u64> {
        if self.bugs.is_empty() {
            None
        } else {
            Some(self.executions)
        }
    }
}

/// Copy the saturation advisor's final tallies into the result.
fn note_saturation(result: &mut ExploreResult, advisor: Option<&SaturationAdvisor>) {
    if let Some(a) = advisor {
        result.distinct_schedules = a.coverage().distinct();
        result.unseen_mass = Some(a.unseen_mass());
    }
}

/// The oracle deciding whether an outcome is buggy.
pub type Oracle = dyn Fn(&Outcome) -> bool + Send + Sync;

/// Depth-first stateless explorer over a program's schedule tree.
pub struct Explorer<'p> {
    program: &'p Program,
    opts: ExploreOptions,
    oracle: Arc<Oracle>,
}

/// One pending alternative in the DFS stack.
struct Branch {
    /// Forced choices before this point.
    prefix: Vec<u32>,
    /// Alternatives not yet tried at this point.
    untried: Vec<u32>,
    /// Sleep set valid on entry to this branch point (sleep-set mode only):
    /// thread choices already covered by earlier exploration, each with the
    /// location of the op it performed when it was explored.
    sleep: Vec<(u32, Loc)>,
    /// Choices already explored from this point (the original run's default
    /// pick, then each popped alternative), with the op each performed.
    /// Sibling runs start with these asleep.
    explored: Vec<(u32, Loc)>,
}

/// A run the DFS still has to perform.
struct Pending {
    /// Forced decision prefix.
    prefix: Vec<u32>,
    /// Sleep set on entry to the branch point this run diverges at
    /// (`prefix.len() - 1`); empty for the root run.
    sleep: Vec<(u32, Loc)>,
    /// Stack index of the [`Branch`] this run was popped from (None for the
    /// root run); its `explored` list is extended once the run completes.
    origin: Option<usize>,
}

impl<'p> Explorer<'p> {
    /// Explorer with the default oracle: deadlock, step-limit hang, panic
    /// or failed assertion is a bug.
    pub fn new(program: &'p Program, opts: ExploreOptions) -> Self {
        Explorer {
            program,
            opts,
            oracle: Arc::new(|o: &Outcome| !o.ok()),
        }
    }

    /// Replace the bug oracle.
    pub fn with_oracle<F: Fn(&Outcome) -> bool + Send + Sync + 'static>(mut self, f: F) -> Self {
        self.oracle = Arc::new(f);
        self
    }

    fn run_one(&self, prefix: &[u32]) -> (Outcome, RunRecord) {
        let (sched, record) = ForcedPrefix::new(
            prefix.to_vec(),
            self.opts.stateful,
            self.opts.saturation.is_some(),
            self.opts.static_info.clone(),
        );
        let outcome = Execution::new(self.program)
            .scheduler(Box::new(sched))
            .options(ExecutionOptions {
                max_steps: self.opts.max_steps_per_exec,
                ..Default::default()
            })
            .run();
        let rec = Arc::try_unwrap(record)
            .map(|m| m.into_inner().expect("record poisoned"))
            .unwrap_or_else(|arc| {
                let g = arc.lock().expect("record poisoned");
                RunRecord {
                    decisions: g.decisions.clone(),
                    runnables: g.runnables.clone(),
                    prev: g.prev.clone(),
                    visible: g.visible.clone(),
                    state_hash: g.state_hash.clone(),
                    locs: g.locs.clone(),
                    fp: g.fp.clone(),
                }
            });
        (outcome, rec)
    }

    /// Count preemptions in a decision sequence: a switch away from a
    /// still-runnable previous thread.
    fn preemptions(rec_prev: &[Option<u32>], runnables: &[Vec<u32>], decisions: &[u32]) -> u32 {
        let mut p = 0;
        for i in 0..decisions.len() {
            if let Some(prev) = rec_prev[i] {
                if decisions[i] != prev && runnables[i].contains(&prev) {
                    p += 1;
                }
            }
        }
        p
    }

    /// Sleep-set wake rule: after thread `who` executes the op at `loc`,
    /// drop every sleeping entry that is `who` itself (its continuation
    /// changed) or that the oracle cannot prove independent of the op.
    /// Missing information (no oracle, no recorded loc) wakes everything —
    /// the conservative direction.
    fn wake(
        sleep: &mut Vec<(u32, Loc)>,
        who: Option<u32>,
        loc: Option<Loc>,
        info: Option<&StaticInfo>,
    ) {
        let (Some(who), Some(loc), Some(info)) = (who, loc, info) else {
            sleep.clear();
            return;
        };
        sleep.retain(|(t, tl)| *t != who && info.lines_independent(loc.line, tl.line));
    }

    /// Run the depth-first exploration.
    pub fn run(&self) -> ExploreResult {
        let mut result = ExploreResult::default();
        let mut advisor = self.opts.saturation.clone();
        let mut visited: HashSet<u64> = HashSet::new();
        let mut stack: Vec<Branch> = Vec::new();
        let mut next: Option<Pending> = Some(Pending {
            prefix: Vec::new(),
            sleep: Vec::new(),
            origin: None,
        });
        let sleeping = self.opts.sleep_sets;
        let info = self.opts.static_info.as_deref();

        while let Some(pending) = next.take() {
            if self.opts.max_executions > 0 && result.executions >= self.opts.max_executions {
                result.exhausted = false;
                note_saturation(&mut result, advisor.as_ref());
                return result;
            }
            let prefix = pending.prefix;
            let (outcome, rec) = self.run_one(&prefix);
            result.executions += 1;
            result.transitions += rec.decisions.len() as u64;
            result.distinct_outcomes.insert(outcome.fingerprint());
            if let Some(adv) = advisor.as_mut() {
                if adv.observe(rec.fp.fingerprint().to_hex()) == Advice::Stop {
                    result.stopped_by_saturation = true;
                    note_saturation(&mut result, advisor.as_ref());
                    return result;
                }
            }

            // This run is now part of the covered subtree of the branch it
            // diverged from: siblings popped later start with it asleep.
            if sleeping {
                if let Some(oi) = pending.origin {
                    let i0 = prefix.len() - 1;
                    if let (Some(&d), Some(&l)) = (rec.decisions.get(i0), rec.locs.get(i0)) {
                        stack[oi].explored.push((d, l));
                    }
                }
            }

            if (self.oracle)(&outcome) {
                let schedule = self.reproduce(&rec.decisions);
                result.bugs.push(BugFound {
                    prefix: rec.decisions.clone(),
                    outcome,
                    schedule,
                });
                if self.opts.stop_on_first_bug {
                    note_saturation(&mut result, advisor.as_ref());
                    return result;
                }
            }

            // Preemptions consumed by the already-forced prefix choices.
            let base_preemptions = Self::preemptions(
                &rec.prev[..prefix.len().min(rec.prev.len())],
                &rec.runnables,
                &rec.decisions[..prefix.len().min(rec.decisions.len())],
            );

            // Advance the sleep set over the forced divergence step, so it
            // is valid on entry to the first expandable point.
            let mut sleep = pending.sleep;
            if sleeping && pending.origin.is_some() && !prefix.is_empty() {
                let i0 = prefix.len() - 1;
                Self::wake(
                    &mut sleep,
                    rec.decisions.get(i0).copied(),
                    rec.locs.get(i0).copied(),
                    info,
                );
            }

            // Expand new branch points discovered beyond the forced prefix.
            let limit = if self.opts.max_depth == 0 {
                rec.decisions.len()
            } else {
                rec.decisions.len().min(self.opts.max_depth)
            };
            let mut running_preemptions = base_preemptions;
            for i in prefix.len()..limit {
                if sleeping && i > prefix.len() {
                    Self::wake(
                        &mut sleep,
                        rec.decisions.get(i - 1).copied(),
                        rec.locs.get(i - 1).copied(),
                        info,
                    );
                }
                let runnable = &rec.runnables[i];
                // Maintain the preemption count along the default path.
                let step_preempts = |choice: u32| -> u32 {
                    match rec.prev[i] {
                        Some(prev) if choice != prev && runnable.contains(&prev) => 1,
                        _ => 0,
                    }
                };
                if runnable.len() > 1 {
                    if self.opts.branch_only_visible && !rec.visible[i] {
                        result.pruned_by_visibility += 1;
                    } else if self.opts.stateful && !visited.insert(rec.state_hash[i]) {
                        result.pruned_by_state += 1;
                    } else {
                        let mut untried: Vec<u32> = runnable
                            .iter()
                            .copied()
                            .filter(|&t| t != rec.decisions[i])
                            .collect();
                        if sleeping && !sleep.is_empty() {
                            let before = untried.len();
                            untried.retain(|t| !sleep.iter().any(|(s, _)| s == t));
                            result.pruned_by_sleep += (before - untried.len()) as u64;
                        }
                        if let Some(bound) = self.opts.preemption_bound {
                            let before = untried.len();
                            untried.retain(|&t| running_preemptions + step_preempts(t) <= bound);
                            result.pruned_by_preemption += (before - untried.len()) as u64;
                        }
                        if !untried.is_empty() {
                            stack.push(Branch {
                                prefix: rec.decisions[..i].to_vec(),
                                untried,
                                sleep: if sleeping { sleep.clone() } else { Vec::new() },
                                explored: if sleeping {
                                    match (rec.decisions.get(i), rec.locs.get(i)) {
                                        (Some(&d), Some(&l)) => vec![(d, l)],
                                        _ => Vec::new(),
                                    }
                                } else {
                                    Vec::new()
                                },
                            });
                        }
                    }
                }
                running_preemptions += step_preempts(rec.decisions[i]);
            }

            // Backtrack to the deepest branch with work left.
            while let Some(top) = stack.last_mut() {
                if let Some(alt) = top.untried.pop() {
                    let mut p = top.prefix.clone();
                    p.push(alt);
                    let sleep = if sleeping {
                        let mut s = top.sleep.clone();
                        s.extend(top.explored.iter().copied());
                        s
                    } else {
                        Vec::new()
                    };
                    next = Some(Pending {
                        prefix: p,
                        sleep,
                        origin: Some(stack.len() - 1),
                    });
                    break;
                }
                stack.pop();
            }
        }
        result.exhausted = true;
        note_saturation(&mut result, advisor.as_ref());
        result
    }

    /// Iterative preemption bounding: explore with bounds `0, 1, …, max`,
    /// returning at the first bound that finds a bug (plus the per-bound
    /// execution counts).
    pub fn iterative_preemption_bounds(&self, max_bound: u32) -> (ExploreResult, Vec<(u32, u64)>) {
        let mut counts = Vec::new();
        for bound in 0..=max_bound {
            let explorer = Explorer {
                program: self.program,
                opts: ExploreOptions {
                    preemption_bound: Some(bound),
                    ..self.opts.clone()
                },
                oracle: Arc::clone(&self.oracle),
            };
            let r = explorer.run();
            counts.push((bound, r.executions));
            if !r.bugs.is_empty() || bound == max_bound {
                return (r, counts);
            }
        }
        unreachable!("loop always returns at max_bound");
    }

    /// Re-run a bug schedule under a recording scheduler to produce a clean
    /// replay log (the saved scenario of the paper).
    pub fn reproduce(&self, decisions: &[u32]) -> ReplayLog {
        let (forced, _) = ForcedPrefix::new(decisions.to_vec(), false, false, None);
        let (sched, noise, handle) = record(self.program.name(), 0, forced, NoNoise);
        let _ = Execution::new(self.program)
            .scheduler(Box::new(sched))
            .noise(Box::new(noise))
            .options(ExecutionOptions {
                max_steps: self.opts.max_steps_per_exec,
                ..Default::default()
            })
            .run();
        handle.take_log()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtt_runtime::ProgramBuilder;

    /// Two-thread lost-update: 2 increments each. Exhaustive exploration
    /// must find schedules with x < 4.
    fn racy(increments: u32) -> Program {
        let mut b = ProgramBuilder::new("racy");
        let x = b.var("x", 0);
        b.entry(move |ctx| {
            let a = ctx.spawn("a", move |ctx| {
                for _ in 0..increments {
                    let v = ctx.read(x);
                    ctx.write(x, v + 1);
                }
            });
            let c = ctx.spawn("b", move |ctx| {
                for _ in 0..increments {
                    let v = ctx.read(x);
                    ctx.write(x, v + 1);
                }
            });
            ctx.join(a);
            ctx.join(c);
            let v = ctx.read(x);
            ctx.check(v == 2 * increments as i64, "no-lost-update");
        });
        b.build()
    }

    fn ab_ba() -> Program {
        let mut b = ProgramBuilder::new("abba");
        let a = b.lock("a");
        let l2 = b.lock("b");
        b.entry(move |ctx| {
            let t1 = ctx.spawn("t1", move |ctx| {
                ctx.lock(a);
                ctx.lock(l2);
                ctx.unlock(l2);
                ctx.unlock(a);
            });
            let t2 = ctx.spawn("t2", move |ctx| {
                ctx.lock(l2);
                ctx.lock(a);
                ctx.unlock(a);
                ctx.unlock(l2);
            });
            ctx.join(t1);
            ctx.join(t2);
        });
        b.build()
    }

    #[test]
    fn finds_lost_update_bug() {
        let p = racy(1);
        let r = Explorer::new(&p, ExploreOptions::default()).run();
        assert!(!r.bugs.is_empty(), "exploration must find the lost update");
        let bug = &r.bugs[0];
        assert!(!bug.outcome.assert_failures.is_empty());
        assert!(bug.schedule.is_full());
        assert!(r.executions >= 2, "first (default) schedule is clean");
    }

    #[test]
    fn finds_abba_deadlock() {
        let p = ab_ba();
        let r = Explorer::new(&p, ExploreOptions::default()).run();
        assert!(!r.bugs.is_empty());
        assert!(r.bugs[0].outcome.deadlocked());
    }

    #[test]
    fn clean_program_exhausts_without_bugs() {
        let mut b = ProgramBuilder::new("clean");
        let x = b.var("x", 0);
        let l = b.lock("l");
        b.entry(move |ctx| {
            let t = ctx.spawn("t", move |ctx| {
                ctx.lock(l);
                let v = ctx.read(x);
                ctx.write(x, v + 1);
                ctx.unlock(l);
            });
            ctx.lock(l);
            let v = ctx.read(x);
            ctx.write(x, v + 1);
            ctx.unlock(l);
            ctx.join(t);
            let v = ctx.read(x);
            ctx.check(v == 2, "sum");
        });
        let p = b.build();
        let r = Explorer::new(&p, ExploreOptions::default()).run();
        assert!(r.bugs.is_empty());
        assert!(r.exhausted, "bounded tree should be fully explored");
        assert!(r.executions > 1, "there are multiple interleavings");
    }

    #[test]
    fn exhaustive_outcome_support_is_complete() {
        // x can end at 1 or 2 with one increment per thread; exploration
        // must discover both distinct outcomes.
        let p = racy(1);
        let r = Explorer::new(
            &p,
            ExploreOptions {
                stop_on_first_bug: false,
                ..Default::default()
            },
        )
        .run();
        assert!(r.exhausted);
        assert!(
            r.distinct_outcomes.len() >= 2,
            "expected ≥2 outcomes, got {}",
            r.distinct_outcomes.len()
        );
    }

    #[test]
    fn visibility_reduction_shrinks_the_tree() {
        let mut b = ProgramBuilder::new("yields");
        let x = b.var("x", 0);
        b.entry(move |ctx| {
            let t = ctx.spawn("t", move |ctx| {
                for _ in 0..3 {
                    ctx.yield_now();
                }
                let v = ctx.read(x);
                ctx.write(x, v + 1);
            });
            for _ in 0..3 {
                ctx.yield_now();
            }
            let v = ctx.read(x);
            ctx.write(x, v + 1);
            ctx.join(t);
        });
        let p = b.build();
        let full = Explorer::new(
            &p,
            ExploreOptions {
                branch_only_visible: false,
                stop_on_first_bug: false,
                ..Default::default()
            },
        )
        .run();
        let reduced = Explorer::new(
            &p,
            ExploreOptions {
                branch_only_visible: true,
                stop_on_first_bug: false,
                ..Default::default()
            },
        )
        .run();
        assert!(full.exhausted && reduced.exhausted);
        assert!(
            reduced.executions < full.executions,
            "POR: {} vs full {}",
            reduced.executions,
            full.executions
        );
        assert!(reduced.pruned_by_visibility > 0);
        // The reduction must not lose outcomes.
        assert_eq!(full.distinct_outcomes, reduced.distinct_outcomes);
    }

    #[test]
    fn preemption_bound_zero_is_tiny_and_misses_the_race() {
        let p = racy(1);
        let r = Explorer::new(
            &p,
            ExploreOptions {
                preemption_bound: Some(0),
                stop_on_first_bug: false,
                ..Default::default()
            },
        )
        .run();
        assert!(r.exhausted);
        assert!(
            r.bugs.is_empty(),
            "the lost update needs ≥1 preemption, bound 0 must miss it"
        );
        assert!(r.pruned_by_preemption > 0);
    }

    #[test]
    fn iterative_bounding_finds_bug_at_small_bound() {
        let p = racy(1);
        let e = Explorer::new(&p, ExploreOptions::default());
        let (r, counts) = e.iterative_preemption_bounds(3);
        assert!(!r.bugs.is_empty());
        // Bound 0 ran (and found nothing), bug found at bound 1.
        assert_eq!(counts[0].0, 0);
        assert!(
            counts.len() <= 2,
            "bug should appear at bound 1: {counts:?}"
        );
    }

    #[test]
    fn stateful_pruning_reduces_executions_on_symmetric_program() {
        let p = racy(2);
        let base = Explorer::new(
            &p,
            ExploreOptions {
                stop_on_first_bug: false,
                max_executions: 200_000,
                ..Default::default()
            },
        )
        .run();
        let pruned = Explorer::new(
            &p,
            ExploreOptions {
                stop_on_first_bug: false,
                stateful: true,
                max_executions: 200_000,
                ..Default::default()
            },
        )
        .run();
        assert!(base.exhausted && pruned.exhausted);
        assert!(
            pruned.executions <= base.executions,
            "stateful {} > stateless {}",
            pruned.executions,
            base.executions
        );
        assert!(pruned.pruned_by_state > 0);
        // All buggy outcomes still found.
        assert_eq!(
            base.bugs.is_empty(),
            pruned.bugs.is_empty(),
            "stateful pruning lost the bug"
        );
    }

    #[test]
    fn bug_schedule_replays_to_same_failure() {
        let p = racy(1);
        let r = Explorer::new(&p, ExploreOptions::default()).run();
        let bug = &r.bugs[0];
        // Replay through the recorded schedule.
        let playback = mtt_replay::PlaybackScheduler::new(
            bug.schedule.clone(),
            mtt_replay::DivergencePolicy::Strict,
        );
        let report = playback.report_handle();
        let replayed = Execution::new(&p).scheduler(Box::new(playback)).run();
        assert_eq!(
            replayed.fingerprint(),
            bug.outcome.fingerprint(),
            "scenario replay must reproduce the failure"
        );
        assert!(report.lock().unwrap().is_clean());
    }

    #[test]
    fn static_advice_shrinks_the_tree_without_losing_outcomes() {
        // Accesses to `a` are all under `l`: the MHP analysis proves them
        // serialized, so with static advice those events stop spawning
        // branch points. Only the genuinely racy `b` (and the lock
        // operations themselves) still branch.
        // Note the accesses to `a` sit on their own lines: a line that also
        // holds the acquire/release stays relevant (sync ops must keep
        // their instrumentation), so a one-line `lock (l) { a = 1; }`
        // would not be pruned.
        let src = "program mp_por {
            var a = 0;
            var b = 0;
            lock l;
            thread t1 {
                lock (l) {
                    a = 1;
                }
                b = 1;
            }
            thread t2 {
                local r;
                lock (l) {
                    a = 2;
                }
                r = b;
            }
        }";
        let ast = mtt_static::parse(src).unwrap();
        let info = mtt_static::analyze(&ast).info;
        let p = mtt_static::compile(&ast);
        let opts = ExploreOptions {
            stop_on_first_bug: false,
            max_depth: 14,
            max_executions: 20_000,
            ..Default::default()
        };
        let plain = Explorer::new(&p, opts.clone()).run();
        let advised = Explorer::new(
            &p,
            ExploreOptions {
                static_info: Some(Arc::new(info)),
                ..opts
            },
        )
        .run();
        assert!(plain.exhausted && advised.exhausted);
        assert!(
            advised.executions < plain.executions,
            "static advice must prune: {} vs {}",
            advised.executions,
            plain.executions
        );
        assert_eq!(
            plain.distinct_outcomes, advised.distinct_outcomes,
            "the refinement may only drop equivalent interleavings"
        );
    }

    #[test]
    fn sleep_sets_prune_strictly_and_preserve_outcome_support() {
        // The exhaustiveness-preserving differential: on each program,
        // sleep-set DPOR driven by the StaticIndependence oracle must
        // explore strictly fewer executions than visible-op POR alone while
        // discovering the exact same set of distinct outcomes. Both sides
        // get the same static advice; only `sleep_sets` differs.
        for (name, depth) in [
            ("mp_abba", 12usize),
            ("mp_check_then_act", 12),
            ("mp_split_update", 9),
        ] {
            let sample = mtt_static::samples::by_name(name).expect(name);
            let ast = mtt_static::parse(sample.src).unwrap();
            let info = mtt_static::analyze(&ast).info;
            let p = mtt_static::compile(&ast);
            let opts = ExploreOptions {
                stop_on_first_bug: false,
                max_depth: depth,
                max_executions: 20_000,
                static_info: Some(Arc::new(info)),
                ..Default::default()
            };
            let plain = Explorer::new(&p, opts.clone()).run();
            let advised = Explorer::new(
                &p,
                ExploreOptions {
                    sleep_sets: true,
                    ..opts
                },
            )
            .run();
            assert!(plain.exhausted && advised.exhausted, "{name} not exhausted");
            assert!(
                advised.executions < plain.executions,
                "{name}: sleep sets must prune strictly: {} vs {}",
                advised.executions,
                plain.executions
            );
            assert!(advised.pruned_by_sleep > 0, "{name}: no sleep pruning");
            assert_eq!(
                plain.distinct_outcomes, advised.distinct_outcomes,
                "{name}: sleep sets may only drop equivalent interleavings"
            );
        }
    }

    #[test]
    fn sleep_sets_still_find_the_deadlock() {
        // Lock operations on the same lock are never independent, so the
        // sleep sets cannot hide the AB-BA interleaving.
        let src = "program mp_dl {
            lock a;
            lock b;
            thread t1 { acquire a; acquire b; release b; release a; }
            thread t2 { acquire b; acquire a; release a; release b; }
        }";
        let ast = mtt_static::parse(src).unwrap();
        let info = mtt_static::analyze(&ast).info;
        let p = mtt_static::compile(&ast);
        let r = Explorer::new(
            &p,
            ExploreOptions {
                sleep_sets: true,
                static_info: Some(Arc::new(info)),
                ..Default::default()
            },
        )
        .run();
        assert!(!r.bugs.is_empty(), "sleep sets must not hide the deadlock");
        assert!(r.bugs[0].outcome.deadlocked());
    }

    #[test]
    fn sleep_sets_without_oracle_degrade_to_plain_por() {
        // No static_info means every op wakes everything: identical search.
        let p = racy(1);
        let opts = ExploreOptions {
            stop_on_first_bug: false,
            ..Default::default()
        };
        let plain = Explorer::new(&p, opts.clone()).run();
        let sleepy = Explorer::new(
            &p,
            ExploreOptions {
                sleep_sets: true,
                ..opts
            },
        )
        .run();
        assert_eq!(plain.executions, sleepy.executions);
        assert_eq!(sleepy.pruned_by_sleep, 0);
        assert_eq!(plain.distinct_outcomes, sleepy.distinct_outcomes);
    }

    #[test]
    fn static_advice_keeps_lock_sites_and_still_finds_deadlock() {
        let src = "program mp_dl {
            lock a;
            lock b;
            thread t1 { acquire a; acquire b; release b; release a; }
            thread t2 { acquire b; acquire a; release a; release b; }
        }";
        let ast = mtt_static::parse(src).unwrap();
        let info = mtt_static::analyze(&ast).info;
        let p = mtt_static::compile(&ast);
        let r = Explorer::new(
            &p,
            ExploreOptions {
                static_info: Some(Arc::new(info)),
                ..Default::default()
            },
        )
        .run();
        assert!(
            !r.bugs.is_empty(),
            "advice must not hide the AB-BA deadlock"
        );
        assert!(r.bugs[0].outcome.deadlocked());
    }

    #[test]
    fn saturation_budget_stops_at_min_runs_with_permissive_epsilon() {
        // ε = 2.0 makes "G < ε" always true, so the advisor stops exactly
        // when min_runs is reached — a deterministic pin of the budget path.
        let p = racy(2);
        let r = Explorer::new(
            &p,
            ExploreOptions {
                stop_on_first_bug: false,
                saturation: Some(SaturationAdvisor::new(2.0, 4)),
                ..Default::default()
            },
        )
        .run();
        assert_eq!(r.executions, 4);
        assert!(r.stopped_by_saturation);
        assert!(!r.exhausted);
        assert!(r.distinct_schedules >= 1);
        assert!(r.unseen_mass.is_some());
    }

    #[test]
    fn saturation_epsilon_zero_never_stops_early_and_dedups_classes() {
        // ε = 0: "G < 0" is impossible, so the search runs to exhaustion
        // exactly like the plain explorer — but now it also counts the
        // distinct Mazurkiewicz classes it visited. Without POR, distinct
        // interleavings vastly outnumber distinct classes.
        let p = racy(1);
        let opts = ExploreOptions {
            stop_on_first_bug: false,
            branch_only_visible: false,
            ..Default::default()
        };
        let plain = Explorer::new(&p, opts.clone()).run();
        let sat = Explorer::new(
            &p,
            ExploreOptions {
                saturation: Some(SaturationAdvisor::new(0.0, 1)),
                ..opts
            },
        )
        .run();
        assert!(!sat.stopped_by_saturation);
        assert!(sat.exhausted);
        assert_eq!(plain.executions, sat.executions);
        assert_eq!(plain.distinct_outcomes, sat.distinct_outcomes);
        assert!(sat.distinct_schedules > 0);
        assert!(
            (sat.distinct_schedules as u64) < sat.executions,
            "full interleaving enumeration must revisit HB classes: {} classes in {} runs",
            sat.distinct_schedules,
            sat.executions
        );
        assert!(sat.unseen_mass.is_some());
    }

    #[test]
    fn execution_budget_is_respected() {
        let p = racy(3);
        let r = Explorer::new(
            &p,
            ExploreOptions {
                max_executions: 10,
                stop_on_first_bug: false,
                ..Default::default()
            },
        )
        .run();
        assert_eq!(r.executions, 10);
        assert!(!r.exhausted);
    }
}
