//! # mtt-core — the benchmark and framework, in one crate
//!
//! This is the umbrella crate of **mtt**, a Rust realization of the
//! benchmark-and-framework proposal of Havelund, Stoller and Ur,
//! *"Benchmark and Framework for Encouraging Research on Multi-Threaded
//! Testing Tools"* (IPDPS/PADTAD 2003). It re-exports every component with
//! the open interfaces §3 of that paper calls for, so a researcher can
//! replace exactly one piece and reuse the rest:
//!
//! | paper concept | here |
//! |---|---|
//! | instrumented program + scheduler | [`runtime`] ([`runtime::Program`], [`runtime::Execution`], [`runtime::Scheduler`]) |
//! | instrumentor with open API | [`instrument`] ([`instrument::InstrumentationPlan`], [`instrument::EventSink`]) |
//! | standard annotated trace format | [`trace`] |
//! | noise makers | [`noise`] |
//! | race detection (lockset + happens-before) | [`race`] |
//! | causal annotation: vector clocks, timelines, trace diffs | [`causal`] |
//! | deadlock detection (waits-for + lock graphs) | [`deadlock`] |
//! | replay (record / playback) | [`replay`] |
//! | concurrency coverage | [`coverage`] |
//! | systematic state-space exploration | [`explore`] |
//! | static analysis + MiniProg | [`statik`] |
//! | repository of documented-bug programs | [`suite`] |
//! | prepared experiments | [`experiment`] |
//! | telemetry: metrics, profiles, run logs | [`telemetry`] |
//! | flight recorder: durable journal, resume, status, chrome-trace | [`obs`] |
//! | component registry + declarative tool specs | [`tools`] ([`tools::ToolSpec`], [`tools::ToolConfig`]) |
//!
//! ## Quick taste
//!
//! ```
//! use mtt_core::prelude::*;
//!
//! // Grab a documented-bug program from the repository…
//! let entry = mtt_core::suite::by_name("lost_update").unwrap();
//! // …shake it with noise on a realistic scheduler…
//! let outcome = Execution::new(&entry.program)
//!     .scheduler(Box::new(RandomScheduler::sticky(42, 0.9)))
//!     .noise(Box::new(RandomSleep::new(42, 0.3, 20)))
//!     .run();
//! // …and ask the program's oracle what happened.
//! let verdict = entry.judge(&outcome);
//! println!("bugs manifested: {:?}", verdict.manifested);
//! ```
//!
//! [`quick_check`] bundles the whole toolchain (noise + both race
//! detectors + lock-order analysis + coverage) into a single call for
//! first-contact use; everything it does can be assembled by hand from the
//! re-exported parts.

pub use mtt_causal as causal;
pub use mtt_coverage as coverage;
pub use mtt_deadlock as deadlock;
pub use mtt_experiment as experiment;
pub use mtt_explore as explore;
pub use mtt_gen as gen;
pub use mtt_instrument as instrument;
pub use mtt_noise as noise;
pub use mtt_obs as obs;
pub use mtt_race as race;
pub use mtt_replay as replay;
pub use mtt_runtime as runtime;
pub use mtt_static as statik;
pub use mtt_suite as suite;
pub use mtt_telemetry as telemetry;
pub use mtt_tools as tools;
pub use mtt_trace as trace;

/// The working set most users want in scope.
pub mod prelude {
    pub use mtt_coverage::{ContentionCoverage, CoverageModel, OrderedPairCoverage, SyncCoverage};
    pub use mtt_deadlock::{LockOrderGraph, WaitsForMonitor};
    pub use mtt_explore::{ExploreOptions, Explorer};
    pub use mtt_instrument::{
        shared, CountingSink, Event, EventSink, InstrumentationPlan, Op, VecSink,
    };
    pub use mtt_noise::{CoverageDirected, Mixed, RandomSleep, RandomYield};
    pub use mtt_race::{EraserLockset, VectorClockDetector};
    pub use mtt_replay::{record, DivergencePolicy, PlaybackNoise, PlaybackScheduler};
    pub use mtt_runtime::{
        Execution, FifoScheduler, NoiseMaker, Outcome, PctScheduler, Program, ProgramBuilder,
        RandomScheduler, RoundRobinScheduler, Scheduler, ThreadCtx, ThreadId,
    };
    pub use mtt_trace::{Trace, TraceCollector};
}

use mtt_deadlock::{DeadlockPotential, LockOrderGraph};
use mtt_instrument::shared;
use mtt_noise::Mixed;
use mtt_race::{EraserLockset, RaceWarning, VectorClockDetector};
use mtt_runtime::{Execution, Outcome, Program, RandomScheduler};

/// Everything [`quick_check`] found across its runs.
#[derive(Debug, Default)]
pub struct QuickCheckReport {
    /// Runs performed.
    pub runs: u64,
    /// Outcomes that ended badly (deadlock, hang, panic, failed assertion).
    pub failures: Vec<Outcome>,
    /// Lockset race warnings (deduplicated per variable).
    pub eraser_warnings: Vec<RaceWarning>,
    /// Happens-before race warnings.
    pub vc_warnings: Vec<RaceWarning>,
    /// Lock-order (GoodLock) deadlock potentials.
    pub deadlock_potentials: Vec<DeadlockPotential>,
}

impl QuickCheckReport {
    /// Anything suspicious at all?
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
            && self.eraser_warnings.is_empty()
            && self.vc_warnings.is_empty()
            && self.deadlock_potentials.is_empty()
    }

    /// Human-oriented multi-line summary.
    pub fn render(&self, program: &Program) -> String {
        let table = program.var_table();
        let mut out = format!(
            "quick-check of `{}`: {} runs, {} bad outcomes\n",
            program.name(),
            self.runs,
            self.failures.len()
        );
        for o in self.failures.iter().take(5) {
            out.push_str(&format!("  failure: {}\n", o.summary()));
        }
        for w in &self.eraser_warnings {
            out.push_str(&format!("  {}\n", w.render(table.name(w.var))));
        }
        for w in &self.vc_warnings {
            out.push_str(&format!("  {}\n", w.render(table.name(w.var))));
        }
        for d in &self.deadlock_potentials {
            out.push_str(&format!(
                "  [lock-order] potential deadlock cycle: {:?} (threads {:?})\n",
                d.cycle, d.threads
            ));
        }
        if self.is_clean() {
            out.push_str("  nothing suspicious found\n");
        }
        out
    }
}

/// Run the whole toolchain against `program` for `runs` seeded executions:
/// sticky-random scheduling with mixed noise, both race detectors and the
/// lock-order analyzer attached online. The one-call "is this program
/// suspicious?" entry point.
pub fn quick_check(program: &Program, runs: u64, base_seed: u64) -> QuickCheckReport {
    let mut report = QuickCheckReport::default();
    let (eraser_sink, eraser) = shared(EraserLockset::new());
    let (vc_sink, vc) = shared(VectorClockDetector::new());
    let (graph_sink, graph) = shared(LockOrderGraph::new());
    // The detectors accumulate across runs; Shared lets us re-attach the
    // same instance each time.
    for r in 0..runs {
        let seed = base_seed + r;
        let outcome = Execution::new(program)
            .scheduler(Box::new(RandomScheduler::sticky(seed, 0.85)))
            .noise(Box::new(Mixed::new(seed, 0.15, 15)))
            .sink(Box::new(eraser_sink.clone()))
            .sink(Box::new(vc_sink.clone()))
            .sink(Box::new(graph_sink.clone()))
            .max_steps(100_000)
            .run();
        report.runs += 1;
        if !outcome.ok() {
            report.failures.push(outcome);
        }
    }
    report.eraser_warnings = eraser.lock().expect("eraser poisoned").warnings.clone();
    report.vc_warnings = vc.lock().expect("vc poisoned").warnings.clone();
    report.deadlock_potentials = graph.lock().expect("graph poisoned").potentials();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtt_runtime::ProgramBuilder;

    #[test]
    fn quick_check_flags_the_racy_program() {
        let entry = mtt_suite::by_name("lost_update").unwrap();
        let report = quick_check(&entry.program, 12, 3);
        assert!(!report.is_clean());
        assert!(
            !report.eraser_warnings.is_empty() || !report.vc_warnings.is_empty(),
            "some detector must flag x"
        );
        let rendered = report.render(&entry.program);
        assert!(rendered.contains("lost_update"));
    }

    #[test]
    fn quick_check_flags_latent_deadlocks_without_deadlocking() {
        let entry = mtt_suite::by_name("ab_ba").unwrap();
        let report = quick_check(&entry.program, 20, 5);
        // Whether or not a run actually deadlocked, the lock-order graph
        // must expose the potential.
        assert!(
            !report.deadlock_potentials.is_empty() || !report.failures.is_empty(),
            "AB-BA must be visible to quick_check"
        );
    }

    #[test]
    fn quick_check_is_quiet_on_clean_code() {
        let mut b = ProgramBuilder::new("clean");
        let x = b.var("x", 0);
        let l = b.lock("l");
        b.entry(move |ctx| {
            let t = ctx.spawn("t", move |ctx| {
                ctx.with_lock(l, |ctx| {
                    let v = ctx.read(x);
                    ctx.write(x, v + 1);
                });
            });
            ctx.with_lock(l, |ctx| {
                let v = ctx.read(x);
                ctx.write(x, v + 1);
            });
            ctx.join(t);
        });
        let p = b.build();
        let report = quick_check(&p, 15, 9);
        assert!(report.is_clean(), "{}", report.render(&p));
    }
}
