//! # mtt-deadlock — deadlock detection
//!
//! §2.2 of the paper: "Tools exist which can examine traces for evidence of
//! deadlock potentials. Specifically they look for cycles in lock graphs"
//! (citing Harrow's Visual Threads and Havelund's own GoodLock/JPaX work).
//! This crate provides both flavours:
//!
//! * [`LockOrderGraph`] — the GoodLock-style analysis: build the
//!   lock-acquisition-order graph (edge `a → b` when some thread acquires
//!   `b` while holding `a`) and report cycles as *deadlock potentials*,
//!   even in executions that completed without deadlocking. Two classic
//!   refinements reduce false alarms: cycles whose edges all come from a
//!   single thread are suppressed (a thread cannot deadlock with itself),
//!   and cycles protected by a common *gate lock* held around every
//!   acquisition are suppressed (the gate serializes the cycle).
//! * [`WaitsForMonitor`] — an online watchdog over `LockRequest`/
//!   `LockAcquire`/`LockRelease` events that reports the waits-for cycle at
//!   the moment an actual deadlock closes. (The model runtime also detects
//!   actual deadlock natively; the monitor exists so that *trace* consumers
//!   get the same signal offline.)
//!
//! Both are [`mtt_instrument::EventSink`]s: attach them to a live execution
//! or feed them a stored [`mtt_trace::Trace`].

use mtt_instrument::{Event, EventSink, Loc, LockId, Op, ThreadId};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One deadlock-potential warning: a cycle in the lock-order graph.
#[derive(Clone, Debug)]
pub struct DeadlockPotential {
    /// The locks forming the cycle, in order (`cycle[i]` is held while
    /// acquiring `cycle[(i+1) % n]`).
    pub cycle: Vec<LockId>,
    /// Threads contributing edges to the cycle.
    pub threads: Vec<ThreadId>,
    /// A sample acquisition location per edge.
    pub edge_locs: Vec<Loc>,
}

/// Evidence for one lock-order edge `from → to`.
#[derive(Clone, Debug, Default)]
struct EdgeInfo {
    /// Threads that performed this nested acquisition.
    threads: BTreeSet<ThreadId>,
    /// Locks held (besides `from`) at *every* instance of the edge — gate
    /// candidates. `None` until the first instance.
    gates: Option<BTreeSet<LockId>>,
    /// Sample location of the inner acquisition.
    loc: Option<Loc>,
}

/// GoodLock-style lock-order-graph analyzer.
#[derive(Debug, Default)]
pub struct LockOrderGraph {
    /// Currently held locks per thread (reconstructed from events so the
    /// analyzer also works on traces that lack `locks_held` context).
    held: HashMap<ThreadId, Vec<LockId>>,
    edges: BTreeMap<(LockId, LockId), EdgeInfo>,
    /// Maximum cycle length searched (guards pathological graphs).
    pub max_cycle_len: usize,
}

impl LockOrderGraph {
    /// Fresh analyzer.
    pub fn new() -> Self {
        LockOrderGraph {
            max_cycle_len: 6,
            ..Default::default()
        }
    }

    /// Number of distinct lock-order edges observed.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Is the edge `from → to` present?
    pub fn has_edge(&self, from: LockId, to: LockId) -> bool {
        self.edges.contains_key(&(from, to))
    }

    /// Enumerate deadlock potentials: simple cycles in the lock-order graph
    /// that (a) involve at least two distinct threads and (b) have no
    /// common gate lock across all edges.
    pub fn potentials(&self) -> Vec<DeadlockPotential> {
        let locks: BTreeSet<LockId> = self.edges.keys().flat_map(|(a, b)| [*a, *b]).collect();
        let succ: BTreeMap<LockId, Vec<LockId>> = {
            let mut m: BTreeMap<LockId, Vec<LockId>> = BTreeMap::new();
            for (a, b) in self.edges.keys() {
                m.entry(*a).or_default().push(*b);
            }
            m
        };

        let mut found: Vec<Vec<LockId>> = Vec::new();
        // DFS from each lock; only keep cycles whose minimum element is the
        // start (canonical form — dedups rotations).
        for &start in &locks {
            let mut path = vec![start];
            self.dfs_cycles(start, start, &succ, &mut path, &mut found);
        }

        found
            .into_iter()
            .filter_map(|cycle| self.qualify(&cycle))
            .collect()
    }

    fn dfs_cycles(
        &self,
        start: LockId,
        cur: LockId,
        succ: &BTreeMap<LockId, Vec<LockId>>,
        path: &mut Vec<LockId>,
        found: &mut Vec<Vec<LockId>>,
    ) {
        if path.len() > self.max_cycle_len {
            return;
        }
        if let Some(nexts) = succ.get(&cur) {
            for &n in nexts {
                if n == start && path.len() >= 2 {
                    found.push(path.clone());
                } else if n > start && !path.contains(&n) {
                    // `n > start` keeps the smallest lock first: canonical.
                    path.push(n);
                    self.dfs_cycles(start, n, succ, path, found);
                    path.pop();
                }
            }
        }
    }

    /// Apply the single-thread and gate-lock suppressions; build the report.
    fn qualify(&self, cycle: &[LockId]) -> Option<DeadlockPotential> {
        let n = cycle.len();
        let mut threads: BTreeSet<ThreadId> = BTreeSet::new();
        let mut common_gates: Option<BTreeSet<LockId>> = None;
        let mut edge_locs = Vec::with_capacity(n);

        for i in 0..n {
            let e = self.edges.get(&(cycle[i], cycle[(i + 1) % n]))?;
            threads.extend(e.threads.iter().copied());
            edge_locs.push(e.loc.unwrap_or(Loc::SYNTHETIC));
            let gates = e.gates.clone().unwrap_or_default();
            common_gates = Some(match common_gates {
                None => gates,
                Some(mut acc) => {
                    acc.retain(|l| gates.contains(l));
                    acc
                }
            });
        }

        // Single-thread suppression: if only one thread ever takes these
        // edges (and every edge is that thread's), no inter-thread deadlock.
        if threads.len() < 2 {
            return None;
        }
        // Gate-lock suppression.
        if common_gates.as_ref().is_some_and(|g| !g.is_empty()) {
            return None;
        }
        Some(DeadlockPotential {
            cycle: cycle.to_vec(),
            threads: threads.into_iter().collect(),
            edge_locs,
        })
    }
}

impl EventSink for LockOrderGraph {
    fn on_event(&mut self, ev: &Event) {
        match ev.op {
            Op::LockAcquire { lock } => {
                let held = self.held.entry(ev.thread).or_default();
                let holding = held.clone();
                held.push(lock);
                for (i, &h) in holding.iter().enumerate() {
                    let gate_set: BTreeSet<LockId> = holding[..i].iter().copied().collect();
                    let e = self.edges.entry((h, lock)).or_default();
                    e.threads.insert(ev.thread);
                    e.loc.get_or_insert(ev.loc);
                    e.gates = Some(match e.gates.take() {
                        None => gate_set,
                        Some(mut acc) => {
                            acc.retain(|l| gate_set.contains(l));
                            acc
                        }
                    });
                }
            }
            Op::LockRelease { lock } => {
                if let Some(held) = self.held.get_mut(&ev.thread) {
                    held.retain(|l| *l != lock);
                }
            }
            // `wait` releases the lock, `wake` re-acquires it — but a wake
            // inside a wait re-establishes only the waited lock, creating
            // no new order edges; treat as release/acquire of that lock.
            Op::CondWait { lock, .. } => {
                if let Some(held) = self.held.get_mut(&ev.thread) {
                    held.retain(|l| *l != lock);
                }
            }
            Op::CondWake { lock, .. } => {
                self.held.entry(ev.thread).or_default().push(lock);
            }
            _ => {}
        }
    }
}

/// An actual-deadlock cycle observed by the online monitor.
#[derive(Clone, Debug)]
pub struct DeadlockOccurrence {
    /// Threads in the waits-for cycle.
    pub threads: Vec<ThreadId>,
    /// The lock each thread in the cycle is waiting for.
    pub waiting_for: Vec<LockId>,
}

/// Online waits-for monitor: reports the cycle the moment every thread in
/// it is waiting for a lock held by the next.
#[derive(Debug, Default)]
pub struct WaitsForMonitor {
    owner: HashMap<LockId, ThreadId>,
    waiting: HashMap<ThreadId, LockId>,
    /// Observed actual deadlocks (normally at most one per execution).
    pub occurrences: Vec<DeadlockOccurrence>,
}

impl WaitsForMonitor {
    /// Fresh monitor.
    pub fn new() -> Self {
        Self::default()
    }

    fn check_cycle(&mut self, start: ThreadId) {
        // Follow thread -> wanted lock -> owner chains.
        let mut path = vec![start];
        let mut cur = start;
        loop {
            let lock = match self.waiting.get(&cur) {
                Some(l) => *l,
                None => return,
            };
            let owner = match self.owner.get(&lock) {
                Some(o) => *o,
                None => return,
            };
            if owner == start {
                // Cycle closed.
                let waiting_for: Vec<LockId> = path.iter().map(|t| self.waiting[t]).collect();
                self.occurrences.push(DeadlockOccurrence {
                    threads: path,
                    waiting_for,
                });
                return;
            }
            if path.contains(&owner) {
                return; // cycle not through start; will be caught from there
            }
            path.push(owner);
            cur = owner;
        }
    }
}

impl EventSink for WaitsForMonitor {
    fn on_event(&mut self, ev: &Event) {
        match ev.op {
            Op::LockRequest { lock } => {
                self.waiting.insert(ev.thread, lock);
                self.check_cycle(ev.thread);
            }
            Op::LockAcquire { lock } => {
                self.waiting.remove(&ev.thread);
                self.owner.insert(lock, ev.thread);
            }
            Op::LockRelease { lock } => {
                self.owner.remove(&lock);
            }
            Op::CondWait { lock, .. } => {
                self.owner.remove(&lock);
            }
            Op::CondWake { lock, .. } => {
                self.owner.insert(lock, ev.thread);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ev(seq: u64, thread: u32, op: Op) -> Event {
        Event {
            seq,
            time: seq,
            thread: ThreadId(thread),
            loc: Loc::new("d", seq as u32 + 1),
            op,
            locks_held: Arc::from(Vec::<LockId>::new()),
        }
    }

    fn acq(seq: u64, t: u32, l: u32) -> Event {
        ev(seq, t, Op::LockAcquire { lock: LockId(l) })
    }

    fn rel(seq: u64, t: u32, l: u32) -> Event {
        ev(seq, t, Op::LockRelease { lock: LockId(l) })
    }

    fn req(seq: u64, t: u32, l: u32) -> Event {
        ev(seq, t, Op::LockRequest { lock: LockId(l) })
    }

    #[test]
    fn ab_ba_potential_found_even_without_actual_deadlock() {
        let mut g = LockOrderGraph::new();
        // t0: a then b (completed fine).
        g.on_event(&acq(0, 0, 0));
        g.on_event(&acq(1, 0, 1));
        g.on_event(&rel(2, 0, 1));
        g.on_event(&rel(3, 0, 0));
        // Later t1: b then a (also completed fine).
        g.on_event(&acq(4, 1, 1));
        g.on_event(&acq(5, 1, 0));
        g.on_event(&rel(6, 1, 0));
        g.on_event(&rel(7, 1, 1));
        let pots = g.potentials();
        assert_eq!(pots.len(), 1, "one AB-BA cycle expected");
        assert_eq!(pots[0].cycle.len(), 2);
        assert_eq!(pots[0].threads.len(), 2);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(LockId(0), LockId(1)));
        assert!(g.has_edge(LockId(1), LockId(0)));
    }

    #[test]
    fn consistent_order_is_clean() {
        let mut g = LockOrderGraph::new();
        for t in 0..3u32 {
            let base = u64::from(t) * 4;
            g.on_event(&acq(base, t, 0));
            g.on_event(&acq(base + 1, t, 1));
            g.on_event(&rel(base + 2, t, 1));
            g.on_event(&rel(base + 3, t, 0));
        }
        assert!(g.potentials().is_empty());
    }

    #[test]
    fn single_thread_cycle_is_suppressed() {
        let mut g = LockOrderGraph::new();
        // One thread takes a→b and also b→a (sequentially; cannot deadlock).
        g.on_event(&acq(0, 0, 0));
        g.on_event(&acq(1, 0, 1));
        g.on_event(&rel(2, 0, 1));
        g.on_event(&rel(3, 0, 0));
        g.on_event(&acq(4, 0, 1));
        g.on_event(&acq(5, 0, 0));
        g.on_event(&rel(6, 0, 0));
        g.on_event(&rel(7, 0, 1));
        assert_eq!(g.edge_count(), 2);
        assert!(
            g.potentials().is_empty(),
            "single-thread cycles cannot deadlock"
        );
    }

    #[test]
    fn gate_lock_suppresses_cycle() {
        let mut g = LockOrderGraph::new();
        // Both threads take the gate g(2) around their opposite-order pairs.
        for (t, (first, second)) in [(0u32, (0u32, 1u32)), (1, (1, 0))] {
            let base = u64::from(t) * 6 + 100;
            g.on_event(&acq(base, t, 2)); // gate
            g.on_event(&acq(base + 1, t, first));
            g.on_event(&acq(base + 2, t, second));
            g.on_event(&rel(base + 3, t, second));
            g.on_event(&rel(base + 4, t, first));
            g.on_event(&rel(base + 5, t, 2));
        }
        assert!(
            g.potentials().is_empty(),
            "common gate lock serializes the cycle"
        );
    }

    #[test]
    fn three_way_cycle_detected() {
        let mut g = LockOrderGraph::new();
        // t0: a→b, t1: b→c, t2: c→a.
        let pairs = [(0u32, 0u32, 1u32), (1, 1, 2), (2, 2, 0)];
        for (t, x, y) in pairs {
            let base = u64::from(t) * 4 + 10;
            g.on_event(&acq(base, t, x));
            g.on_event(&acq(base + 1, t, y));
            g.on_event(&rel(base + 2, t, y));
            g.on_event(&rel(base + 3, t, x));
        }
        let pots = g.potentials();
        assert_eq!(pots.len(), 1);
        assert_eq!(pots[0].cycle.len(), 3);
        assert_eq!(pots[0].threads.len(), 3);
    }

    #[test]
    fn waits_for_monitor_catches_closing_cycle() {
        let mut m = WaitsForMonitor::new();
        m.on_event(&acq(0, 0, 0)); // t0 holds a
        m.on_event(&acq(1, 1, 1)); // t1 holds b
        m.on_event(&req(2, 0, 1)); // t0 wants b — no cycle yet
        assert!(m.occurrences.is_empty());
        m.on_event(&req(3, 1, 0)); // t1 wants a — cycle closes
        assert_eq!(m.occurrences.len(), 1);
        let occ = &m.occurrences[0];
        assert_eq!(occ.threads.len(), 2);
        assert!(occ.threads.contains(&ThreadId(0)));
        assert!(occ.threads.contains(&ThreadId(1)));
    }

    #[test]
    fn waits_for_monitor_ignores_resolved_waits() {
        let mut m = WaitsForMonitor::new();
        m.on_event(&acq(0, 0, 0));
        m.on_event(&req(1, 1, 0)); // t1 waits for t0 — no cycle
        m.on_event(&rel(2, 0, 0));
        m.on_event(&acq(3, 1, 0)); // wait resolved
        m.on_event(&rel(4, 1, 0));
        assert!(m.occurrences.is_empty());
    }

    #[test]
    fn three_thread_waits_for_cycle() {
        let mut m = WaitsForMonitor::new();
        m.on_event(&acq(0, 0, 0));
        m.on_event(&acq(1, 1, 1));
        m.on_event(&acq(2, 2, 2));
        m.on_event(&req(3, 0, 1));
        m.on_event(&req(4, 1, 2));
        assert!(m.occurrences.is_empty());
        m.on_event(&req(5, 2, 0));
        assert_eq!(m.occurrences.len(), 1);
        assert_eq!(m.occurrences[0].threads.len(), 3);
    }

    #[test]
    fn nested_gate_tracking_distinguishes_outer_locks() {
        let mut g = LockOrderGraph::new();
        // t0 takes a→b with gate; t1 takes b→a WITHOUT gate: the gate is
        // not common, so the cycle must be reported.
        g.on_event(&acq(0, 0, 2));
        g.on_event(&acq(1, 0, 0));
        g.on_event(&acq(2, 0, 1));
        g.on_event(&rel(3, 0, 1));
        g.on_event(&rel(4, 0, 0));
        g.on_event(&rel(5, 0, 2));
        g.on_event(&acq(6, 1, 1));
        g.on_event(&acq(7, 1, 0));
        g.on_event(&rel(8, 1, 0));
        g.on_event(&rel(9, 1, 1));
        assert_eq!(g.potentials().len(), 1);
    }
}
