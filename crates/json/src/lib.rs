//! Dependency-free JSON support for the mtt workspace.
//!
//! The build environment has no access to crates.io, so serde is not
//! available; this crate supplies what the framework actually needs: a
//! [`Json`] value model, a strict parser, a compact printer matching
//! serde_json's output conventions (externally tagged enums, no
//! whitespace), and [`ToJson`] / [`FromJson`] traits with `macro_rules!`
//! implementors ([`json_struct!`], [`json_enum!`], [`json_newtype!`]) that
//! stand in for `#[derive(Serialize, Deserialize)]` on the workspace's
//! simple data types. Types with field attributes (defaults, skips)
//! hand-write their impls.

use std::collections::BTreeMap;
use std::fmt;

// ---------------------------------------------------------------------
// Value model
// ---------------------------------------------------------------------

/// A JSON document. Object keys keep insertion order so output is stable
/// and matches declaration order of the source struct.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Signed integers (also produced by the parser for negative numbers).
    Int(i64),
    /// Unsigned integers (parser output for non-negative integers).
    UInt(u64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload widened to `i64`, if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(v) => Some(v),
            Json::UInt(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// Numeric payload narrowed to `u64`, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(v) => Some(v),
            Json::Int(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render compactly (no whitespace), serde_json style.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Stream the compact rendering into an `io::Write`, propagating I/O
    /// errors instead of panicking — the variant file and pipe writers must
    /// use (a full disk is an error to report, not a crash).
    pub fn write_to<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        match self {
            Json::Null => w.write_all(b"null"),
            Json::Bool(b) => w.write_all(if *b { b"true" } else { b"false" }),
            Json::Int(v) => write!(w, "{v}"),
            Json::UInt(v) => write!(w, "{v}"),
            Json::Float(v) => {
                let mut s = String::new();
                write_float(*v, &mut s);
                w.write_all(s.as_bytes())
            }
            Json::Str(s) => {
                let mut out = String::new();
                write_escaped(s, &mut out);
                w.write_all(out.as_bytes())
            }
            Json::Arr(items) => {
                w.write_all(b"[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        w.write_all(b",")?;
                    }
                    item.write_to(w)?;
                }
                w.write_all(b"]")
            }
            Json::Obj(fields) => {
                w.write_all(b"{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        w.write_all(b",")?;
                    }
                    let mut key = String::new();
                    write_escaped(k, &mut key);
                    w.write_all(key.as_bytes())?;
                    w.write_all(b":")?;
                    v.write_to(w)?;
                }
                w.write_all(b"}")
            }
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                out.push_str(&v.to_string());
            }
            Json::UInt(v) => {
                out.push_str(&v.to_string());
            }
            Json::Float(v) => write_float(*v, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

fn write_float(v: f64, out: &mut String) {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            // serde_json prints integral floats with a trailing ".0".
            out.push_str(&format!("{v:.1}"));
        } else {
            out.push_str(&format!("{v}"));
        }
    } else {
        // JSON has no NaN/inf; serde_json errors, we degrade to null.
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Parse or conversion failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
    /// Byte offset for parser errors; `None` for conversion errors.
    pos: Option<usize>,
}

impl JsonError {
    /// Conversion-level error with a free-form message.
    pub fn msg(m: impl Into<String>) -> Self {
        JsonError {
            msg: m.into(),
            pos: None,
        }
    }

    /// Shorthand for "expected X" conversion failures.
    pub fn expected(what: &str, got: &Json) -> Self {
        let kind = match got {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) | Json::UInt(_) => "integer",
            Json::Float(_) => "float",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        };
        JsonError::msg(format!("expected {what}, found {kind}"))
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(pos) => write!(f, "{} at byte {}", self.msg, pos),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for JsonError {}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            pos: Some(self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: must be followed by \uXXXX low.
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the byte stream.
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or_else(|| self.err("invalid UTF-8"))?;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7F => Some(1),
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Conversion traits
// ---------------------------------------------------------------------

/// Convert a value into its [`Json`] representation.
pub trait ToJson {
    fn to_json(&self) -> Json;
}

/// Reconstruct a value from a [`Json`] representation.
pub trait FromJson: Sized {
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Types usable as JSON object keys (JSON keys are always strings).
pub trait JsonKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(key: &str) -> Result<Self, JsonError>;
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().dump()
}

/// Serialize `value` to compact JSON bytes.
pub fn to_vec<T: ToJson + ?Sized>(value: &T) -> Vec<u8> {
    to_string(value).into_bytes()
}

/// Serialize `value` compactly into an `io::Write`, propagating I/O errors.
pub fn to_writer<T: ToJson + ?Sized, W: std::io::Write>(
    value: &T,
    w: &mut W,
) -> std::io::Result<()> {
    value.to_json().write_to(w)
}

/// Parse `text` and convert to `T`.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(text)?)
}

/// Parse UTF-8 `bytes` and convert to `T`.
pub fn from_slice<T: FromJson>(bytes: &[u8]) -> Result<T, JsonError> {
    let text = std::str::from_utf8(bytes).map_err(|_| JsonError::msg("invalid UTF-8"))?;
    from_str(text)
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json { Json::UInt(*self as u64) }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let n = v.as_u64().ok_or_else(|| JsonError::expected("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| JsonError::msg("integer out of range"))
            }
        }
        impl JsonKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn from_key(key: &str) -> Result<Self, JsonError> {
                key.parse().map_err(|_| JsonError::msg("invalid integer key"))
            }
        }
    )*};
}

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json { Json::Int(*self as i64) }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let n = v.as_i64().ok_or_else(|| JsonError::expected("integer", v))?;
                <$t>::try_from(n).map_err(|_| JsonError::msg("integer out of range"))
            }
        }
    )*};
}

impl_json_uint!(u8, u16, u32, u64, usize);
impl_json_int!(i8, i16, i32, i64, isize);

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Bool(b) => Ok(*b),
            _ => Err(JsonError::expected("bool", v)),
        }
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match *v {
            Json::Float(f) => Ok(f),
            Json::Int(i) => Ok(i as f64),
            Json::UInt(u) => Ok(u as f64),
            _ => Err(JsonError::expected("number", v)),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::expected("string", v))
    }
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, JsonError> {
        Ok(key.to_string())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_arr()
            .ok_or_else(|| JsonError::expected("array", v))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_arr() {
            Some([a, b]) => Ok((A::from_json(a)?, B::from_json(b)?)),
            _ => Err(JsonError::expected("2-element array", v)),
        }
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_arr() {
            Some([a, b, c]) => Ok((A::from_json(a)?, B::from_json(b)?, C::from_json(c)?)),
            _ => Err(JsonError::expected("3-element array", v)),
        }
    }
}

impl<K: JsonKey + Ord, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_json()))
                .collect(),
        )
    }
}

impl<K: JsonKey + Ord, V: FromJson> FromJson for BTreeMap<K, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_json(v)?)))
                .collect(),
            _ => Err(JsonError::expected("object", v)),
        }
    }
}

impl<T: ToJson> ToJson for std::sync::Arc<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: FromJson> FromJson for std::sync::Arc<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        T::from_json(v).map(std::sync::Arc::new)
    }
}

impl<T: ToJson> ToJson for std::sync::Arc<[T]> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for std::sync::Arc<[T]> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Vec::<T>::from_json(v).map(Into::into)
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------
// Derive-replacement macros
// ---------------------------------------------------------------------

/// Implement [`ToJson`] + [`FromJson`] for a plain struct: every field is
/// emitted under its own name, in declaration order, and required on input.
#[macro_export]
macro_rules! json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $((stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field))),+
                ])
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> ::std::result::Result<Self, $crate::JsonError> {
                ::std::result::Result::Ok($ty {
                    $($field: $crate::FromJson::from_json(v.get(stringify!($field)).ok_or_else(
                        || $crate::JsonError::msg(concat!(
                            "missing field `", stringify!($field), "` in ", stringify!($ty)
                        ))
                    )?)?),+
                })
            }
        }
    };
}

/// Implement [`ToJson`] + [`FromJson`] for a tuple struct with one field
/// (serde's "newtype" transparency: serialized as the inner value).
#[macro_export]
macro_rules! json_newtype {
    ($ty:ident) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::ToJson::to_json(&self.0)
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> ::std::result::Result<Self, $crate::JsonError> {
                ::std::result::Result::Ok($ty($crate::FromJson::from_json(v)?))
            }
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __json_enum_ser_arm {
    ($variant:ident) => {
        $crate::Json::Str(stringify!($variant).to_string())
    };
    ($variant:ident { $($f:ident),* }) => {
        $crate::Json::Obj(vec![(
            stringify!($variant).to_string(),
            $crate::Json::Obj(vec![
                $((stringify!($f).to_string(), $crate::ToJson::to_json($f))),*
            ]),
        )])
    };
    ($variant:ident ( $inner:ident )) => {
        $crate::Json::Obj(vec![(
            stringify!($variant).to_string(),
            $crate::ToJson::to_json($inner),
        )])
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __json_enum_try {
    ($v:expr, $ty:ident, $variant:ident) => {
        match $v {
            $crate::Json::Str(s) if s == stringify!($variant) => Some($ty::$variant),
            _ => None,
        }
    };
    ($v:expr, $ty:ident, $variant:ident { $($f:ident),* }) => {
        match $v {
            $crate::Json::Obj(o) if o.len() == 1 && o[0].0 == stringify!($variant) => {
                #[allow(unused_variables)]
                let body = &o[0].1;
                (|| {
                    Some($ty::$variant {
                        $($f: $crate::FromJson::from_json(body.get(stringify!($f))?).ok()?),*
                    })
                })()
            }
            _ => None,
        }
    };
    ($v:expr, $ty:ident, $variant:ident ( $inner:ident )) => {
        match $v {
            $crate::Json::Obj(o) if o.len() == 1 && o[0].0 == stringify!($variant) => {
                $crate::FromJson::from_json(&o[0].1).ok().map($ty::$variant)
            }
            _ => None,
        }
    };
}

/// Implement [`ToJson`] + [`FromJson`] for an enum in serde's externally
/// tagged form. Unit variants serialize as `"Name"`, struct variants as
/// `{"Name":{...fields...}}`, and newtype variants (written `Name(binder)`)
/// as `{"Name":<inner>}`.
#[macro_export]
macro_rules! json_enum {
    ($ty:ident { $($variant:ident $( { $($f:ident),* $(,)? } )? $( ( $inner:ident ) )?),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                match self {
                    $(
                        $ty::$variant $( { $($f),* } )? $( ($inner) )? =>
                            $crate::__json_enum_ser_arm!($variant $( { $($f),* } )? $( ($inner) )?),
                    )+
                }
            }
        }
        impl $crate::FromJson for $ty {
            fn from_json(v: &$crate::Json) -> ::std::result::Result<Self, $crate::JsonError> {
                $(
                    if let Some(out) = $crate::__json_enum_try!(v, $ty, $variant $( { $($f),* } )? $( ($inner) )?) {
                        return ::std::result::Result::Ok(out);
                    }
                )+
                ::std::result::Result::Err($crate::JsonError::msg(concat!(
                    "unrecognized ", stringify!($ty), " variant"
                )))
            }
        }
    };
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_to_matches_dump_and_propagates_errors() {
        let v = Json::Obj(vec![
            ("s".into(), Json::Str("a\"b".into())),
            ("n".into(), Json::Arr(vec![Json::UInt(1), Json::Null])),
            ("f".into(), Json::Float(1.5)),
        ]);
        let mut buf = Vec::new();
        v.write_to(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), v.dump());

        struct Broken;
        impl std::io::Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("sink broke"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        assert!(v.write_to(&mut Broken).is_err());
        assert!(to_writer(&42u32, &mut Broken).is_err());
        let mut ok = Vec::new();
        to_writer(&vec![1u8, 2], &mut ok).unwrap();
        assert_eq!(ok, b"[1,2]");
    }

    #[test]
    fn scalars_roundtrip() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.dump(), text);
        }
    }

    #[test]
    fn containers_roundtrip_compactly() {
        let text = r#"{"a":1,"b":[1,2,{"c":"d"}],"e":null}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.dump(), text);
    }

    #[test]
    fn string_escapes() {
        let v = Json::Str("a\"b\\c\nd\u{1}".to_string());
        let dumped = v.dump();
        assert_eq!(dumped, r#""a\"b\\c\nd\u0001""#);
        assert_eq!(Json::parse(&dumped).unwrap(), v);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            Json::parse(r#""A😀""#).unwrap(),
            Json::Str("A\u{1F600}".to_string())
        );
    }

    #[test]
    fn errors_carry_position() {
        let e = Json::parse("{\"a\": }").unwrap_err();
        assert!(e.to_string().contains("byte"));
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("1 2").is_err());
    }

    #[test]
    fn integral_floats_keep_point() {
        assert_eq!(Json::Float(1.0).dump(), "1.0");
        assert_eq!(Json::Float(2.25).dump(), "2.25");
    }

    #[derive(Clone, Debug, PartialEq)]
    struct Point {
        x: u32,
        y: i64,
        tag: String,
    }
    json_struct!(Point { x, y, tag });

    #[derive(Clone, Debug, PartialEq)]
    struct Wrapper(u32);
    json_newtype!(Wrapper);

    #[derive(Clone, Debug, PartialEq)]
    enum Shape {
        Dot,
        Line { from: u32, to: u32 },
        Blob(Point),
    }
    json_enum!(Shape {
        Dot,
        Line { from, to },
        Blob(inner),
    });

    #[test]
    fn struct_macro_roundtrips() {
        let p = Point {
            x: 4,
            y: -2,
            tag: "t".into(),
        };
        let s = to_string(&p);
        assert_eq!(s, r#"{"x":4,"y":-2,"tag":"t"}"#);
        assert_eq!(from_str::<Point>(&s).unwrap(), p);
        assert!(from_str::<Point>(r#"{"x":4}"#).is_err());
    }

    #[test]
    fn newtype_macro_is_transparent() {
        assert_eq!(to_string(&Wrapper(9)), "9");
        assert_eq!(from_str::<Wrapper>("9").unwrap(), Wrapper(9));
    }

    #[test]
    fn enum_macro_matches_serde_shapes() {
        assert_eq!(to_string(&Shape::Dot), r#""Dot""#);
        let line = Shape::Line { from: 1, to: 2 };
        assert_eq!(to_string(&line), r#"{"Line":{"from":1,"to":2}}"#);
        let blob = Shape::Blob(Point {
            x: 0,
            y: 0,
            tag: String::new(),
        });
        assert_eq!(to_string(&blob), r#"{"Blob":{"x":0,"y":0,"tag":""}}"#);
        for shape in [Shape::Dot, line, blob] {
            let s = to_string(&shape);
            assert_eq!(from_str::<Shape>(&s).unwrap(), shape);
        }
    }

    #[test]
    fn maps_tuples_options() {
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), vec![(1u32, true)]);
        let s = to_string(&m);
        assert_eq!(s, r#"{"k":[[1,true]]}"#);
        let back: BTreeMap<String, Vec<(u32, bool)>> = from_str(&s).unwrap();
        assert_eq!(back, m);
        assert_eq!(to_string(&Option::<u32>::None), "null");
        assert_eq!(from_str::<Option<u32>>("7").unwrap(), Some(7));
    }
}
