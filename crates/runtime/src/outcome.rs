//! Execution outcomes: everything a testing tool may want to know about one
//! run of a model program.

use mtt_instrument::{Loc, ThreadId, VarTable};
use mtt_json::{Json, ToJson};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::Duration;

/// Why a blocked thread is blocked, as reported in deadlock diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WaitEdge {
    /// Waiting for a mutex currently owned by `owner`.
    Lock {
        /// Lock name.
        lock: String,
        /// Current owner, if any (a lock abandoned by a finished thread has
        /// an owner that will never release it).
        owner: Option<ThreadId>,
    },
    /// Waiting for a notify on a condition variable.
    Cond {
        /// Condition name.
        cond: String,
    },
    /// Waiting for a semaphore permit.
    Sem {
        /// Semaphore name.
        sem: String,
    },
    /// Waiting at a barrier that never filled.
    Barrier {
        /// Barrier name.
        barrier: String,
    },
    /// Waiting for another thread to finish.
    Join {
        /// The joined thread.
        target: ThreadId,
    },
}

mtt_json::json_enum!(WaitEdge {
    Lock { lock, owner },
    Cond { cond },
    Sem { sem },
    Barrier { barrier },
    Join { target },
});

/// Diagnostic attached to a deadlocked execution.
#[derive(Clone, Debug)]
pub struct DeadlockInfo {
    /// Every blocked thread and what it waits for, at the moment the
    /// runtime found no runnable or sleeping thread.
    pub waiting: Vec<(ThreadId, WaitEdge)>,
    /// Thread ids that form a mutual-wait cycle (empty when the deadlock is
    /// an orphaned wait, e.g. everyone waiting on a condition nobody can
    /// signal).
    pub cycle: Vec<ThreadId>,
}

mtt_json::json_struct!(DeadlockInfo { waiting, cycle });

impl DeadlockInfo {
    /// True when the deadlock is a classic cyclic lock wait.
    pub fn is_cyclic(&self) -> bool {
        !self.cycle.is_empty()
    }
}

/// How an execution ended.
#[derive(Clone, Debug)]
pub enum OutcomeKind {
    /// Every thread ran to completion.
    Completed,
    /// No thread could ever run again.
    Deadlock(DeadlockInfo),
    /// The execution exceeded the configured scheduling-point budget —
    /// the model analogue of a hang / livelock.
    StepLimit,
    /// A model thread panicked in program code (a program bug or misuse of
    /// the model API, e.g. unlocking a lock it does not hold).
    ThreadPanic {
        /// The panicking thread.
        thread: ThreadId,
        /// Rendered panic message.
        message: String,
    },
    /// The execution was stopped early because an assertion failed and the
    /// execution was configured with `stop_on_assert`.
    AssertStop,
}

mtt_json::json_enum!(OutcomeKind {
    Completed,
    Deadlock(info),
    StepLimit,
    ThreadPanic { thread, message },
    AssertStop,
});

impl OutcomeKind {
    /// Short stable tag used in fingerprints and reports.
    pub fn tag(&self) -> &'static str {
        match self {
            OutcomeKind::Completed => "completed",
            OutcomeKind::Deadlock(_) => "deadlock",
            OutcomeKind::StepLimit => "step-limit",
            OutcomeKind::ThreadPanic { .. } => "panic",
            OutcomeKind::AssertStop => "assert-stop",
        }
    }
}

/// One failed executable assertion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AssertFailure {
    /// The thread whose assertion failed.
    pub thread: ThreadId,
    /// The assertion's label.
    pub label: String,
    /// Where the assertion is in the program.
    pub loc: Loc,
}

mtt_json::json_struct!(AssertFailure { thread, label, loc });

/// Cheap counters describing the execution.
#[derive(Clone, Debug, Default)]
pub struct ExecStats {
    /// Events emitted (before plan filtering).
    pub events: u64,
    /// Scheduling points (== scheduler `pick` calls).
    pub sched_points: u64,
    /// Scheduling points at which the token moved to a different thread
    /// than the one that triggered the point.
    pub context_switches: u64,
    /// Threads created, including main.
    pub threads: u32,
    /// Final virtual time.
    pub virtual_time: u64,
    /// Times the scheduler returned a non-runnable thread and the runtime
    /// fell back (replay divergence indicator).
    pub scheduler_faults: u64,
    /// Noise decisions that disturbed the schedule (yields + sleeps).
    pub noise_injections: u64,
    /// Noise decisions that forced a yield (subset of `noise_injections`).
    pub forced_yields: u64,
    /// Spurious condition-variable wakeups actually injected.
    pub spurious_wakeups: u64,
    /// Scheduling point of the first observed failure — a failed assertion
    /// or an abnormal termination (deadlock, panic, assert-stop). `None`
    /// when the run stayed clean; step-limit exhaustion is a budget
    /// artifact, not a failure, and does not set it.
    pub first_failure_step: Option<u64>,
    /// Wall-clock duration of the run. Not serialized: wall time is not a
    /// property of the schedule and would break fingerprint stability.
    pub wall: Duration,
}

impl ToJson for ExecStats {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("events".to_string(), self.events.to_json()),
            ("sched_points".to_string(), self.sched_points.to_json()),
            (
                "context_switches".to_string(),
                self.context_switches.to_json(),
            ),
            ("threads".to_string(), self.threads.to_json()),
            ("virtual_time".to_string(), self.virtual_time.to_json()),
            (
                "scheduler_faults".to_string(),
                self.scheduler_faults.to_json(),
            ),
            (
                "noise_injections".to_string(),
                self.noise_injections.to_json(),
            ),
            ("forced_yields".to_string(), self.forced_yields.to_json()),
            (
                "spurious_wakeups".to_string(),
                self.spurious_wakeups.to_json(),
            ),
            (
                "first_failure_step".to_string(),
                self.first_failure_step.to_json(),
            ),
        ])
    }
}

/// The result of one execution.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Program name.
    pub program: String,
    /// How the execution ended.
    pub kind: OutcomeKind,
    /// Final values of every registered variable, in id order.
    pub final_vars: Vec<i64>,
    /// Variable-name table (for `var`).
    pub var_table: VarTable,
    /// Order in which threads finished (the §4.4 multiout observable).
    pub finish_order: Vec<ThreadId>,
    /// Name of every thread, indexed by id.
    pub thread_names: Vec<String>,
    /// All failed assertions (there can be several when the execution is
    /// not configured to stop at the first).
    pub assert_failures: Vec<AssertFailure>,
    /// Execution statistics.
    pub stats: ExecStats,
}

impl Outcome {
    /// Final value of the variable named `name`.
    pub fn var(&self, name: &str) -> Option<i64> {
        let id = self.var_table.id(name)?;
        self.final_vars.get(id.index()).copied()
    }

    /// Did the execution complete with no assertion failures?
    pub fn ok(&self) -> bool {
        matches!(self.kind, OutcomeKind::Completed) && self.assert_failures.is_empty()
    }

    /// Did the execution deadlock?
    pub fn deadlocked(&self) -> bool {
        matches!(self.kind, OutcomeKind::Deadlock(_))
    }

    /// Did the execution hit the step limit (model hang)?
    pub fn hung(&self) -> bool {
        matches!(self.kind, OutcomeKind::StepLimit)
    }

    /// A stable-within-process fingerprint of the *observable result*:
    /// outcome tag, final variable values, thread finish order, and failed
    /// assertion labels. Two executions with equal fingerprints produced
    /// the same observable behaviour; the §4.4 experiment compares tools by
    /// the distribution of these fingerprints.
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.kind.tag().hash(&mut h);
        self.final_vars.hash(&mut h);
        for t in &self.finish_order {
            t.0.hash(&mut h);
        }
        for a in &self.assert_failures {
            a.label.hash(&mut h);
        }
        h.finish()
    }

    /// Human-oriented one-line summary.
    pub fn summary(&self) -> String {
        let vars: Vec<String> = self
            .var_table
            .iter()
            .map(|(id, name)| format!("{name}={}", self.final_vars[id.index()]))
            .collect();
        format!(
            "[{}] {} vars: {{{}}} finish-order: {:?} asserts-failed: {}",
            self.kind.tag(),
            self.program,
            vars.join(", "),
            self.finish_order.iter().map(|t| t.0).collect::<Vec<_>>(),
            self.assert_failures.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(kind: OutcomeKind, vars: Vec<i64>, order: Vec<u32>) -> Outcome {
        Outcome {
            program: "p".into(),
            kind,
            final_vars: vars,
            var_table: VarTable::new(vec!["x".into(), "y".into()]),
            finish_order: order.into_iter().map(ThreadId).collect(),
            thread_names: vec!["main".into()],
            assert_failures: vec![],
            stats: ExecStats::default(),
        }
    }

    #[test]
    fn var_lookup() {
        let o = outcome(OutcomeKind::Completed, vec![4, 9], vec![0]);
        assert_eq!(o.var("x"), Some(4));
        assert_eq!(o.var("y"), Some(9));
        assert_eq!(o.var("z"), None);
        assert!(o.ok());
    }

    #[test]
    fn fingerprints_distinguish_results() {
        let a = outcome(OutcomeKind::Completed, vec![1, 2], vec![0, 1]);
        let b = outcome(OutcomeKind::Completed, vec![1, 3], vec![0, 1]);
        let c = outcome(OutcomeKind::Completed, vec![1, 2], vec![1, 0]);
        let d = outcome(OutcomeKind::StepLimit, vec![1, 2], vec![0, 1]);
        assert_eq!(a.fingerprint(), a.fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint(), "values differ");
        assert_ne!(a.fingerprint(), c.fingerprint(), "finish order differs");
        assert_ne!(a.fingerprint(), d.fingerprint(), "kind differs");
    }

    #[test]
    fn failed_assert_breaks_ok_and_fingerprint() {
        let mut o = outcome(OutcomeKind::Completed, vec![0, 0], vec![0]);
        let clean = o.fingerprint();
        o.assert_failures.push(AssertFailure {
            thread: ThreadId(0),
            label: "inv".into(),
            loc: Loc::new("p", 1),
        });
        assert!(!o.ok());
        assert_ne!(o.fingerprint(), clean);
    }

    #[test]
    fn deadlock_predicates() {
        let info = DeadlockInfo {
            waiting: vec![(
                ThreadId(1),
                WaitEdge::Lock {
                    lock: "l".into(),
                    owner: Some(ThreadId(2)),
                },
            )],
            cycle: vec![ThreadId(1), ThreadId(2)],
        };
        assert!(info.is_cyclic());
        let o = outcome(OutcomeKind::Deadlock(info), vec![0, 0], vec![]);
        assert!(o.deadlocked());
        assert!(!o.ok());
        assert!(!o.hung());
        assert_eq!(o.kind.tag(), "deadlock");
    }

    #[test]
    fn summary_mentions_key_fields() {
        let o = outcome(OutcomeKind::Completed, vec![7, 8], vec![0]);
        let s = o.summary();
        assert!(s.contains("x=7"));
        assert!(s.contains("completed"));
    }
}
