//! Schedulers: who runs next.
//!
//! The scheduler is the runtime's central extension point. Everything the
//! framework does to interleavings — random testing, noise shaking, replay,
//! systematic exploration — is expressed as a [`Scheduler`] implementation
//! choosing among the runnable threads at each scheduling point.

use mtt_instrument::{Event, ThreadId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A lightweight per-thread status snapshot exposed to schedulers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ThreadStatusView {
    /// Can be scheduled.
    Ready,
    /// Blocked on a lock, condition, semaphore, barrier or join.
    Blocked,
    /// Asleep until some virtual time.
    Sleeping,
    /// Terminated.
    Finished,
}

/// Everything a scheduler may inspect at one scheduling point.
#[derive(Debug)]
pub struct SchedView<'a> {
    /// Threads that can run now, sorted ascending. Never empty when `pick`
    /// is called.
    pub runnable: &'a [ThreadId],
    /// The thread whose operation created this scheduling point, if any
    /// (None only for the initial pick).
    pub prev: Option<ThreadId>,
    /// True when a noise maker asked that `prev` be deprioritized. The
    /// runtime already honours this by preferring others when possible;
    /// schedulers may use it as an extra hint.
    pub forced_yield: bool,
    /// Number of scheduling points so far.
    pub step: u64,
    /// Current virtual time.
    pub time: u64,
    /// Status of every thread created so far, indexed by `ThreadId`.
    pub statuses: &'a [ThreadStatusView],
    /// The event that triggered this point (None for the initial pick).
    pub last_event: Option<&'a Event>,
}

impl SchedView<'_> {
    /// Is `t` among the runnable threads?
    pub fn is_runnable(&self, t: ThreadId) -> bool {
        self.runnable.binary_search(&t).is_ok()
    }
}

/// Chooses the next thread to run at each scheduling point.
///
/// Contract: `pick` must return a member of `view.runnable`. If it does not,
/// the runtime falls back to the first runnable thread and counts a
/// *scheduler fault* in the execution statistics (replay divergence
/// handling relies on this being non-fatal).
pub trait Scheduler: Send {
    /// Choose the next thread.
    fn pick(&mut self, view: &SchedView<'_>) -> ThreadId;

    /// Observe an event (called for every event, before `pick`). Recorders
    /// and coverage-aware schedulers use this.
    fn on_event(&mut self, _ev: &Event) {}

    /// Human-readable name for reports.
    fn name(&self) -> &str {
        "scheduler"
    }
}

/// Uniform (or sticky) random scheduling.
///
/// With `stickiness == 0` every runnable thread is equally likely — the
/// classic randomized-scheduling testing strategy (Stoller 2002, cited as
/// \[32\] in the paper). With high stickiness the scheduler keeps running
/// the previous thread when it can, modeling the long scheduling quanta of
/// a real OS/JVM under which, as the paper observes, "under the simple
/// conditions of unit testing the scheduler is deterministic" and repeated
/// runs explore almost nothing. The noise-maker experiments (E1) use a
/// sticky base scheduler for exactly that reason.
#[derive(Debug)]
pub struct RandomScheduler {
    rng: ChaCha8Rng,
    stickiness: f64,
    seed: u64,
}

impl RandomScheduler {
    /// Uniform random scheduler.
    pub fn new(seed: u64) -> Self {
        Self::sticky(seed, 0.0)
    }

    /// Random scheduler that keeps the previous thread running with
    /// probability `stickiness` whenever it is still runnable.
    ///
    /// # Panics
    /// Panics if `stickiness` is not within `[0, 1]`.
    pub fn sticky(seed: u64, stickiness: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&stickiness),
            "stickiness must be a probability"
        );
        RandomScheduler {
            rng: ChaCha8Rng::seed_from_u64(seed),
            stickiness,
            seed,
        }
    }

    /// The seed this scheduler was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl Scheduler for RandomScheduler {
    fn pick(&mut self, view: &SchedView<'_>) -> ThreadId {
        debug_assert!(!view.runnable.is_empty());
        if view.runnable.len() == 1 {
            return view.runnable[0];
        }
        if !view.forced_yield && self.stickiness > 0.0 {
            if let Some(prev) = view.prev {
                if view.is_runnable(prev) && self.rng.gen_bool(self.stickiness) {
                    return prev;
                }
            }
        }
        // When a yield was forced, prefer the other threads.
        let pool: Vec<ThreadId> = if view.forced_yield && view.runnable.len() > 1 {
            view.runnable
                .iter()
                .copied()
                .filter(|t| Some(*t) != view.prev)
                .collect()
        } else {
            view.runnable.to_vec()
        };
        pool[self.rng.gen_range(0..pool.len())]
    }

    fn name(&self) -> &str {
        "random"
    }
}

/// Fully deterministic scheduler: keep running the previous thread until it
/// blocks or finishes, then take the lowest-id runnable thread.
///
/// This models the paper's observation about unit testing: with this
/// scheduler, "executing the same tests repeatedly does not help" — every
/// run takes the same interleaving.
#[derive(Debug, Default, Clone, Copy)]
pub struct FifoScheduler;

impl Scheduler for FifoScheduler {
    fn pick(&mut self, view: &SchedView<'_>) -> ThreadId {
        if !view.forced_yield {
            if let Some(prev) = view.prev {
                if view.is_runnable(prev) {
                    return prev;
                }
            }
        }
        // Deprioritized or blocked: first other runnable, else prev itself.
        view.runnable
            .iter()
            .copied()
            .find(|t| Some(*t) != view.prev)
            .unwrap_or(view.runnable[0])
    }

    fn name(&self) -> &str {
        "fifo"
    }
}

/// Round-robin: rotate through runnable threads at every point — maximal
/// deterministic context switching.
#[derive(Debug, Default, Clone, Copy)]
pub struct RoundRobinScheduler {
    last: Option<ThreadId>,
}

impl RoundRobinScheduler {
    /// Fresh round-robin scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for RoundRobinScheduler {
    fn pick(&mut self, view: &SchedView<'_>) -> ThreadId {
        let start = self.last.map_or(0, |t| t.0.wrapping_add(1));
        // First runnable thread with id >= start, wrapping.
        let chosen = view
            .runnable
            .iter()
            .copied()
            .find(|t| t.0 >= start)
            .unwrap_or(view.runnable[0]);
        self.last = Some(chosen);
        chosen
    }

    fn name(&self) -> &str {
        "round-robin"
    }
}

/// PCT: probabilistic concurrency testing (Burckhardt et al., ASPLOS'10
/// lineage) — a scheduler with provable bug-finding probability.
///
/// Each thread gets a distinct random priority; the highest-priority
/// runnable thread always runs. At `depth - 1` pre-chosen scheduling
/// points, the running thread's priority is demoted below everyone else's.
/// For a bug of depth `d` in a program with `n` threads and `k` scheduling
/// points, one run finds it with probability ≥ 1/(n·k^(d-1)) — a guarantee
/// random walks don't have. Belongs to the same family as the paper's
/// randomized-scheduling citation \[32\].
#[derive(Debug)]
pub struct PctScheduler {
    rng: ChaCha8Rng,
    /// Priority per thread (higher runs first); assigned on first sight.
    priorities: Vec<u64>,
    /// Scheduling points at which a demotion fires.
    change_points: Vec<u64>,
    /// Monotonically decreasing counter for demoted priorities, so each
    /// demotion lands strictly below all previous ones.
    next_low: u64,
    steps: u64,
}

impl PctScheduler {
    /// PCT with bug `depth` (d ≥ 1) over an execution of roughly
    /// `expected_len` scheduling points.
    ///
    /// # Panics
    /// Panics if `depth == 0`.
    pub fn new(seed: u64, depth: u32, expected_len: u64) -> Self {
        assert!(depth >= 1, "PCT depth must be at least 1");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let k = expected_len.max(1);
        let mut change_points: Vec<u64> = (0..depth.saturating_sub(1))
            .map(|_| rng.gen_range(0..k))
            .collect();
        change_points.sort_unstable();
        PctScheduler {
            rng,
            priorities: Vec::new(),
            change_points,
            // Demoted priorities live below the base band [2^32, 2^33).
            next_low: u64::from(u32::MAX),
            steps: 0,
        }
    }

    fn priority(&mut self, t: ThreadId) -> u64 {
        while self.priorities.len() <= t.index() {
            // Base priorities in a high band, randomly ordered.
            let p = (1u64 << 32) + self.rng.gen_range(0..(1u64 << 32));
            self.priorities.push(p);
        }
        self.priorities[t.index()]
    }
}

impl Scheduler for PctScheduler {
    fn pick(&mut self, view: &SchedView<'_>) -> ThreadId {
        self.steps += 1;
        // Fire a demotion if this step is a change point.
        if let Some(&cp) = self.change_points.first() {
            if self.steps >= cp {
                self.change_points.remove(0);
                if let Some(prev) = view.prev {
                    let _ = self.priority(prev); // ensure allocated
                    self.next_low -= 1;
                    self.priorities[prev.index()] = self.next_low;
                }
            }
        }
        // Highest-priority runnable thread runs.
        view.runnable
            .iter()
            .copied()
            .max_by_key(|t| self.priority(*t))
            .expect("pick called with runnable threads")
    }

    fn name(&self) -> &str {
        "pct"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(
        runnable: &'a [ThreadId],
        prev: Option<ThreadId>,
        forced_yield: bool,
        statuses: &'a [ThreadStatusView],
    ) -> SchedView<'a> {
        SchedView {
            runnable,
            prev,
            forced_yield,
            step: 0,
            time: 0,
            statuses,
            last_event: None,
        }
    }

    #[test]
    fn random_uniform_covers_all_choices() {
        let runnable = [ThreadId(0), ThreadId(1), ThreadId(2)];
        let statuses = [ThreadStatusView::Ready; 3];
        let mut s = RandomScheduler::new(42);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let t = s.pick(&view(&runnable, Some(ThreadId(0)), false, &statuses));
            seen[t.index()] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let runnable = [ThreadId(0), ThreadId(1), ThreadId(2), ThreadId(3)];
        let statuses = [ThreadStatusView::Ready; 4];
        let picks = |seed| {
            let mut s = RandomScheduler::new(seed);
            (0..50)
                .map(|_| s.pick(&view(&runnable, Some(ThreadId(1)), false, &statuses)))
                .collect::<Vec<_>>()
        };
        assert_eq!(picks(7), picks(7));
        assert_ne!(picks(7), picks(8));
    }

    #[test]
    fn sticky_scheduler_mostly_keeps_prev() {
        let runnable = [ThreadId(0), ThreadId(1)];
        let statuses = [ThreadStatusView::Ready; 2];
        let mut s = RandomScheduler::sticky(1, 0.95);
        let kept = (0..1000)
            .filter(|_| {
                s.pick(&view(&runnable, Some(ThreadId(1)), false, &statuses)) == ThreadId(1)
            })
            .count();
        assert!(kept > 900, "kept prev only {kept}/1000 times");
    }

    #[test]
    fn sticky_respects_forced_yield() {
        let runnable = [ThreadId(0), ThreadId(1)];
        let statuses = [ThreadStatusView::Ready; 2];
        let mut s = RandomScheduler::sticky(1, 1.0);
        for _ in 0..50 {
            let t = s.pick(&view(&runnable, Some(ThreadId(1)), true, &statuses));
            assert_eq!(t, ThreadId(0), "forced yield must avoid prev");
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_stickiness_panics() {
        RandomScheduler::sticky(0, 1.5);
    }

    #[test]
    fn fifo_keeps_prev_until_blocked() {
        let statuses = [ThreadStatusView::Ready; 3];
        let mut s = FifoScheduler;
        let runnable = [ThreadId(0), ThreadId(1), ThreadId(2)];
        assert_eq!(
            s.pick(&view(&runnable, Some(ThreadId(2)), false, &statuses)),
            ThreadId(2)
        );
        // prev not runnable -> lowest id
        let runnable2 = [ThreadId(0), ThreadId(1)];
        assert_eq!(
            s.pick(&view(&runnable2, Some(ThreadId(2)), false, &statuses)),
            ThreadId(0)
        );
        // forced yield -> first other
        assert_eq!(
            s.pick(&view(&runnable2, Some(ThreadId(0)), true, &statuses)),
            ThreadId(1)
        );
        // forced yield but alone -> prev anyway
        let solo = [ThreadId(0)];
        assert_eq!(
            s.pick(&view(&solo, Some(ThreadId(0)), true, &statuses)),
            ThreadId(0)
        );
    }

    #[test]
    fn round_robin_rotates() {
        let statuses = [ThreadStatusView::Ready; 3];
        let runnable = [ThreadId(0), ThreadId(1), ThreadId(2)];
        let mut s = RoundRobinScheduler::new();
        let seq: Vec<u32> = (0..6)
            .map(|_| s.pick(&view(&runnable, None, false, &statuses)).0)
            .collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn pct_is_deterministic_and_priority_driven() {
        let runnable = [ThreadId(0), ThreadId(1), ThreadId(2)];
        let statuses = [ThreadStatusView::Ready; 3];
        let picks = |seed| {
            let mut s = PctScheduler::new(seed, 3, 50);
            (0..30)
                .map(|_| {
                    s.pick(&view(&runnable, Some(ThreadId(0)), false, &statuses))
                        .0
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(picks(4), picks(4), "same seed, same schedule");
        assert_ne!(picks(4), picks(5), "different seeds differ");
        // Without a demotion firing between picks, the same thread keeps
        // running (strict priority): the sequence is piecewise-constant.
        let p = picks(4);
        let changes = p.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(
            changes <= 3,
            "PCT with depth 3 should switch rarely, saw {changes} switches: {p:?}"
        );
    }

    #[test]
    fn pct_demotion_switches_threads() {
        // depth 2 with expected_len 1 forces the change point at step ~0:
        // the previously-running thread is demoted immediately.
        let runnable = [ThreadId(0), ThreadId(1)];
        let statuses = [ThreadStatusView::Ready; 2];
        let mut demoted_seen = false;
        for seed in 0..20 {
            let mut s = PctScheduler::new(seed, 2, 1);
            let first = s.pick(&view(&runnable, Some(ThreadId(0)), false, &statuses));
            // Thread 0 was demoted at the first pick; if it still won, its
            // base priority never mattered. Over seeds, thread 1 must win
            // sometimes *because* of the demotion.
            if first == ThreadId(1) {
                demoted_seen = true;
            }
        }
        assert!(demoted_seen);
    }

    #[test]
    #[should_panic(expected = "depth")]
    fn pct_zero_depth_panics() {
        PctScheduler::new(0, 0, 10);
    }

    #[test]
    fn sched_view_is_runnable() {
        let statuses = [ThreadStatusView::Ready; 3];
        let runnable = [ThreadId(0), ThreadId(2)];
        let v = view(&runnable, None, false, &statuses);
        assert!(v.is_runnable(ThreadId(0)));
        assert!(!v.is_runnable(ThreadId(1)));
        assert!(v.is_runnable(ThreadId(2)));
    }
}
