//! The native-threads execution engine ([`crate::RuntimeBackend::Native`]).
//!
//! Program closures run on real `std::thread`s. Shared variables live in
//! real memory — volatile variables in `SeqCst` atomics, non-volatile ones
//! in [`mtt_race::RaceCell`]s whose torn-read detection is the engine's
//! race oracle (there is no serialized event stream to run a lockset or
//! vector-clock detector over; a torn read is *physical* evidence that an
//! unsynchronized access really happened). Synchronization bookkeeping
//! (lock owners, condition queues, semaphore permits, barrier arrivals,
//! thread statuses) reuses the model's [`ModelState`] tables, mutated under
//! one `parking_lot` mutex; blocking operations publish a `Blocked` status
//! and wait on a condition variable, so the watchdog can compute the same
//! waits-for diagnostics as the model engine.
//!
//! What is intentionally **different** from the model engine:
//!
//! * No scheduler. The OS schedules; the configured [`Scheduler`] is never
//!   consulted (`scheduler_faults`/`context_switches` stay 0).
//! * Time is wall-clock. `Event::time` is microseconds since the run
//!   started; `ctx.sleep(ticks)` sleeps `ticks × 100µs`; noise
//!   [`NoiseDecision::Yield`]/[`NoiseDecision::Sleep`] map to
//!   `thread::yield_now` / real interruptible sleeps.
//! * Runs can genuinely hang, so a wall-clock **watchdog** enforces
//!   [`ExecutionOptions::wall_budget`] (default 10s) and maps exhaustion to
//!   [`OutcomeKind::StepLimit`] — the model's "hang" analogue. The watchdog
//!   also detects deadlocks by checking, under the bookkeeping lock, that
//!   every live thread is blocked on a condition nothing can satisfy.
//! * Spurious-wakeup injection is a model feature and is not emulated; the
//!   real platform supplies its own nondeterminism.
//!
//! Torn reads observed by `RaceCell` are reported as synthetic
//! [`AssertFailure`]s labelled `race:torn-read:<var>`, so `Outcome::ok()`
//! and every downstream oracle treat a physically manifested race exactly
//! like a failed executable assertion.

use crate::ctx::ThreadCtx;
use crate::exec::{install_quiet_hook, AbortToken, ExecutionOptions, ModelMisuse};
use crate::noise::{NoiseDecision, NoiseMaker, NoiseView};
use crate::outcome::{AssertFailure, ExecStats, Outcome, OutcomeKind};
use crate::program::Program;
use crate::state::{BlockReason, ModelState, Status, ThreadState};
use mtt_instrument::{
    BarrierId, CondId, Event, EventSink, Loc, LockId, Op, ResolvedFilter, SemId, ThreadId, VarId,
};
use mtt_race::RaceCell;
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::{BTreeMap, HashMap};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One model tick, in wall time: `ctx.sleep(1)` sleeps this long.
pub(crate) const NATIVE_TICK: Duration = Duration::from_micros(100);
/// Wall budget when the caller did not set one. Native runs can hang, so
/// there is always *some* watchdog deadline.
pub(crate) const DEFAULT_NATIVE_BUDGET: Duration = Duration::from_secs(10);
/// Watchdog poll / blocked-thread re-check interval.
const POLL: Duration = Duration::from_millis(20);
/// How long teardown waits for live threads after completion or abort
/// before detaching the stragglers.
const TEARDOWN_GRACE: Duration = Duration::from_secs(2);

fn misuse(msg: String) -> ! {
    panic::panic_any(ModelMisuse(msg))
}

/// Physical storage for one shared variable.
pub(crate) enum NativeVar {
    /// Volatile variables are sequentially consistent, like the model's.
    Volatile(AtomicI64),
    /// Non-volatile variables get torn-read detection instead of the
    /// model's weak-visibility cache.
    Plain(RaceCell),
}

impl NativeVar {
    fn load_synced(&self) -> i64 {
        match self {
            NativeVar::Volatile(a) => a.load(Ordering::SeqCst),
            NativeVar::Plain(c) => c.load_synced(),
        }
    }
}

/// First torn-read observation for one variable (later ones add nothing:
/// the synthetic failure reports *that* the race manifested, and where
/// first).
struct TornObs {
    thread: ThreadId,
    loc: Loc,
}

/// Everything behind the native engine's bookkeeping mutex.
pub(crate) struct NBook {
    /// Reused model tables: lock owners, cond queues, sem permits, barrier
    /// arrivals, thread records, finish order. `model.vars` is **not** the
    /// value store here (values live in [`NativeRt::vars`]); it only feeds
    /// `deadlock_info` and final-state plumbing that ignores it.
    pub model: ModelState,
    noise: Box<dyn NoiseMaker>,
    sinks: Vec<Box<dyn EventSink>>,
    sink_filter: ResolvedFilter,
    noise_filter: ResolvedFilter,
    opts: ExecutionOptions,
    stats: ExecStats,
    abort: Option<OutcomeKind>,
    completed: bool,
    /// OS threads that have been spawned and not yet returned from
    /// `native_thread_main` — teardown waits for this to drain.
    live: u32,
    os_handles: Vec<JoinHandle<()>>,
    labels: Vec<String>,
    label_idx: HashMap<String, u32>,
    assert_failures: Vec<AssertFailure>,
    /// Torn-read observations, keyed by variable id (ordered so the
    /// synthetic failures appended to the outcome are deterministic).
    torn: BTreeMap<u32, TornObs>,
    scratch_runnable: Vec<ThreadId>,
}

impl NBook {
    fn intern_label(&mut self, label: &str) -> u32 {
        if let Some(&i) = self.label_idx.get(label) {
            return i;
        }
        let i = self.labels.len() as u32;
        self.labels.push(label.to_string());
        self.label_idx.insert(label.to_string(), i);
        i
    }

    /// Record an abort cause (first one wins), mirroring the model engine.
    fn do_abort(&mut self, kind: OutcomeKind) {
        if self.abort.is_none() {
            if !matches!(kind, OutcomeKind::StepLimit) && self.stats.first_failure_step.is_none() {
                self.stats.first_failure_step = Some(self.stats.sched_points);
            }
            self.abort = Some(kind);
        }
    }

    fn record_torn(&mut self, me: ThreadId, var: VarId, loc: Loc) {
        self.torn
            .entry(var.0)
            .or_insert(TornObs { thread: me, loc });
    }
}

/// Shared handle of one native execution.
pub(crate) struct NativeRt {
    /// Physical variable store, indexed by `VarId`.
    vars: Vec<NativeVar>,
    pub(crate) book: Mutex<NBook>,
    cv: Condvar,
    /// Global event sequence — a real atomic, since events originate on
    /// concurrently running threads.
    seq: AtomicU64,
    /// Raised on abort; checked by every operation and every interruptible
    /// sleep so threads unwind promptly even while off the book lock.
    abort_flag: AtomicBool,
    start: Instant,
    /// Serializes read-modify-write operations against each other (the
    /// native analogue of `AtomicInteger`); plain writes still race with
    /// it, which is exactly what the torn-read oracle observes.
    rmw_lock: Mutex<()>,
}

impl NativeRt {
    fn now_micros(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Unwind this thread if the execution is aborting.
    fn check_abort(&self, b: &NBook) {
        if b.abort.is_some() || self.abort_flag.load(Ordering::Relaxed) {
            panic::panic_any(AbortToken);
        }
    }

    /// Record an abort and wake everything that might be parked on it.
    fn raise_abort(&self, b: &mut NBook, kind: OutcomeKind) {
        b.do_abort(kind);
        self.abort_flag.store(true, Ordering::Release);
        self.cv.notify_all();
    }

    /// Emit one event to the sinks and consult the noise maker. Counts a
    /// scheduling point against `max_steps` (the logical budget applies to
    /// both backends; the wall budget is enforced by the watchdog). The
    /// returned decision must be applied *off* the book lock via
    /// [`Self::apply_noise`].
    fn emit(&self, b: &mut NBook, me: ThreadId, loc: Loc, op: Op) -> NoiseDecision {
        self.check_abort(b);
        b.stats.events += 1;
        b.stats.sched_points += 1;
        if b.stats.sched_points > b.opts.max_steps {
            self.raise_abort(b, OutcomeKind::StepLimit);
            panic::panic_any(AbortToken);
        }
        let ev = Event {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            time: self.now_micros(),
            thread: me,
            loc,
            op,
            locks_held: Arc::clone(&b.model.threads[me.index()].held_snapshot),
        };
        if b.sink_filter.selects(&ev) {
            for s in &mut b.sinks {
                s.on_event(&ev);
            }
        }
        let decision = if b.noise_filter.selects(&ev) {
            let mut scratch = std::mem::take(&mut b.scratch_runnable);
            b.model.collect_runnable(&mut scratch);
            let view = NoiseView {
                runnable: scratch.len(),
                step: b.stats.sched_points,
                time: ev.time,
            };
            b.scratch_runnable = scratch;
            b.noise.decide(&ev, &view)
        } else {
            NoiseDecision::None
        };
        match decision {
            NoiseDecision::None => {}
            NoiseDecision::Yield => {
                b.stats.noise_injections += 1;
                b.stats.forced_yields += 1;
            }
            NoiseDecision::Sleep(_) => b.stats.noise_injections += 1,
        }
        decision
    }

    /// Apply a noise decision with real thread primitives. Must be called
    /// without the book lock held.
    fn apply_noise(&self, nd: NoiseDecision) {
        match nd {
            NoiseDecision::None => {}
            NoiseDecision::Yield => std::thread::yield_now(),
            NoiseDecision::Sleep(ticks) => {
                self.interruptible_sleep(NATIVE_TICK * ticks.max(1));
            }
        }
    }

    /// Real sleep in short chunks, unwinding promptly on abort.
    fn interruptible_sleep(&self, total: Duration) {
        let deadline = Instant::now() + total;
        loop {
            if self.abort_flag.load(Ordering::Relaxed) {
                panic::panic_any(AbortToken);
            }
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            std::thread::sleep((deadline - now).min(Duration::from_millis(10)));
        }
    }

    /// Park `me` (publishing `Blocked(reason)` for the watchdog) until
    /// `ready` holds under the book lock, the optional deadline passes
    /// (returns `false`), or the execution aborts (unwinds). On return the
    /// thread's status is `Running` again.
    ///
    /// `ready` must be a pure predicate over the bookkeeping state (never
    /// over this thread's own status): the watchdog re-evaluates the same
    /// conditions to prove a deadlock, so the two must agree.
    fn block_until(
        &self,
        g: &mut MutexGuard<'_, NBook>,
        me: ThreadId,
        reason: BlockReason,
        mut ready: impl FnMut(&NBook) -> bool,
        deadline: Option<Instant>,
    ) -> bool {
        loop {
            self.check_abort(g);
            if ready(g) {
                g.model.threads[me.index()].status = Status::Running;
                return true;
            }
            let wait = match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        g.model.threads[me.index()].status = Status::Running;
                        return false;
                    }
                    (d - now).min(POLL)
                }
                None => POLL,
            };
            g.model.threads[me.index()].status = Status::Blocked(reason);
            let _ = self.cv.wait_for(g, wait);
        }
    }

    // ------------------------------------------------------------------
    // Operations (called from `ThreadCtx`'s native arms)
    // ------------------------------------------------------------------

    pub(crate) fn read_at(&self, me: ThreadId, var: VarId, loc: Loc) -> i64 {
        let (value, torn) = match &self.vars[var.index()] {
            NativeVar::Volatile(a) => (a.load(Ordering::SeqCst), false),
            NativeVar::Plain(c) => {
                let r = c.get();
                (r.value(), r.is_torn())
            }
        };
        let nd = {
            let mut g = self.book.lock();
            if torn {
                g.record_torn(me, var, loc);
            }
            self.emit(&mut g, me, loc, Op::VarRead { var, value })
        };
        self.apply_noise(nd);
        value
    }

    pub(crate) fn write_at(&self, me: ThreadId, var: VarId, value: i64, loc: Loc) {
        match &self.vars[var.index()] {
            NativeVar::Volatile(a) => a.store(value, Ordering::SeqCst),
            NativeVar::Plain(c) => c.set(value),
        }
        let nd = {
            let mut g = self.book.lock();
            self.emit(&mut g, me, loc, Op::VarWrite { var, value })
        };
        self.apply_noise(nd);
    }

    pub(crate) fn rmw_at(
        &self,
        me: ThreadId,
        var: VarId,
        f: impl FnOnce(i64) -> i64,
        loc: Loc,
    ) -> i64 {
        let (old, new, torn) = {
            let _atomic = self.rmw_lock.lock();
            match &self.vars[var.index()] {
                NativeVar::Volatile(a) => {
                    let old = a.load(Ordering::SeqCst);
                    let new = f(old);
                    a.store(new, Ordering::SeqCst);
                    (old, new, false)
                }
                NativeVar::Plain(c) => {
                    let r = c.get();
                    let old = r.value();
                    let new = f(old);
                    c.set(new);
                    (old, new, r.is_torn())
                }
            }
        };
        let nd = {
            let mut g = self.book.lock();
            if torn {
                g.record_torn(me, var, loc);
            }
            self.emit(&mut g, me, loc, Op::VarRmw { var, old, new })
        };
        self.apply_noise(nd);
        old
    }

    pub(crate) fn lock_at(&self, me: ThreadId, lock: LockId, loc: Loc) {
        let nd = {
            let mut g = self.book.lock();
            match g.model.lock_owner[lock.index()] {
                Some(owner) if owner == me => misuse(format!(
                    "thread {me} locked {lock:?} recursively (model mutexes are non-reentrant)"
                )),
                Some(_) => {
                    let _ = self.emit(&mut g, me, loc, Op::LockRequest { lock });
                    self.block_until(
                        &mut g,
                        me,
                        BlockReason::Lock(lock),
                        |b| b.model.lock_owner[lock.index()].is_none(),
                        None,
                    );
                }
                None => {}
            }
            g.model.acquire_lock(me, lock);
            self.emit(&mut g, me, loc, Op::LockAcquire { lock })
        };
        self.apply_noise(nd);
    }

    pub(crate) fn try_lock_at(&self, me: ThreadId, lock: LockId, loc: Loc) -> bool {
        let (got, nd) = {
            let mut g = self.book.lock();
            match g.model.lock_owner[lock.index()] {
                None => {
                    g.model.acquire_lock(me, lock);
                    let nd = self.emit(&mut g, me, loc, Op::LockAcquire { lock });
                    (true, nd)
                }
                Some(owner) if owner == me => {
                    misuse(format!("thread {me} try_lock on lock it holds"))
                }
                Some(_) => {
                    let nd = self.emit(&mut g, me, loc, Op::LockTryFail { lock });
                    (false, nd)
                }
            }
        };
        self.apply_noise(nd);
        got
    }

    pub(crate) fn unlock_at(&self, me: ThreadId, lock: LockId, loc: Loc) {
        let nd = {
            let mut g = self.book.lock();
            if !g.model.release_lock(me, lock) {
                misuse(format!(
                    "thread {me} released {lock:?} which it does not hold"
                ));
            }
            self.cv.notify_all();
            self.emit(&mut g, me, loc, Op::LockRelease { lock })
        };
        self.apply_noise(nd);
    }

    pub(crate) fn wait_at(
        &self,
        me: ThreadId,
        cond: CondId,
        lock: LockId,
        ticks: Option<u32>,
        loc: Loc,
    ) -> bool {
        let (timed_out, nd) = {
            let mut g = self.book.lock();
            if g.model.lock_owner[lock.index()] != Some(me) {
                misuse(format!(
                    "thread {me} waits on {cond:?} without holding {lock:?}"
                ));
            }
            let _ = self.emit(&mut g, me, loc, Op::CondWait { cond, lock });
            assert!(g.model.release_lock(me, lock));
            self.cv.notify_all();
            g.model.cond_queues[cond.index()].push(me);
            g.model.threads[me.index()].timed_out = false;
            let deadline = ticks.map(|t| Instant::now() + NATIVE_TICK * t.max(1));
            let reason = match ticks {
                Some(t) => BlockReason::CondTimed(
                    cond,
                    lock,
                    self.now_micros() + u64::from(t.max(1)) * 100,
                ),
                None => BlockReason::Cond(cond, lock),
            };
            // Notify removes the waiter from the queue; absence is the
            // wake condition.
            let notified = self.block_until(
                &mut g,
                me,
                reason,
                |b| !b.model.cond_queues[cond.index()].contains(&me),
                deadline,
            );
            if !notified {
                g.model.cond_queues[cond.index()].retain(|q| *q != me);
                g.model.threads[me.index()].timed_out = true;
            }
            let timed_out = g.model.threads[me.index()].timed_out;
            // Re-acquire the lock, competing with everyone else.
            if g.model.lock_owner[lock.index()].is_some() {
                self.block_until(
                    &mut g,
                    me,
                    BlockReason::Lock(lock),
                    |b| b.model.lock_owner[lock.index()].is_none(),
                    None,
                );
            }
            g.model.acquire_lock(me, lock);
            let nd = self.emit(&mut g, me, loc, Op::CondWake { cond, lock });
            (timed_out, nd)
        };
        self.apply_noise(nd);
        !timed_out
    }

    pub(crate) fn notify_at(&self, me: ThreadId, cond: CondId, all: bool, loc: Loc) {
        let nd = {
            let mut g = self.book.lock();
            if all {
                let woken: Vec<ThreadId> = g.model.cond_queues[cond.index()].drain(..).collect();
                for t in woken {
                    g.model.threads[t.index()].timed_out = false;
                }
            } else if !g.model.cond_queues[cond.index()].is_empty() {
                let t = g.model.cond_queues[cond.index()].remove(0);
                g.model.threads[t.index()].timed_out = false;
            }
            self.cv.notify_all();
            self.emit(&mut g, me, loc, Op::CondNotify { cond, all })
        };
        self.apply_noise(nd);
    }

    pub(crate) fn sem_acquire_at(&self, me: ThreadId, sem: SemId, loc: Loc) {
        let nd = {
            let mut g = self.book.lock();
            if g.model.sem_permits[sem.index()] == 0 {
                let _ = self.emit(&mut g, me, loc, Op::SemRequest { sem });
                self.block_until(
                    &mut g,
                    me,
                    BlockReason::Sem(sem),
                    |b| b.model.sem_permits[sem.index()] > 0,
                    None,
                );
            }
            g.model.sem_permits[sem.index()] -= 1;
            self.emit(&mut g, me, loc, Op::SemAcquire { sem })
        };
        self.apply_noise(nd);
    }

    pub(crate) fn sem_release_at(&self, me: ThreadId, sem: SemId, loc: Loc) {
        let nd = {
            let mut g = self.book.lock();
            g.model.sem_permits[sem.index()] += 1;
            self.cv.notify_all();
            self.emit(&mut g, me, loc, Op::SemRelease { sem })
        };
        self.apply_noise(nd);
    }

    pub(crate) fn barrier_wait_at(&self, me: ThreadId, barrier: BarrierId, loc: Loc) {
        let nd = {
            let mut g = self.book.lock();
            g.model.barrier_arrived[barrier.index()].push(me);
            let _ = self.emit(&mut g, me, loc, Op::BarrierArrive { barrier });
            let full = g.model.barrier_arrived[barrier.index()].len() as u32
                == g.model.barrier_parties[barrier.index()];
            if full {
                // Departure = removal from the arrival list; waiters pass
                // when they no longer find themselves in it.
                g.model.barrier_arrived[barrier.index()].clear();
                self.cv.notify_all();
            } else {
                self.block_until(
                    &mut g,
                    me,
                    BlockReason::Barrier(barrier),
                    |b| !b.model.barrier_arrived[barrier.index()].contains(&me),
                    None,
                );
            }
            self.emit(&mut g, me, loc, Op::BarrierPass { barrier })
        };
        self.apply_noise(nd);
    }

    pub(crate) fn spawn_at(
        self: &Arc<Self>,
        me: ThreadId,
        name: String,
        body: Box<dyn FnOnce(&mut ThreadCtx) + Send>,
        loc: Loc,
    ) -> ThreadId {
        let (child, nd) = {
            let mut g = self.book.lock();
            if g.model.threads.len() as u32 >= g.opts.max_threads {
                misuse(format!(
                    "thread limit ({}) exceeded — runaway spawn loop?",
                    g.opts.max_threads
                ));
            }
            let child = ThreadId(g.model.threads.len() as u32);
            g.model.threads.push(ThreadState::new(name));
            g.stats.threads += 1;
            g.live += 1;
            let rt2 = Arc::clone(self);
            let handle = std::thread::Builder::new()
                .name(format!("mtt-n-{}", child.0))
                .spawn(move || native_thread_main(rt2, child, body))
                .expect("failed to spawn native thread");
            g.os_handles.push(handle);
            let nd = self.emit(&mut g, me, loc, Op::Spawn { child });
            (child, nd)
        };
        self.apply_noise(nd);
        child
    }

    pub(crate) fn join_at(&self, me: ThreadId, target: ThreadId, loc: Loc) {
        if target == me {
            misuse(format!("thread {me} joining itself"));
        }
        let nd = {
            let mut g = self.book.lock();
            if target.index() >= g.model.threads.len() {
                misuse(format!("join on unknown thread {target}"));
            }
            if g.model.threads[target.index()].status != Status::Finished {
                let _ = self.emit(&mut g, me, loc, Op::JoinRequest { target });
                self.block_until(
                    &mut g,
                    me,
                    BlockReason::Join(target),
                    |b| b.model.threads[target.index()].status == Status::Finished,
                    None,
                );
            }
            self.emit(&mut g, me, loc, Op::Join { target })
        };
        self.apply_noise(nd);
    }

    pub(crate) fn yield_at(&self, me: ThreadId, loc: Loc) {
        let nd = {
            let mut g = self.book.lock();
            self.emit(&mut g, me, loc, Op::Yield)
        };
        std::thread::yield_now();
        self.apply_noise(nd);
    }

    pub(crate) fn sleep_at(&self, me: ThreadId, ticks: u32, loc: Loc) {
        let wake = self.now_micros() + u64::from(ticks.max(1)) * 100;
        {
            let mut g = self.book.lock();
            let _ = self.emit(&mut g, me, loc, Op::Sleep { ticks });
            g.model.threads[me.index()].status = Status::Sleeping(wake);
        }
        self.interruptible_sleep(NATIVE_TICK * ticks.max(1));
        let mut g = self.book.lock();
        g.model.threads[me.index()].status = Status::Running;
    }

    pub(crate) fn point_at(&self, me: ThreadId, label: &str, loc: Loc) {
        let nd = {
            let mut g = self.book.lock();
            let li = g.intern_label(label);
            self.emit(&mut g, me, loc, Op::Point { label: li })
        };
        self.apply_noise(nd);
    }

    pub(crate) fn check_at(&self, me: ThreadId, label: &str, loc: Loc) {
        let nd = {
            let mut g = self.book.lock();
            let li = g.intern_label(label);
            if g.stats.first_failure_step.is_none() {
                g.stats.first_failure_step = Some(g.stats.sched_points);
            }
            g.assert_failures.push(AssertFailure {
                thread: me,
                label: label.to_string(),
                loc,
            });
            let nd = self.emit(&mut g, me, loc, Op::AssertFail { label: li });
            if g.opts.stop_on_assert {
                self.raise_abort(&mut g, OutcomeKind::AssertStop);
                panic::panic_any(AbortToken);
            }
            nd
        };
        self.apply_noise(nd);
    }

    pub(crate) fn program_seed(&self) -> u64 {
        self.book.lock().opts.program_seed
    }
}

/// Is every live thread provably stuck? Evaluated under the book lock, so
/// the snapshot is consistent; each blocked thread's wake condition is the
/// same predicate its `block_until` call polls, which makes this check
/// exact: if it holds, no thread can ever run again (only a running thread
/// could satisfy any of the conditions, and timed waits — the one
/// self-waking reason — are excluded).
fn native_deadlocked(b: &NBook) -> bool {
    let mut any_blocked = false;
    for (i, t) in b.model.threads.iter().enumerate() {
        let tid = ThreadId(i as u32);
        match t.status {
            Status::Finished => {}
            Status::Blocked(reason) => {
                any_blocked = true;
                let stuck = match reason {
                    BlockReason::Lock(l) => b.model.lock_owner[l.index()].is_some(),
                    BlockReason::Cond(c, _) => b.model.cond_queues[c.index()].contains(&tid),
                    BlockReason::CondTimed(_, _, _) => false, // wakes itself
                    BlockReason::Sem(s) => b.model.sem_permits[s.index()] == 0,
                    BlockReason::Barrier(bar) => {
                        b.model.barrier_arrived[bar.index()].contains(&tid)
                    }
                    BlockReason::Join(target) => {
                        b.model.threads[target.index()].status != Status::Finished
                    }
                };
                if !stuck {
                    return false;
                }
            }
            // Ready (spawned, not yet started), Running, or Sleeping:
            // progress is still possible.
            _ => return false,
        }
    }
    any_blocked
}

/// Body run by each native OS thread.
fn native_thread_main(
    rt: Arc<NativeRt>,
    me: ThreadId,
    body: Box<dyn FnOnce(&mut ThreadCtx) + Send>,
) {
    let start_ok = {
        let mut g = rt.book.lock();
        if g.abort.is_some() || rt.abort_flag.load(Ordering::Relaxed) {
            false
        } else {
            g.model.threads[me.index()].status = Status::Running;
            panic::catch_unwind(AssertUnwindSafe(|| {
                let _ = rt.emit(&mut g, me, Loc::SYNTHETIC, Op::ThreadStart);
            }))
            .is_ok()
        }
    };
    if start_ok {
        let mut ctx = ThreadCtx::new_native(Arc::clone(&rt), me);
        let result = panic::catch_unwind(AssertUnwindSafe(|| body(&mut ctx)));
        let mut g = rt.book.lock();
        match result {
            Ok(()) => {
                if g.abort.is_none() {
                    let _ = panic::catch_unwind(AssertUnwindSafe(|| {
                        let _ = rt.emit(&mut g, me, Loc::SYNTHETIC, Op::ThreadExit);
                    }));
                }
                g.model.threads[me.index()].status = Status::Finished;
                g.model.finish_order.push(me);
                if g.model.all_finished() {
                    g.completed = true;
                }
            }
            Err(payload) => {
                if !payload.is::<AbortToken>() {
                    let message = if let Some(m) = payload.downcast_ref::<ModelMisuse>() {
                        m.0.clone()
                    } else if let Some(s) = payload.downcast_ref::<&str>() {
                        (*s).to_string()
                    } else if let Some(s) = payload.downcast_ref::<String>() {
                        s.clone()
                    } else {
                        "non-string panic payload".to_string()
                    };
                    g.do_abort(OutcomeKind::ThreadPanic {
                        thread: me,
                        message,
                    });
                    rt.abort_flag.store(true, Ordering::Release);
                }
            }
        }
        g.live -= 1;
        rt.cv.notify_all();
    } else {
        let mut g = rt.book.lock();
        g.live -= 1;
        rt.cv.notify_all();
    }
}

/// Run `program` on real OS threads. The watchdog runs on the calling
/// thread: it enforces the wall budget (mapping exhaustion to
/// [`OutcomeKind::StepLimit`]) and polls for provable deadlocks. The
/// configured scheduler is never consulted.
pub(crate) fn run_native(
    program: &Program,
    noise: Box<dyn NoiseMaker>,
    sinks: Vec<Box<dyn EventSink>>,
    sink_filter: ResolvedFilter,
    noise_filter: ResolvedFilter,
    opts: ExecutionOptions,
) -> Outcome {
    install_quiet_hook();
    let started = Instant::now();
    let var_table = program.var_table();
    let vars: Vec<NativeVar> = program
        .vars()
        .iter()
        .map(|v| {
            if v.volatile {
                NativeVar::Volatile(AtomicI64::new(v.init))
            } else {
                NativeVar::Plain(RaceCell::new(v.init))
            }
        })
        .collect();
    let budget = opts.wall_budget.unwrap_or(DEFAULT_NATIVE_BUDGET);
    let book = NBook {
        model: ModelState::for_program(program),
        noise,
        sinks,
        sink_filter,
        noise_filter,
        opts,
        stats: ExecStats::default(),
        abort: None,
        completed: false,
        live: 0,
        os_handles: Vec::new(),
        labels: Vec::new(),
        label_idx: HashMap::new(),
        assert_failures: Vec::new(),
        torn: BTreeMap::new(),
        scratch_runnable: Vec::new(),
    };
    let rt = Arc::new(NativeRt {
        vars,
        book: Mutex::new(book),
        cv: Condvar::new(),
        seq: AtomicU64::new(0),
        abort_flag: AtomicBool::new(false),
        start: started,
        rmw_lock: Mutex::new(()),
    });

    // Launch the main model thread.
    {
        let mut g = rt.book.lock();
        g.model.threads.push(ThreadState::new("main".to_string()));
        g.stats.threads = 1;
        g.live = 1;
        let entry = program.entry();
        let rt2 = Arc::clone(&rt);
        let handle = std::thread::Builder::new()
            .name("mtt-n-main".to_string())
            .spawn(move || native_thread_main(rt2, ThreadId::MAIN, Box::new(move |ctx| entry(ctx))))
            .expect("failed to spawn native thread");
        g.os_handles.push(handle);
    }

    // Watchdog loop.
    {
        let mut g = rt.book.lock();
        loop {
            if g.completed || g.abort.is_some() {
                break;
            }
            if started.elapsed() >= budget {
                rt.raise_abort(&mut g, OutcomeKind::StepLimit);
                break;
            }
            if native_deadlocked(&g) {
                let info = g.model.deadlock_info();
                rt.raise_abort(&mut g, OutcomeKind::Deadlock(info));
                break;
            }
            let _ = rt.cv.wait_for(&mut g, POLL);
        }
        if g.abort.is_some() {
            rt.abort_flag.store(true, Ordering::Release);
        }
        rt.cv.notify_all();
    }

    // Teardown: wait for live threads to drain, then join; threads stuck in
    // uninstrumented compute loops cannot be interrupted and are detached
    // after the grace period (their next instrumented operation unwinds).
    let grace_deadline = Instant::now() + TEARDOWN_GRACE;
    let handles = {
        let mut g = rt.book.lock();
        while g.live > 0 && Instant::now() < grace_deadline {
            let _ = rt.cv.wait_for(&mut g, POLL);
        }
        std::mem::take(&mut g.os_handles)
    };
    let all_exited = rt.book.lock().live == 0;
    if all_exited {
        for h in handles {
            let _ = h.join();
        }
    } else {
        drop(handles); // detach stragglers; abort_flag stops their next op
    }

    // Assemble the outcome.
    let mut g = rt.book.lock();
    for s in &mut g.sinks {
        s.finish();
    }
    let kind = g.abort.take().unwrap_or(OutcomeKind::Completed);
    let mut assert_failures = g.assert_failures.clone();
    for (var, obs) in &g.torn {
        assert_failures.push(AssertFailure {
            thread: obs.thread,
            label: format!("race:torn-read:{}", var_table.name(VarId(*var))),
            loc: obs.loc,
        });
    }
    g.stats.virtual_time = rt.now_micros();
    g.stats.wall = started.elapsed();
    Outcome {
        program: g.model.program_name.clone(),
        kind,
        final_vars: rt.vars.iter().map(NativeVar::load_synced).collect(),
        var_table,
        finish_order: g.model.finish_order.clone(),
        thread_names: g.model.threads.iter().map(|t| t.name.clone()).collect(),
        assert_failures,
        stats: g.stats.clone(),
    }
}
