//! [`RuntimeBackend`]: the seam between the *model* engine and the
//! *native-threads* engine.
//!
//! The model backend (the default, and the only engine this crate had
//! before the seam) serializes all program activity through a token-passing
//! controller: executions are deterministic functions of the scheduler's
//! decisions, which is what replay, systematic exploration and byte-stable
//! experiment reports are built on.
//!
//! The native backend runs the *same* program closures on real
//! `std::thread`s with real mutexes and atomics. Nothing serializes program
//! steps, so outcomes are genuinely nondeterministic — which is the point:
//! it answers "does the model's find-probability survive contact with a
//! real scheduler and a real memory system?" (experiment E13). Races there
//! are physical, so the native engine uses `mtt_race::RaceCell` torn-value
//! detection as its race oracle instead of an event-stream detector.
//!
//! Everything *around* the engines — programs, noise makers, event sinks,
//! outcomes — is shared: both backends emit the same [`crate::Event`]
//! stream and produce the same [`crate::Outcome`] shape.

/// Which execution engine an [`crate::Execution`] uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RuntimeBackend {
    /// The deterministic token-passing model engine (default).
    #[default]
    Model,
    /// Real OS threads, real synchronization, wall-clock time.
    Native,
}

impl RuntimeBackend {
    /// Short stable tag, used in tool specs, run logs and journal keys.
    pub fn tag(self) -> &'static str {
        match self {
            RuntimeBackend::Model => "model",
            RuntimeBackend::Native => "native",
        }
    }

    /// Inverse of [`Self::tag`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "model" => Some(RuntimeBackend::Model),
            "native" => Some(RuntimeBackend::Native),
            _ => None,
        }
    }

    /// Is this the native-threads engine?
    pub fn is_native(self) -> bool {
        matches!(self, RuntimeBackend::Native)
    }
}

impl std::fmt::Display for RuntimeBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_round_trip() {
        for b in [RuntimeBackend::Model, RuntimeBackend::Native] {
            assert_eq!(RuntimeBackend::parse(b.tag()), Some(b));
        }
        assert_eq!(RuntimeBackend::parse("simulated"), None);
        assert_eq!(RuntimeBackend::default(), RuntimeBackend::Model);
        assert!(!RuntimeBackend::Model.is_native());
        assert_eq!(RuntimeBackend::Native.to_string(), "native");
    }
}
