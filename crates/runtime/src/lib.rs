//! # mtt-runtime — the controlled model-concurrency runtime
//!
//! This crate is the substrate that stands in for "a JVM running an
//! instrumented multi-threaded Java program" in the PADTAD 2003 benchmark
//! proposal. Benchmark programs are ordinary Rust closures that perform all
//! shared-memory and synchronization operations through a [`ThreadCtx`]
//! handle; every such operation is a **scheduling point** at which
//!
//! 1. an [`mtt_instrument::Event`] is emitted to the configured sinks,
//! 2. the configured [`NoiseMaker`] may delay or preempt the thread, and
//! 3. the configured [`Scheduler`] chooses which model thread runs next.
//!
//! Exactly one model thread executes between scheduling points (each model
//! thread is an OS thread, parked on a token-passing controller), so an
//! execution is a *sequentially consistent interleaving* fully determined by
//! the scheduler's decisions — the property that makes replay, noise
//! injection and systematic state-space exploration possible at all.
//!
//! Intentional concurrency bugs (data races, deadlocks, atomicity
//! violations, lost notifications) live in the **model**: a lost update is a
//! lost update of the model's variable store, a deadlock is a cycle in the
//! model's lock table. Safe Rust is never violated; this is the substitution
//! DESIGN.md §2 documents.
//!
//! ## Quick example
//!
//! ```
//! use mtt_runtime::{ProgramBuilder, Execution, RandomScheduler};
//!
//! let mut b = ProgramBuilder::new("two_increments");
//! let x = b.var("x", 0);
//! b.entry(move |ctx| {
//!     let mut kids = Vec::new();
//!     for i in 0..2 {
//!         kids.push(ctx.spawn(format!("inc{i}"), move |ctx| {
//!             let v = ctx.read(x);        // scheduling point
//!             ctx.write(x, v + 1);        // scheduling point
//!         }));
//!     }
//!     for k in kids {
//!         ctx.join(k);
//!     }
//! });
//! let program = b.build();
//! let outcome = Execution::new(&program)
//!     .scheduler(Box::new(RandomScheduler::new(7)))
//!     .run();
//! let x_final = outcome.var("x").unwrap();
//! assert!(x_final == 1 || x_final == 2); // 1 ⇔ the lost-update race fired
//! ```

/// The runtime's semantic version. Baked into every campaign cell's
/// content address (see `mtt-obs`), so cached results recorded by one
/// runtime version are never replayed by a build whose execution semantics
/// may differ.
pub const RUNTIME_VERSION: &str = env!("CARGO_PKG_VERSION");

pub mod backend;
pub mod ctx;
pub mod exec;
mod native;
pub mod noise;
pub mod outcome;
pub mod program;
pub mod scheduler;
mod state;

pub use backend::RuntimeBackend;
pub use ctx::ThreadCtx;
pub use exec::{Execution, ExecutionOptions};
pub use noise::{NoNoise, NoiseDecision, NoiseMaker, NoiseView};
pub use outcome::{AssertFailure, DeadlockInfo, ExecStats, Outcome, OutcomeKind, WaitEdge};
pub use program::{Program, ProgramBuilder};
pub use scheduler::{
    FifoScheduler, PctScheduler, RandomScheduler, RoundRobinScheduler, SchedView, Scheduler,
    ThreadStatusView,
};

// Re-export the instrumentation vocabulary so program authors depend on one
// crate only.
pub use mtt_instrument::{BarrierId, CondId, Event, Loc, LockId, Op, SemId, ThreadId, VarId};
