//! Crate-private model state: variables, locks, condition variables,
//! semaphores, barriers and thread records.
//!
//! All mutation happens under the controller's mutex in `exec.rs`; nothing
//! here synchronizes on its own. The model is deliberately simple — it is a
//! *specification-level* shared memory, not an efficient one — because every
//! operation is already serialized by the token-passing controller.

use crate::outcome::{DeadlockInfo, WaitEdge};
use crate::program::{Program, VarSpec};
use mtt_instrument::{BarrierId, CondId, LockId, ThreadId, VarId};
use std::collections::HashMap;
use std::sync::Arc;

/// Why a thread cannot run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BlockReason {
    /// Waiting to acquire a mutex.
    Lock(LockId),
    /// Waiting for a notify; the lock to re-acquire afterwards.
    Cond(CondId, LockId),
    /// Timed wait: like `Cond` plus a virtual-time deadline.
    CondTimed(CondId, LockId, u64),
    /// Waiting for a semaphore permit.
    Sem(SemIdAlias),
    /// Waiting at a barrier.
    Barrier(BarrierId),
    /// Waiting for a thread to finish.
    Join(ThreadId),
}

// `SemId` spelled via alias to keep the enum arms visually aligned.
pub(crate) type SemIdAlias = mtt_instrument::SemId;

/// Scheduling status of one model thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    /// Eligible to be picked.
    Ready,
    /// Holds the execution token right now.
    Running,
    /// Cannot run until some model action unblocks it.
    Blocked(BlockReason),
    /// Asleep until the given virtual time.
    Sleeping(u64),
    /// Terminated.
    Finished,
}

/// Per-thread record.
#[derive(Debug)]
pub(crate) struct ThreadState {
    pub name: String,
    pub status: Status,
    /// Locks held, in acquisition order.
    pub held: Vec<LockId>,
    /// Immutable snapshot of `held`, shared into events (pointer clone per
    /// event instead of a vector clone — the hot path optimization).
    pub held_snapshot: Arc<[LockId]>,
    /// Weak-visibility cache for non-volatile variables: value this thread
    /// last observed/wrote, possibly stale w.r.t. the shared store. Cleared
    /// at every synchronization operation.
    pub cache: HashMap<VarId, i64>,
    /// Set when the thread's timed wait ended by timeout rather than notify.
    pub timed_out: bool,
}

impl ThreadState {
    pub fn new(name: String) -> Self {
        ThreadState {
            name,
            status: Status::Ready,
            held: Vec::new(),
            held_snapshot: Arc::from(Vec::new()),
            cache: HashMap::new(),
            timed_out: false,
        }
    }

    fn refresh_snapshot(&mut self) {
        self.held_snapshot = Arc::from(self.held.clone());
    }

    /// Drop the weak-visibility cache: the thread just performed a
    /// synchronization action, so it must observe fresh values.
    pub fn flush_cache(&mut self) {
        self.cache.clear();
    }
}

/// The whole shared-model state of one execution.
#[derive(Debug)]
pub(crate) struct ModelState {
    pub program_name: String,
    pub var_specs: Vec<VarSpec>,
    pub vars: Vec<i64>,
    pub lock_names: Vec<String>,
    pub lock_owner: Vec<Option<ThreadId>>,
    pub cond_names: Vec<String>,
    /// FIFO wait queue per condition variable.
    pub cond_queues: Vec<Vec<ThreadId>>,
    pub sem_names: Vec<String>,
    pub sem_permits: Vec<u32>,
    pub barrier_names: Vec<String>,
    pub barrier_parties: Vec<u32>,
    pub barrier_arrived: Vec<Vec<ThreadId>>,
    pub threads: Vec<ThreadState>,
    pub finish_order: Vec<ThreadId>,
    /// Holder of the execution token.
    pub current: Option<ThreadId>,
    /// Virtual time.
    pub time: u64,
}

impl ModelState {
    pub fn for_program(program: &Program) -> Self {
        ModelState {
            program_name: program.name().to_string(),
            var_specs: program.vars().to_vec(),
            vars: program.vars().iter().map(|v| v.init).collect(),
            lock_names: program.locks().to_vec(),
            lock_owner: vec![None; program.locks().len()],
            cond_names: program.conds().to_vec(),
            cond_queues: vec![Vec::new(); program.conds().len()],
            sem_names: program.sems().iter().map(|s| s.name.clone()).collect(),
            sem_permits: program.sems().iter().map(|s| s.permits).collect(),
            barrier_names: program.barriers().iter().map(|b| b.name.clone()).collect(),
            barrier_parties: program.barriers().iter().map(|b| b.parties).collect(),
            barrier_arrived: vec![Vec::new(); program.barriers().len()],
            threads: Vec::new(),
            finish_order: Vec::new(),
            current: None,
            time: 0,
        }
    }

    pub fn thread(&mut self, t: ThreadId) -> &mut ThreadState {
        &mut self.threads[t.index()]
    }

    /// Read `var` as seen by `reader`, honouring the weak-visibility model.
    pub fn read_var(&mut self, reader: ThreadId, var: VarId) -> i64 {
        let fresh = self.vars[var.index()];
        if self.var_specs[var.index()].volatile {
            return fresh;
        }
        let cache = &mut self.threads[reader.index()].cache;
        *cache.entry(var).or_insert(fresh)
    }

    /// Write `var` (always hits the shared store; the writer's own cache is
    /// updated so it observes its own program order).
    pub fn write_var(&mut self, writer: ThreadId, var: VarId, value: i64) {
        self.vars[var.index()] = value;
        if !self.var_specs[var.index()].volatile {
            self.threads[writer.index()].cache.insert(var, value);
        }
    }

    /// Grant `lock` to `owner` (caller checked it is free) and flush the
    /// owner's cache (acquire semantics).
    pub fn acquire_lock(&mut self, owner: ThreadId, lock: LockId) {
        debug_assert!(self.lock_owner[lock.index()].is_none());
        self.lock_owner[lock.index()] = Some(owner);
        let t = self.thread(owner);
        t.held.push(lock);
        t.refresh_snapshot();
        t.flush_cache();
    }

    /// Release `lock` and wake every thread blocked on it (barging: they
    /// re-compete when scheduled). Returns `false` on misuse (not owner).
    pub fn release_lock(&mut self, owner: ThreadId, lock: LockId) -> bool {
        if self.lock_owner[lock.index()] != Some(owner) {
            return false;
        }
        self.lock_owner[lock.index()] = None;
        {
            let t = self.thread(owner);
            t.held.retain(|l| *l != lock);
            t.refresh_snapshot();
            t.flush_cache(); // release is also a sync action
        }
        for ts in self.threads.iter_mut() {
            if ts.status == Status::Blocked(BlockReason::Lock(lock)) {
                ts.status = Status::Ready;
            }
        }
        true
    }

    /// Threads currently able to run (Ready or Running), ascending.
    pub fn collect_runnable(&self, out: &mut Vec<ThreadId>) {
        out.clear();
        for (i, t) in self.threads.iter().enumerate() {
            if matches!(t.status, Status::Ready | Status::Running) {
                out.push(ThreadId(i as u32));
            }
        }
    }

    /// Earliest virtual time at which some sleeper/timed-waiter wakes.
    pub fn next_wake_time(&self) -> Option<u64> {
        self.threads
            .iter()
            .filter_map(|t| match t.status {
                Status::Sleeping(at) => Some(at),
                Status::Blocked(BlockReason::CondTimed(_, _, at)) => Some(at),
                _ => None,
            })
            .min()
    }

    /// Advance virtual time to `now`, waking due sleepers and timing out due
    /// timed waits. Returns how many threads woke.
    pub fn advance_time_to(&mut self, now: u64) -> usize {
        self.time = self.time.max(now);
        let mut woke = 0;
        for (i, t) in self.threads.iter_mut().enumerate() {
            match t.status {
                Status::Sleeping(at) if at <= now => {
                    t.status = Status::Ready;
                    woke += 1;
                }
                Status::Blocked(BlockReason::CondTimed(c, _, at)) if at <= now => {
                    t.status = Status::Ready;
                    t.timed_out = true;
                    woke += 1;
                    let tid = ThreadId(i as u32);
                    self.cond_queues[c.index()].retain(|q| *q != tid);
                }
                _ => {}
            }
        }
        woke
    }

    /// True when every thread has finished.
    pub fn all_finished(&self) -> bool {
        self.threads.iter().all(|t| t.status == Status::Finished)
    }

    /// Build the deadlock diagnostic for the current all-blocked state.
    pub fn deadlock_info(&self) -> DeadlockInfo {
        let mut waiting = Vec::new();
        // thread -> thread edges where the waited-for resource has a unique
        // owner (locks, joins); used for cycle detection.
        let mut edge: HashMap<ThreadId, ThreadId> = HashMap::new();
        for (i, t) in self.threads.iter().enumerate() {
            let tid = ThreadId(i as u32);
            let reason = match t.status {
                Status::Blocked(r) => r,
                _ => continue,
            };
            let w = match reason {
                BlockReason::Lock(l) => {
                    let owner = self.lock_owner[l.index()];
                    if let Some(o) = owner {
                        edge.insert(tid, o);
                    }
                    WaitEdge::Lock {
                        lock: self.lock_names[l.index()].clone(),
                        owner,
                    }
                }
                BlockReason::Cond(c, _) | BlockReason::CondTimed(c, _, _) => WaitEdge::Cond {
                    cond: self.cond_names[c.index()].clone(),
                },
                BlockReason::Sem(s) => WaitEdge::Sem {
                    sem: self.sem_names[s.index()].clone(),
                },
                BlockReason::Barrier(b) => WaitEdge::Barrier {
                    barrier: self.barrier_names[b.index()].clone(),
                },
                BlockReason::Join(target) => {
                    if self.threads[target.index()].status != Status::Finished {
                        edge.insert(tid, target);
                    }
                    WaitEdge::Join { target }
                }
            };
            waiting.push((tid, w));
        }
        // Find a cycle in the single-successor graph by walking from each
        // node with a visited map (graph is tiny; O(n²) worst case is fine).
        let mut cycle = Vec::new();
        'outer: for start in edge.keys().copied() {
            let mut path = vec![start];
            let mut cur = start;
            while let Some(&next) = edge.get(&cur) {
                if let Some(pos) = path.iter().position(|p| *p == next) {
                    cycle = path[pos..].to_vec();
                    break 'outer;
                }
                path.push(next);
                cur = next;
                if path.len() > self.threads.len() {
                    break;
                }
            }
        }
        DeadlockInfo { waiting, cycle }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn model_with(vars: &[(&str, i64, bool)], locks: &[&str]) -> ModelState {
        let mut b = ProgramBuilder::new("m");
        for (n, init, vol) in vars {
            if *vol {
                b.var(*n, *init);
            } else {
                b.var_nonvolatile(*n, *init);
            }
        }
        for l in locks {
            b.lock(*l);
        }
        b.entry(|_| {});
        let p = b.build();
        let mut m = ModelState::for_program(&p);
        m.threads.push(ThreadState::new("t0".into()));
        m.threads.push(ThreadState::new("t1".into()));
        m
    }

    #[test]
    fn volatile_reads_always_fresh() {
        let mut m = model_with(&[("v", 0, true)], &[]);
        m.write_var(ThreadId(0), VarId(0), 5);
        assert_eq!(m.read_var(ThreadId(1), VarId(0)), 5);
    }

    #[test]
    fn nonvolatile_reads_can_be_stale_until_flush() {
        let mut m = model_with(&[("nv", 0, false)], &[]);
        // t1 caches the initial value.
        assert_eq!(m.read_var(ThreadId(1), VarId(0)), 0);
        // t0 writes; t1 still sees its cached 0.
        m.write_var(ThreadId(0), VarId(0), 9);
        assert_eq!(m.read_var(ThreadId(1), VarId(0)), 0);
        // t0 sees its own write (program order).
        assert_eq!(m.read_var(ThreadId(0), VarId(0)), 9);
        // After a sync action t1 observes the fresh value.
        m.thread(ThreadId(1)).flush_cache();
        assert_eq!(m.read_var(ThreadId(1), VarId(0)), 9);
    }

    #[test]
    fn lock_acquire_release_and_wakeup() {
        let mut m = model_with(&[], &["l"]);
        let l = LockId(0);
        m.acquire_lock(ThreadId(0), l);
        assert_eq!(m.lock_owner[0], Some(ThreadId(0)));
        assert_eq!(&*m.thread(ThreadId(0)).held_snapshot, &[l]);
        // t1 blocks on l.
        m.thread(ThreadId(1)).status = Status::Blocked(BlockReason::Lock(l));
        assert!(m.release_lock(ThreadId(0), l));
        assert_eq!(m.thread(ThreadId(1)).status, Status::Ready);
        assert!(m.thread(ThreadId(0)).held.is_empty());
        // misuse: releasing again fails.
        assert!(!m.release_lock(ThreadId(0), l));
    }

    #[test]
    fn runnable_collection_and_all_finished() {
        let mut m = model_with(&[], &[]);
        let mut out = Vec::new();
        m.collect_runnable(&mut out);
        assert_eq!(out, vec![ThreadId(0), ThreadId(1)]);
        m.thread(ThreadId(0)).status = Status::Finished;
        m.thread(ThreadId(1)).status = Status::Sleeping(10);
        m.collect_runnable(&mut out);
        assert!(out.is_empty());
        assert!(!m.all_finished());
        m.thread(ThreadId(1)).status = Status::Finished;
        assert!(m.all_finished());
    }

    #[test]
    fn time_advance_wakes_sleepers_and_timed_waits() {
        let mut m = model_with(&[], &["l"]);
        let mut b = ProgramBuilder::new("x");
        b.cond("c");
        // Manually extend the model with one condition.
        m.cond_names.push("c".into());
        m.cond_queues.push(vec![ThreadId(1)]);
        m.thread(ThreadId(0)).status = Status::Sleeping(5);
        m.thread(ThreadId(1)).status =
            Status::Blocked(BlockReason::CondTimed(CondId(0), LockId(0), 8));
        assert_eq!(m.next_wake_time(), Some(5));
        assert_eq!(m.advance_time_to(5), 1);
        assert_eq!(m.thread(ThreadId(0)).status, Status::Ready);
        assert_eq!(m.next_wake_time(), Some(8));
        assert_eq!(m.advance_time_to(8), 1);
        assert!(m.thread(ThreadId(1)).timed_out);
        assert!(m.cond_queues[0].is_empty());
        assert_eq!(m.time, 8);
    }

    #[test]
    fn deadlock_cycle_detection_ab_ba() {
        let mut m = model_with(&[], &["a", "b"]);
        m.acquire_lock(ThreadId(0), LockId(0));
        m.acquire_lock(ThreadId(1), LockId(1));
        m.thread(ThreadId(0)).status = Status::Blocked(BlockReason::Lock(LockId(1)));
        m.thread(ThreadId(1)).status = Status::Blocked(BlockReason::Lock(LockId(0)));
        let info = m.deadlock_info();
        assert!(info.is_cyclic());
        assert_eq!(info.waiting.len(), 2);
        let mut cyc = info.cycle.clone();
        cyc.sort();
        assert_eq!(cyc, vec![ThreadId(0), ThreadId(1)]);
    }

    #[test]
    fn orphaned_cond_wait_is_noncyclic_deadlock() {
        let mut m = model_with(&[], &["l"]);
        m.cond_names.push("c".into());
        m.cond_queues.push(vec![ThreadId(0), ThreadId(1)]);
        m.thread(ThreadId(0)).status = Status::Blocked(BlockReason::Cond(CondId(0), LockId(0)));
        m.thread(ThreadId(1)).status = Status::Blocked(BlockReason::Cond(CondId(0), LockId(0)));
        let info = m.deadlock_info();
        assert!(!info.is_cyclic());
        assert_eq!(info.waiting.len(), 2);
        assert!(matches!(info.waiting[0].1, WaitEdge::Cond { .. }));
    }
}
