//! The noise-maker hook: the runtime side of §2.2's "noise makers".
//!
//! A noise maker is consulted at every *instrumented* scheduling point,
//! after the event is emitted and before the scheduler picks the next
//! thread. It may leave the schedule alone, force the current thread to
//! yield, or put it to sleep for some amount of virtual time — "it
//! simulates the behaviour of other possible schedulers" (paper, §2.2).
//!
//! Concrete heuristics live in `mtt-noise`; this module defines only the
//! interface, so the runtime does not depend on any particular heuristic
//! and researchers can plug in their own (the paper's mix-and-match goal).

use mtt_instrument::Event;

/// What the noise heuristic wants done to the current thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NoiseDecision {
    /// No interference.
    None,
    /// Deprioritize the current thread at the next pick (context-switch
    /// noise; costs no virtual time).
    Yield,
    /// Put the current thread to sleep for the given virtual-time ticks
    /// (strong noise; other threads run meanwhile).
    Sleep(u32),
}

/// Scheduling-state summary handed to the noise heuristic alongside the
/// event. Kept intentionally small: heuristics that need history keep it
/// themselves (they see every event).
#[derive(Clone, Copy, Debug)]
pub struct NoiseView {
    /// Number of threads currently able to run (including the current one).
    pub runnable: usize,
    /// Number of scheduling points so far.
    pub step: u64,
    /// Current virtual time.
    pub time: u64,
}

/// A noise heuristic.
///
/// `decide` is called with every event selected by the execution's noise
/// instrumentation plan. Heuristics must be deterministic given their seed:
/// replay and exploration rely on executions being pure functions of
/// (program, scheduler decisions, noise decisions).
pub trait NoiseMaker: Send {
    /// Decide whether to disturb the current thread at this point.
    fn decide(&mut self, ev: &Event, view: &NoiseView) -> NoiseDecision;

    /// Human-readable name for reports.
    fn name(&self) -> &str {
        "noise"
    }
}

/// The identity noise maker: never interferes. Baseline for every
/// noise-comparison experiment.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoNoise;

impl NoiseMaker for NoNoise {
    #[inline]
    fn decide(&mut self, _ev: &Event, _view: &NoiseView) -> NoiseDecision {
        NoiseDecision::None
    }

    fn name(&self) -> &str {
        "none"
    }
}

/// Closures can serve as ad-hoc noise makers in tests.
impl<F: FnMut(&Event, &NoiseView) -> NoiseDecision + Send> NoiseMaker for F {
    fn decide(&mut self, ev: &Event, view: &NoiseView) -> NoiseDecision {
        self(ev, view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtt_instrument::{Loc, Op, ThreadId};
    use std::sync::Arc;

    fn ev() -> Event {
        Event {
            seq: 0,
            time: 0,
            thread: ThreadId(0),
            loc: Loc::new("t", 1),
            op: Op::Yield,
            locks_held: Arc::from(Vec::new()),
        }
    }

    #[test]
    fn no_noise_never_interferes() {
        let mut n = NoNoise;
        let view = NoiseView {
            runnable: 3,
            step: 10,
            time: 5,
        };
        for _ in 0..100 {
            assert_eq!(n.decide(&ev(), &view), NoiseDecision::None);
        }
        assert_eq!(n.name(), "none");
    }

    #[test]
    fn closure_noise_maker() {
        let mut calls = 0;
        {
            let mut n = |_: &Event, _: &NoiseView| {
                calls += 1;
                NoiseDecision::Yield
            };
            let view = NoiseView {
                runnable: 1,
                step: 0,
                time: 0,
            };
            assert_eq!(n.decide(&ev(), &view), NoiseDecision::Yield);
        }
        assert_eq!(calls, 1);
    }
}
