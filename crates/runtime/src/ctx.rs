//! [`ThreadCtx`]: the API model programs are written against.
//!
//! Every method that touches shared state is a *scheduling point*: it emits
//! an event, lets the noise maker interfere, and lets the scheduler move the
//! execution token. Methods are annotated `#[track_caller]`, so the source
//! location of the call in the benchmark program becomes the event's
//! [`Loc`] — the automatic equivalent of a bytecode instrumentor recording
//! "the location in the program from which it was called".
//!
//! The context is the **backend seam** (see [`crate::backend`]): the same
//! program closure runs unchanged under the deterministic model engine or
//! on real OS threads. Each operation dispatches on [`CtxInner`] — the
//! model arm drives the token-passing controller in [`crate::exec`], the
//! native arm performs real loads/stores/waits via [`crate::native`].
//!
//! Misusing the model (unlocking a lock you don't hold, waiting on a
//! condition without its lock, recursive locking, joining yourself) aborts
//! the execution with [`crate::OutcomeKind::ThreadPanic`] under **both**
//! backends; such misuse is itself a bug class benchmark programs may
//! exhibit.

use crate::exec::{thread_main, Controller, ModelMisuse};
use crate::native::NativeRt;
use crate::state::{BlockReason, Status};
use mtt_instrument::{BarrierId, CondId, Loc, LockId, Op, SemId, ThreadId, VarId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::panic::panic_any;
use std::sync::Arc;

/// Capture the caller's source location as a [`Loc`].
#[track_caller]
fn caller_loc() -> Loc {
    let c = std::panic::Location::caller();
    Loc {
        file: c.file(),
        line: c.line(),
    }
}

fn misuse(msg: String) -> ! {
    panic_any(ModelMisuse(msg))
}

/// Which engine this context drives.
pub(crate) enum CtxInner {
    /// Token-passing model controller.
    Model(Arc<Controller>),
    /// Native-threads runtime.
    Native(Arc<NativeRt>),
}

/// Handle through which a model thread performs all shared-memory and
/// synchronization operations.
pub struct ThreadCtx {
    inner: CtxInner,
    me: ThreadId,
    rng: ChaCha8Rng,
}

/// The per-thread RNG seed: identical under both backends, so program
/// logic driven by [`ThreadCtx::random`] is backend-independent.
fn thread_rng(program_seed: u64, me: ThreadId) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(program_seed ^ (u64::from(me.0)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

impl ThreadCtx {
    pub(crate) fn new(ctrl: Arc<Controller>, me: ThreadId) -> Self {
        let seed = {
            let g = ctrl.mx.lock();
            g.opts.program_seed
        };
        ThreadCtx {
            inner: CtxInner::Model(ctrl),
            me,
            rng: thread_rng(seed, me),
        }
    }

    pub(crate) fn new_native(rt: Arc<NativeRt>, me: ThreadId) -> Self {
        let seed = rt.program_seed();
        ThreadCtx {
            inner: CtxInner::Native(rt),
            me,
            rng: thread_rng(seed, me),
        }
    }

    /// This thread's id.
    pub fn id(&self) -> ThreadId {
        self.me
    }

    // ------------------------------------------------------------------
    // Shared variables
    // ------------------------------------------------------------------

    /// Read a shared variable. Non-volatile variables may return a stale,
    /// thread-cached value (see [`crate::ProgramBuilder::var_nonvolatile`])
    /// under the model backend; natively they are plain racy loads with
    /// torn-read detection.
    #[track_caller]
    pub fn read(&mut self, var: VarId) -> i64 {
        self.read_at(var, caller_loc())
    }

    /// [`Self::read`] with an explicit site (used by code generators such
    /// as the MiniProg interpreter).
    pub fn read_at(&mut self, var: VarId, loc: Loc) -> i64 {
        match &self.inner {
            CtxInner::Model(ctrl) => {
                let ctrl = Arc::clone(ctrl);
                let mut g = ctrl.mx.lock();
                let value = g.model.read_var(self.me, var);
                let nd = g.emit(self.me, loc, Op::VarRead { var, value });
                ctrl.point(&mut g, self.me, nd);
                value
            }
            CtxInner::Native(rt) => rt.read_at(self.me, var, loc),
        }
    }

    /// Write a shared variable.
    #[track_caller]
    pub fn write(&mut self, var: VarId, value: i64) {
        self.write_at(var, value, caller_loc())
    }

    /// [`Self::write`] with an explicit site.
    pub fn write_at(&mut self, var: VarId, value: i64, loc: Loc) {
        match &self.inner {
            CtxInner::Model(ctrl) => {
                let ctrl = Arc::clone(ctrl);
                let mut g = ctrl.mx.lock();
                g.model.write_var(self.me, var, value);
                let nd = g.emit(self.me, loc, Op::VarWrite { var, value });
                ctrl.point(&mut g, self.me, nd);
            }
            CtxInner::Native(rt) => rt.write_at(self.me, var, value, loc),
        }
    }

    /// Atomic read-modify-write: applies `f` to the *shared-store* value
    /// with no scheduling point in between (the model analogue of an
    /// `AtomicInteger` operation). Emits a read event and a write event at
    /// a single scheduling point; returns the old value.
    #[track_caller]
    pub fn rmw<F: FnOnce(i64) -> i64>(&mut self, var: VarId, f: F) -> i64 {
        let loc = caller_loc();
        match &self.inner {
            CtxInner::Model(ctrl) => {
                let ctrl = Arc::clone(ctrl);
                let mut g = ctrl.mx.lock();
                let old = g.model.vars[var.index()];
                let new = f(old);
                g.model.vars[var.index()] = new;
                // Atomics behave as volatile accesses: refresh this thread's view.
                g.model.threads[self.me.index()].cache.insert(var, new);
                let nd = g.emit(self.me, loc, Op::VarRmw { var, old, new });
                ctrl.point(&mut g, self.me, nd);
                old
            }
            CtxInner::Native(rt) => rt.rmw_at(self.me, var, f, loc),
        }
    }

    // ------------------------------------------------------------------
    // Mutexes
    // ------------------------------------------------------------------

    /// Acquire a mutex, blocking while another thread owns it.
    #[track_caller]
    pub fn lock(&mut self, lock: LockId) {
        self.lock_at(lock, caller_loc())
    }

    /// [`Self::lock`] with an explicit site.
    pub fn lock_at(&mut self, lock: LockId, loc: Loc) {
        match &self.inner {
            CtxInner::Model(ctrl) => {
                let ctrl = Arc::clone(ctrl);
                let mut g = ctrl.mx.lock();
                let mut requested = false;
                loop {
                    match g.model.lock_owner[lock.index()] {
                        None => {
                            g.model.acquire_lock(self.me, lock);
                            let nd = g.emit(self.me, loc, Op::LockAcquire { lock });
                            ctrl.point(&mut g, self.me, nd);
                            return;
                        }
                        Some(owner) if owner == self.me => {
                            misuse(format!(
                                "thread {} locked {:?} recursively (model mutexes are non-reentrant)",
                                self.me, lock
                            ));
                        }
                        Some(_) => {
                            if !requested {
                                let _ = g.emit(self.me, loc, Op::LockRequest { lock });
                                requested = true;
                            }
                            g.model.threads[self.me.index()].status =
                                Status::Blocked(BlockReason::Lock(lock));
                            ctrl.block_and_park(&mut g, self.me);
                        }
                    }
                }
            }
            CtxInner::Native(rt) => rt.lock_at(self.me, lock, loc),
        }
    }

    /// Try to acquire a mutex without blocking. Returns whether it was
    /// acquired.
    #[track_caller]
    pub fn try_lock(&mut self, lock: LockId) -> bool {
        let loc = caller_loc();
        match &self.inner {
            CtxInner::Model(ctrl) => {
                let ctrl = Arc::clone(ctrl);
                let mut g = ctrl.mx.lock();
                match g.model.lock_owner[lock.index()] {
                    None => {
                        g.model.acquire_lock(self.me, lock);
                        let nd = g.emit(self.me, loc, Op::LockAcquire { lock });
                        ctrl.point(&mut g, self.me, nd);
                        true
                    }
                    Some(owner) if owner == self.me => {
                        misuse(format!("thread {} try_lock on lock it holds", self.me))
                    }
                    Some(_) => {
                        let nd = g.emit(self.me, loc, Op::LockTryFail { lock });
                        ctrl.point(&mut g, self.me, nd);
                        false
                    }
                }
            }
            CtxInner::Native(rt) => rt.try_lock_at(self.me, lock, loc),
        }
    }

    /// Release a mutex this thread owns.
    #[track_caller]
    pub fn unlock(&mut self, lock: LockId) {
        self.unlock_at(lock, caller_loc())
    }

    /// [`Self::unlock`] with an explicit site.
    pub fn unlock_at(&mut self, lock: LockId, loc: Loc) {
        match &self.inner {
            CtxInner::Model(ctrl) => {
                let ctrl = Arc::clone(ctrl);
                let mut g = ctrl.mx.lock();
                if !g.model.release_lock(self.me, lock) {
                    misuse(format!(
                        "thread {} released {:?} which it does not hold",
                        self.me, lock
                    ));
                }
                let nd = g.emit(self.me, loc, Op::LockRelease { lock });
                ctrl.point(&mut g, self.me, nd);
            }
            CtxInner::Native(rt) => rt.unlock_at(self.me, lock, loc),
        }
    }

    /// Run `f` with `lock` held (the model analogue of a `synchronized`
    /// block).
    #[track_caller]
    pub fn with_lock<R>(&mut self, lock: LockId, f: impl FnOnce(&mut Self) -> R) -> R {
        self.lock(lock);
        let r = f(self);
        self.unlock(lock);
        r
    }

    // ------------------------------------------------------------------
    // Condition variables
    // ------------------------------------------------------------------

    /// Wait on `cond`, atomically releasing `lock` (which must be held);
    /// re-acquires `lock` before returning.
    #[track_caller]
    pub fn wait(&mut self, cond: CondId, lock: LockId) {
        self.wait_at(cond, lock, caller_loc())
    }

    /// [`Self::wait`] with an explicit site.
    pub fn wait_at(&mut self, cond: CondId, lock: LockId, loc: Loc) {
        match &self.inner {
            CtxInner::Model(ctrl) => {
                let ctrl = Arc::clone(ctrl);
                let mut g = ctrl.mx.lock();
                self.wait_inner(&ctrl, &mut g, cond, lock, None, loc);
            }
            CtxInner::Native(rt) => {
                let rt = Arc::clone(rt);
                rt.wait_at(self.me, cond, lock, None, loc);
            }
        }
    }

    /// Like [`Self::wait`] but gives up after `ticks` units of virtual time
    /// (model) or `ticks × 100µs` of wall time (native).
    /// Returns `true` when notified, `false` on timeout.
    #[track_caller]
    pub fn timed_wait(&mut self, cond: CondId, lock: LockId, ticks: u32) -> bool {
        let loc = caller_loc();
        match &self.inner {
            CtxInner::Model(ctrl) => {
                let ctrl = Arc::clone(ctrl);
                let mut g = ctrl.mx.lock();
                let deadline = g.model.time + u64::from(ticks.max(1));
                self.wait_inner(&ctrl, &mut g, cond, lock, Some(deadline), loc)
            }
            CtxInner::Native(rt) => {
                let rt = Arc::clone(rt);
                rt.wait_at(self.me, cond, lock, Some(ticks), loc)
            }
        }
    }

    fn wait_inner(
        &mut self,
        ctrl: &Arc<Controller>,
        g: &mut parking_lot::MutexGuard<'_, crate::exec::Central>,
        cond: CondId,
        lock: LockId,
        deadline: Option<u64>,
        loc: Loc,
    ) -> bool {
        if g.model.lock_owner[lock.index()] != Some(self.me) {
            misuse(format!(
                "thread {} waits on {:?} without holding {:?}",
                self.me, cond, lock
            ));
        }
        let _ = g.emit(self.me, loc, Op::CondWait { cond, lock });
        assert!(g.model.release_lock(self.me, lock));
        g.model.cond_queues[cond.index()].push(self.me);
        g.model.threads[self.me.index()].timed_out = false;
        g.model.threads[self.me.index()].status = Status::Blocked(match deadline {
            Some(d) => BlockReason::CondTimed(cond, lock, d),
            None => BlockReason::Cond(cond, lock),
        });
        ctrl.block_and_park(g, self.me);
        let timed_out = g.model.threads[self.me.index()].timed_out;
        // Re-acquire the lock (competing with everyone else).
        loop {
            if g.model.lock_owner[lock.index()].is_none() {
                g.model.acquire_lock(self.me, lock);
                break;
            }
            g.model.threads[self.me.index()].status = Status::Blocked(BlockReason::Lock(lock));
            ctrl.block_and_park(g, self.me);
        }
        let nd = g.emit(self.me, loc, Op::CondWake { cond, lock });
        ctrl.point(g, self.me, nd);
        !timed_out
    }

    /// Wake the longest-waiting thread on `cond` (no-op — a potential *lost
    /// notification* — when nobody waits).
    #[track_caller]
    pub fn notify(&mut self, cond: CondId) {
        self.notify_at(cond, caller_loc())
    }

    /// [`Self::notify`] with an explicit site.
    pub fn notify_at(&mut self, cond: CondId, loc: Loc) {
        match &self.inner {
            CtxInner::Model(ctrl) => {
                let ctrl = Arc::clone(ctrl);
                let mut g = ctrl.mx.lock();
                if !g.model.cond_queues[cond.index()].is_empty() {
                    let t = g.model.cond_queues[cond.index()].remove(0);
                    g.model.threads[t.index()].status = Status::Ready;
                    g.model.threads[t.index()].timed_out = false;
                }
                let nd = g.emit(self.me, loc, Op::CondNotify { cond, all: false });
                ctrl.point(&mut g, self.me, nd);
            }
            CtxInner::Native(rt) => rt.notify_at(self.me, cond, false, loc),
        }
    }

    /// Wake every thread waiting on `cond`.
    #[track_caller]
    pub fn notify_all(&mut self, cond: CondId) {
        self.notify_all_at(cond, caller_loc())
    }

    /// [`Self::notify_all`] with an explicit site.
    pub fn notify_all_at(&mut self, cond: CondId, loc: Loc) {
        match &self.inner {
            CtxInner::Model(ctrl) => {
                let ctrl = Arc::clone(ctrl);
                let mut g = ctrl.mx.lock();
                let woken: Vec<ThreadId> = g.model.cond_queues[cond.index()].drain(..).collect();
                for t in woken {
                    g.model.threads[t.index()].status = Status::Ready;
                    g.model.threads[t.index()].timed_out = false;
                }
                let nd = g.emit(self.me, loc, Op::CondNotify { cond, all: true });
                ctrl.point(&mut g, self.me, nd);
            }
            CtxInner::Native(rt) => rt.notify_at(self.me, cond, true, loc),
        }
    }

    // ------------------------------------------------------------------
    // Semaphores & barriers
    // ------------------------------------------------------------------

    /// Acquire one permit, blocking while none is available.
    #[track_caller]
    pub fn sem_acquire(&mut self, sem: SemId) {
        let loc = caller_loc();
        match &self.inner {
            CtxInner::Model(ctrl) => {
                let ctrl = Arc::clone(ctrl);
                let mut g = ctrl.mx.lock();
                let mut requested = false;
                loop {
                    if g.model.sem_permits[sem.index()] > 0 {
                        g.model.sem_permits[sem.index()] -= 1;
                        g.model.threads[self.me.index()].flush_cache();
                        let nd = g.emit(self.me, loc, Op::SemAcquire { sem });
                        ctrl.point(&mut g, self.me, nd);
                        return;
                    }
                    if !requested {
                        let _ = g.emit(self.me, loc, Op::SemRequest { sem });
                        requested = true;
                    }
                    g.model.threads[self.me.index()].status =
                        Status::Blocked(BlockReason::Sem(sem));
                    ctrl.block_and_park(&mut g, self.me);
                }
            }
            CtxInner::Native(rt) => rt.sem_acquire_at(self.me, sem, loc),
        }
    }

    /// Release one permit and wake blocked acquirers.
    #[track_caller]
    pub fn sem_release(&mut self, sem: SemId) {
        let loc = caller_loc();
        match &self.inner {
            CtxInner::Model(ctrl) => {
                let ctrl = Arc::clone(ctrl);
                let mut g = ctrl.mx.lock();
                g.model.sem_permits[sem.index()] += 1;
                for t in g.model.threads.iter_mut() {
                    if t.status == Status::Blocked(BlockReason::Sem(sem)) {
                        t.status = Status::Ready;
                    }
                }
                g.model.threads[self.me.index()].flush_cache();
                let nd = g.emit(self.me, loc, Op::SemRelease { sem });
                ctrl.point(&mut g, self.me, nd);
            }
            CtxInner::Native(rt) => rt.sem_release_at(self.me, sem, loc),
        }
    }

    /// Arrive at a cyclic barrier and block until all parties have arrived.
    #[track_caller]
    pub fn barrier_wait(&mut self, barrier: BarrierId) {
        let loc = caller_loc();
        match &self.inner {
            CtxInner::Model(ctrl) => {
                let ctrl = Arc::clone(ctrl);
                let mut g = ctrl.mx.lock();
                g.model.barrier_arrived[barrier.index()].push(self.me);
                let _ = g.emit(self.me, loc, Op::BarrierArrive { barrier });
                let full = g.model.barrier_arrived[barrier.index()].len() as u32
                    == g.model.barrier_parties[barrier.index()];
                if full {
                    let arrived: Vec<ThreadId> =
                        g.model.barrier_arrived[barrier.index()].drain(..).collect();
                    for t in arrived {
                        if t != self.me {
                            g.model.threads[t.index()].status = Status::Ready;
                        }
                    }
                } else {
                    g.model.threads[self.me.index()].status =
                        Status::Blocked(BlockReason::Barrier(barrier));
                    ctrl.block_and_park(&mut g, self.me);
                }
                g.model.threads[self.me.index()].flush_cache();
                let nd = g.emit(self.me, loc, Op::BarrierPass { barrier });
                ctrl.point(&mut g, self.me, nd);
            }
            CtxInner::Native(rt) => rt.barrier_wait_at(self.me, barrier, loc),
        }
    }

    // ------------------------------------------------------------------
    // Threads
    // ------------------------------------------------------------------

    /// Spawn a child model thread running `body`. Returns its id.
    #[track_caller]
    pub fn spawn<F>(&mut self, name: impl Into<String>, body: F) -> ThreadId
    where
        F: FnOnce(&mut ThreadCtx) + Send + 'static,
    {
        let loc = caller_loc();
        match &self.inner {
            CtxInner::Model(ctrl) => {
                let ctrl = Arc::clone(ctrl);
                let mut g = ctrl.mx.lock();
                if g.model.threads.len() as u32 >= g.opts.max_threads {
                    misuse(format!(
                        "thread limit ({}) exceeded — runaway spawn loop?",
                        g.opts.max_threads
                    ));
                }
                let child = ThreadId(g.model.threads.len() as u32);
                g.model
                    .threads
                    .push(crate::state::ThreadState::new(name.into()));
                g.stats.threads += 1;
                let ctrl2 = Arc::clone(&ctrl);
                let handle = std::thread::Builder::new()
                    .name(format!("mtt-{}", child.0))
                    .spawn(move || thread_main(ctrl2, child, Box::new(body)))
                    .expect("failed to spawn model thread");
                g.os_handles.push(handle);
                let nd = g.emit(self.me, loc, Op::Spawn { child });
                ctrl.point(&mut g, self.me, nd);
                child
            }
            CtxInner::Native(rt) => {
                let rt = Arc::clone(rt);
                rt.spawn_at(self.me, name.into(), Box::new(body), loc)
            }
        }
    }

    /// Block until `target` finishes.
    #[track_caller]
    pub fn join(&mut self, target: ThreadId) {
        let loc = caller_loc();
        if target == self.me {
            misuse(format!("thread {} joining itself", self.me));
        }
        match &self.inner {
            CtxInner::Model(ctrl) => {
                let ctrl = Arc::clone(ctrl);
                let mut g = ctrl.mx.lock();
                if target.index() >= g.model.threads.len() {
                    misuse(format!("join on unknown thread {target}"));
                }
                let mut requested = false;
                loop {
                    if g.model.threads[target.index()].status == Status::Finished {
                        g.model.threads[self.me.index()].flush_cache();
                        let nd = g.emit(self.me, loc, Op::Join { target });
                        ctrl.point(&mut g, self.me, nd);
                        return;
                    }
                    if !requested {
                        let _ = g.emit(self.me, loc, Op::JoinRequest { target });
                        requested = true;
                    }
                    g.model.threads[self.me.index()].status =
                        Status::Blocked(BlockReason::Join(target));
                    ctrl.block_and_park(&mut g, self.me);
                }
            }
            CtxInner::Native(rt) => rt.join_at(self.me, target, loc),
        }
    }

    // ------------------------------------------------------------------
    // Delays, markers, assertions
    // ------------------------------------------------------------------

    /// Voluntary scheduling point.
    #[track_caller]
    pub fn yield_now(&mut self) {
        self.yield_at(caller_loc())
    }

    /// [`Self::yield_now`] with an explicit site.
    pub fn yield_at(&mut self, loc: Loc) {
        match &self.inner {
            CtxInner::Model(ctrl) => {
                let ctrl = Arc::clone(ctrl);
                let mut g = ctrl.mx.lock();
                let nd = g.emit(self.me, loc, Op::Yield);
                ctrl.point(&mut g, self.me, nd);
            }
            CtxInner::Native(rt) => rt.yield_at(self.me, loc),
        }
    }

    /// Sleep for `ticks` units of virtual time (model) or `ticks × 100µs`
    /// of wall time (native).
    #[track_caller]
    pub fn sleep(&mut self, ticks: u32) {
        self.sleep_at(ticks, caller_loc())
    }

    /// [`Self::sleep`] with an explicit site.
    pub fn sleep_at(&mut self, ticks: u32, loc: Loc) {
        match &self.inner {
            CtxInner::Model(ctrl) => {
                let ctrl = Arc::clone(ctrl);
                let mut g = ctrl.mx.lock();
                let wake = g.model.time + u64::from(ticks.max(1));
                let _ = g.emit(self.me, loc, Op::Sleep { ticks });
                g.model.threads[self.me.index()].status = Status::Sleeping(wake);
                ctrl.block_and_park(&mut g, self.me);
            }
            CtxInner::Native(rt) => rt.sleep_at(self.me, ticks, loc),
        }
    }

    /// Pure instrumentation marker: emits a [`Op::Point`] event carrying
    /// `label` and creates a scheduling point, with no semantic effect.
    #[track_caller]
    pub fn point(&mut self, label: &str) {
        let loc = caller_loc();
        match &self.inner {
            CtxInner::Model(ctrl) => {
                let ctrl = Arc::clone(ctrl);
                let mut g = ctrl.mx.lock();
                let li = g.intern_label(label);
                let nd = g.emit(self.me, loc, Op::Point { label: li });
                ctrl.point(&mut g, self.me, nd);
            }
            CtxInner::Native(rt) => rt.point_at(self.me, label, loc),
        }
    }

    /// Executable assertion. A failure is recorded in the outcome (and, if
    /// the execution was configured with `stop_on_assert`, aborts it). A
    /// passing assertion costs nothing and is not a scheduling point.
    #[track_caller]
    pub fn check(&mut self, cond: bool, label: &str) {
        self.check_at(cond, label, caller_loc())
    }

    /// [`Self::check`] with an explicit site.
    pub fn check_at(&mut self, cond: bool, label: &str, loc: Loc) {
        if cond {
            return;
        }
        match &self.inner {
            CtxInner::Model(ctrl) => {
                let ctrl = Arc::clone(ctrl);
                let mut g = ctrl.mx.lock();
                let li = g.intern_label(label);
                if g.stats.first_failure_step.is_none() {
                    g.stats.first_failure_step = Some(g.stats.sched_points);
                }
                g.assert_failures.push(AssertFailureRecord {
                    thread: self.me,
                    label: label.to_string(),
                    loc,
                });
                let nd = g.emit(self.me, loc, Op::AssertFail { label: li });
                if g.opts.stop_on_assert {
                    g.do_abort(crate::OutcomeKind::AssertStop);
                }
                ctrl.point(&mut g, self.me, nd);
            }
            CtxInner::Native(rt) => rt.check_at(self.me, label, loc),
        }
    }

    /// Deterministic pseudo-randomness for program logic: uniform in
    /// `0..bound`. Seeded from the execution's `program_seed` and this
    /// thread's id, so it is independent of the interleaving — replay-safe
    /// and identical under both backends.
    pub fn random(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "random bound must be positive");
        self.rng.gen_range(0..bound)
    }
}

type AssertFailureRecord = crate::outcome::AssertFailure;
