//! Program definition: the model-level analogue of "a Java program".
//!
//! A [`Program`] declares its shared resources (variables, locks, condition
//! variables, semaphores, barriers) up front and provides a *re-runnable*
//! entry closure. Declaring resources at build time gives every execution an
//! identical id space, which is what makes schedules replayable and traces
//! comparable across runs — the stable "bytecode" of the model world.

use mtt_instrument::{BarrierId, CondId, LockId, SemId, VarId, VarTable};
use std::sync::Arc;

use crate::ctx::ThreadCtx;

/// The entry function type. It must be `Fn` (not `FnOnce`) because
/// experiments, exploration and replay run the same program many times.
pub type EntryFn = Arc<dyn Fn(&mut ThreadCtx) + Send + Sync + 'static>;

/// Declaration of one shared variable.
#[derive(Clone, Debug)]
pub struct VarSpec {
    /// Registered name (unique within the program).
    pub name: String,
    /// Initial value at the start of every execution.
    pub init: i64,
    /// Volatile variables are always read from the shared store. Non-volatile
    /// variables may be served from the reading thread's cache until its next
    /// synchronization operation — the model of JMM-style weak visibility.
    pub volatile: bool,
}

/// Declaration of one counting semaphore.
#[derive(Clone, Debug)]
pub struct SemSpec {
    /// Registered name.
    pub name: String,
    /// Initial number of permits.
    pub permits: u32,
}

/// Declaration of one cyclic barrier.
#[derive(Clone, Debug)]
pub struct BarrierSpec {
    /// Registered name.
    pub name: String,
    /// Number of threads that must arrive before any passes.
    pub parties: u32,
}

/// An immutable, re-runnable model program.
#[derive(Clone)]
pub struct Program {
    name: Arc<str>,
    vars: Arc<[VarSpec]>,
    locks: Arc<[String]>,
    conds: Arc<[String]>,
    sems: Arc<[SemSpec]>,
    barriers: Arc<[BarrierSpec]>,
    entry: EntryFn,
}

impl Program {
    /// The program's name (appears in traces and reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared variables, in id order.
    pub fn vars(&self) -> &[VarSpec] {
        &self.vars
    }

    /// Declared lock names, in id order.
    pub fn locks(&self) -> &[String] {
        &self.locks
    }

    /// Declared condition-variable names, in id order.
    pub fn conds(&self) -> &[String] {
        &self.conds
    }

    /// Declared semaphores, in id order.
    pub fn sems(&self) -> &[SemSpec] {
        &self.sems
    }

    /// Declared barriers, in id order.
    pub fn barriers(&self) -> &[BarrierSpec] {
        &self.barriers
    }

    /// The entry closure.
    pub fn entry(&self) -> EntryFn {
        Arc::clone(&self.entry)
    }

    /// The variable-name table used to resolve instrumentation plans.
    pub fn var_table(&self) -> VarTable {
        VarTable::new(self.vars.iter().map(|v| v.name.clone()).collect())
    }

    /// Look up a variable id by name.
    pub fn var_id(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId(i as u32))
    }

    /// Look up a lock id by name.
    pub fn lock_id(&self, name: &str) -> Option<LockId> {
        self.locks
            .iter()
            .position(|l| l == name)
            .map(|i| LockId(i as u32))
    }
}

impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Program")
            .field("name", &self.name)
            .field("vars", &self.vars.len())
            .field("locks", &self.locks.len())
            .field("conds", &self.conds.len())
            .field("sems", &self.sems.len())
            .field("barriers", &self.barriers.len())
            .finish()
    }
}

/// Builder for [`Program`]s. Resource-declaration methods return the typed
/// handle the program body captures.
pub struct ProgramBuilder {
    name: String,
    vars: Vec<VarSpec>,
    locks: Vec<String>,
    conds: Vec<String>,
    sems: Vec<SemSpec>,
    barriers: Vec<BarrierSpec>,
    entry: Option<EntryFn>,
}

impl ProgramBuilder {
    /// Start building a program called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            vars: Vec::new(),
            locks: Vec::new(),
            conds: Vec::new(),
            sems: Vec::new(),
            barriers: Vec::new(),
            entry: None,
        }
    }

    /// Declare a volatile (sequentially consistent) shared variable.
    ///
    /// # Panics
    /// Panics if `name` is already declared — duplicate names would make
    /// traces ambiguous.
    pub fn var(&mut self, name: impl Into<String>, init: i64) -> VarId {
        self.var_spec(name, init, true)
    }

    /// Declare a **non-volatile** shared variable: reads may be served from
    /// the reading thread's cache until its next synchronization operation,
    /// modeling Java's weak visibility for plain fields.
    pub fn var_nonvolatile(&mut self, name: impl Into<String>, init: i64) -> VarId {
        self.var_spec(name, init, false)
    }

    fn var_spec(&mut self, name: impl Into<String>, init: i64, volatile: bool) -> VarId {
        let name = name.into();
        assert!(
            !self.vars.iter().any(|v| v.name == name),
            "duplicate variable name {name:?}"
        );
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarSpec {
            name,
            init,
            volatile,
        });
        id
    }

    /// Declare a (non-reentrant) mutex.
    pub fn lock(&mut self, name: impl Into<String>) -> LockId {
        let name = name.into();
        assert!(!self.locks.contains(&name), "duplicate lock name {name:?}");
        let id = LockId(self.locks.len() as u32);
        self.locks.push(name);
        id
    }

    /// Declare a condition variable. A condition is not bound to a lock at
    /// declaration; `wait` names both, as in POSIX.
    pub fn cond(&mut self, name: impl Into<String>) -> CondId {
        let name = name.into();
        assert!(
            !self.conds.contains(&name),
            "duplicate condition name {name:?}"
        );
        let id = CondId(self.conds.len() as u32);
        self.conds.push(name);
        id
    }

    /// Declare a counting semaphore with `permits` initial permits.
    pub fn sem(&mut self, name: impl Into<String>, permits: u32) -> SemId {
        let name = name.into();
        assert!(
            !self.sems.iter().any(|s| s.name == name),
            "duplicate semaphore name {name:?}"
        );
        let id = SemId(self.sems.len() as u32);
        self.sems.push(SemSpec { name, permits });
        id
    }

    /// Declare a cyclic barrier for `parties` threads.
    ///
    /// # Panics
    /// Panics if `parties == 0`.
    pub fn barrier(&mut self, name: impl Into<String>, parties: u32) -> BarrierId {
        assert!(parties > 0, "a barrier needs at least one party");
        let name = name.into();
        assert!(
            !self.barriers.iter().any(|b| b.name == name),
            "duplicate barrier name {name:?}"
        );
        let id = BarrierId(self.barriers.len() as u32);
        self.barriers.push(BarrierSpec { name, parties });
        id
    }

    /// Set the entry closure: the body of the program's main thread.
    pub fn entry<F: Fn(&mut ThreadCtx) + Send + Sync + 'static>(&mut self, f: F) {
        self.entry = Some(Arc::new(f));
    }

    /// Finish building.
    ///
    /// # Panics
    /// Panics if no entry closure was set.
    pub fn build(self) -> Program {
        Program {
            name: self.name.into(),
            vars: self.vars.into(),
            locks: self.locks.into(),
            conds: self.conds.into(),
            sems: self.sems.into(),
            barriers: self.barriers.into(),
            entry: self.entry.expect("ProgramBuilder::entry was never called"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = ProgramBuilder::new("p");
        assert_eq!(b.var("a", 1), VarId(0));
        assert_eq!(b.var_nonvolatile("b", 2), VarId(1));
        assert_eq!(b.lock("l0"), LockId(0));
        assert_eq!(b.lock("l1"), LockId(1));
        assert_eq!(b.cond("c"), CondId(0));
        assert_eq!(b.sem("s", 3), SemId(0));
        assert_eq!(b.barrier("bar", 2), BarrierId(0));
        b.entry(|_| {});
        let p = b.build();
        assert_eq!(p.name(), "p");
        assert_eq!(p.vars().len(), 2);
        assert!(p.vars()[0].volatile);
        assert!(!p.vars()[1].volatile);
        assert_eq!(p.var_id("b"), Some(VarId(1)));
        assert_eq!(p.lock_id("l1"), Some(LockId(1)));
        assert_eq!(p.var_id("zzz"), None);
        assert_eq!(p.var_table().name(VarId(0)), "a");
    }

    #[test]
    #[should_panic(expected = "duplicate variable name")]
    fn duplicate_var_panics() {
        let mut b = ProgramBuilder::new("p");
        b.var("x", 0);
        b.var("x", 1);
    }

    #[test]
    #[should_panic(expected = "entry was never called")]
    fn missing_entry_panics() {
        ProgramBuilder::new("p").build();
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_party_barrier_panics() {
        let mut b = ProgramBuilder::new("p");
        b.barrier("bar", 0);
    }

    #[test]
    fn program_is_cloneable_and_shares_entry() {
        let mut b = ProgramBuilder::new("p");
        b.entry(|_| {});
        let p = b.build();
        let q = p.clone();
        assert!(Arc::ptr_eq(&p.entry(), &q.entry()));
    }
}
