//! The execution engine: token-passing controller, event emission,
//! scheduling, abort protocol and the [`Execution`] builder.
//!
//! ## How control flows
//!
//! Each model thread is an OS thread parked on the controller's condition
//! variable. Exactly one model thread holds the *execution token*
//! (`ModelState::current`); it runs program code until its next `ThreadCtx`
//! operation, which (under the controller mutex) mutates the model, emits
//! events, consults the noise maker, asks the scheduler to pick the next
//! token holder, wakes everyone, and parks until the token comes back.
//!
//! Because the mutex serializes all of this and only the token holder
//! executes program code, an execution is a deterministic function of
//! (program, scheduler decisions, noise decisions) — the foundation for
//! replay and systematic exploration.
//!
//! ## Abort protocol
//!
//! Deadlock, step-limit exhaustion, `stop_on_assert` and program panics
//! all *abort* the execution: the cause is stored, every parked thread is
//! woken and unwinds with a private `AbortToken` panic payload (whose
//! printing is suppressed by a process-wide hook), and the harness thread
//! collects the [`Outcome`].

use crate::ctx::ThreadCtx;
use crate::noise::{NoNoise, NoiseDecision, NoiseMaker, NoiseView};
use crate::outcome::{AssertFailure, ExecStats, Outcome, OutcomeKind};
use crate::program::Program;
use crate::scheduler::{FifoScheduler, SchedView, Scheduler, ThreadStatusView};
use crate::state::{ModelState, Status, ThreadState};
use mtt_instrument::{Event, EventSink, InstrumentationPlan, Loc, Op, ResolvedFilter, ThreadId};
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Once};
use std::thread::JoinHandle;
use std::time::Instant;

/// Panic payload used to unwind model threads when an execution aborts.
/// Shared with the native engine, whose teardown uses the same protocol.
pub(crate) struct AbortToken;

/// Panic payload for model-API misuse by program code (e.g. releasing a
/// lock the thread does not hold). Recorded as [`OutcomeKind::ThreadPanic`].
pub(crate) struct ModelMisuse(pub String);

static HOOK_INSTALL: Once = Once::new();

/// Install (once per process) a panic hook that stays silent for the
/// runtime's internal control-flow panics and defers to the previous hook
/// for everything else.
pub(crate) fn install_quiet_hook() {
    HOOK_INSTALL.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().is::<AbortToken>() || info.payload().is::<ModelMisuse>() {
                return;
            }
            prev(info);
        }));
    });
}

/// Tunables of one execution.
#[derive(Clone, Debug)]
pub struct ExecutionOptions {
    /// Maximum scheduling points before the run is declared hung
    /// ([`OutcomeKind::StepLimit`]).
    pub max_steps: u64,
    /// Abort the execution at the first failed assertion.
    pub stop_on_assert: bool,
    /// Seed for the per-thread deterministic RNG available to program code
    /// via [`ThreadCtx::random`].
    pub program_seed: u64,
    /// Hard cap on model threads (guards against runaway spawn loops).
    pub max_threads: u32,
    /// When set, at each scheduling point one condition-variable waiter is
    /// woken *spuriously* with this probability — the POSIX/JVM liberty
    /// most schedulers never exercise. Programs that wait without a
    /// predicate loop break under it, which makes spurious injection a
    /// bug-finding technique of its own (exercised by experiment E1's
    /// suite and the runtime tests).
    ///
    /// Model-engine feature: the native backend relies on the real
    /// platform's nondeterminism instead and ignores this option.
    pub spurious_wakeups: Option<f64>,
    /// Which execution engine runs the program (default:
    /// [`RuntimeBackend::Model`]). See [`crate::backend`].
    pub backend: crate::RuntimeBackend,
    /// Wall-clock budget enforced by the native engine's watchdog;
    /// exhaustion maps to [`OutcomeKind::StepLimit`], the model's "hang"
    /// analogue. `None` means the native default (10s). The model engine
    /// never blocks on wall time and ignores this.
    pub wall_budget: Option<std::time::Duration>,
}

impl Default for ExecutionOptions {
    fn default() -> Self {
        ExecutionOptions {
            max_steps: 1_000_000,
            stop_on_assert: false,
            program_seed: 0,
            max_threads: 512,
            spurious_wakeups: None,
            backend: crate::RuntimeBackend::Model,
            wall_budget: None,
        }
    }
}

/// Everything behind the controller mutex.
pub(crate) struct Central {
    pub model: ModelState,
    pub scheduler: Box<dyn Scheduler>,
    pub noise: Box<dyn NoiseMaker>,
    pub sinks: Vec<Box<dyn EventSink>>,
    pub sink_filter: ResolvedFilter,
    pub noise_filter: ResolvedFilter,
    pub opts: ExecutionOptions,
    pub stats: ExecStats,
    pub abort: Option<OutcomeKind>,
    pub completed: bool,
    pub os_handles: Vec<JoinHandle<()>>,
    pub last_event: Option<Event>,
    pub seq: u64,
    pub labels: Vec<String>,
    pub label_idx: HashMap<String, u32>,
    pub assert_failures: Vec<AssertFailure>,
    scratch_runnable: Vec<ThreadId>,
    scratch_statuses: Vec<ThreadStatusView>,
    /// RNG driving spurious wakeups (None when the feature is off).
    spurious_rng: Option<rand_chacha::ChaCha8Rng>,
}

impl Central {
    /// Intern a label string, returning its dense index.
    pub fn intern_label(&mut self, label: &str) -> u32 {
        if let Some(&i) = self.label_idx.get(label) {
            return i;
        }
        let i = self.labels.len() as u32;
        self.labels.push(label.to_string());
        self.label_idx.insert(label.to_string(), i);
        i
    }

    /// Emit one event: dispatch to the scheduler's observation hook, the
    /// sinks (subject to the sink plan) and the noise maker (subject to the
    /// noise plan). Returns the noise decision for the caller to apply.
    pub fn emit(&mut self, me: ThreadId, loc: Loc, op: Op) -> NoiseDecision {
        self.stats.events += 1;
        let ev = Event {
            seq: self.seq,
            time: self.model.time,
            thread: me,
            loc,
            op,
            locks_held: Arc::clone(&self.model.threads[me.index()].held_snapshot),
        };
        self.seq += 1;
        self.scheduler.on_event(&ev);
        if self.sink_filter.selects(&ev) {
            for s in &mut self.sinks {
                s.on_event(&ev);
            }
        }
        let decision = if self.noise_filter.selects(&ev) {
            self.model.collect_runnable(&mut self.scratch_runnable);
            let view = NoiseView {
                runnable: self.scratch_runnable.len(),
                step: self.stats.sched_points,
                time: self.model.time,
            };
            self.noise.decide(&ev, &view)
        } else {
            NoiseDecision::None
        };
        self.last_event = Some(ev);
        decision
    }

    /// Record an abort cause (first one wins). Failure aborts (anything but
    /// step-limit exhaustion, which is a budget artifact) stamp
    /// `first_failure_step` if no assertion failed earlier.
    pub fn do_abort(&mut self, kind: OutcomeKind) {
        if self.abort.is_none() {
            if !matches!(kind, OutcomeKind::StepLimit) && self.stats.first_failure_step.is_none() {
                self.stats.first_failure_step = Some(self.stats.sched_points);
            }
            self.abort = Some(kind);
        }
    }

    /// With the configured probability, wake one condition waiter without
    /// a notify — a spurious wakeup. The woken thread re-acquires its lock
    /// and returns from `wait` as if notified; correct code re-checks its
    /// predicate, buggy code proceeds on a false assumption.
    fn maybe_spurious_wakeup(&mut self) {
        use crate::state::BlockReason;
        use rand::Rng;
        let Some(rng) = self.spurious_rng.as_mut() else {
            return;
        };
        let p = self.opts.spurious_wakeups.unwrap_or(0.0);
        if p <= 0.0 || !rng.gen_bool(p) {
            return;
        }
        // Collect cond waiters deterministically (id order).
        let waiters: Vec<usize> = self
            .model
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                matches!(
                    t.status,
                    Status::Blocked(BlockReason::Cond(_, _))
                        | Status::Blocked(BlockReason::CondTimed(_, _, _))
                )
            })
            .map(|(i, _)| i)
            .collect();
        if waiters.is_empty() {
            return;
        }
        let victim = waiters[rng.gen_range(0..waiters.len())];
        let tid = ThreadId(victim as u32);
        if let Status::Blocked(BlockReason::Cond(c, _) | BlockReason::CondTimed(c, _, _)) =
            self.model.threads[victim].status
        {
            self.model.cond_queues[c.index()].retain(|q| *q != tid);
            self.model.threads[victim].timed_out = false;
            self.model.threads[victim].status = Status::Ready;
            self.stats.spurious_wakeups += 1;
        }
    }

    /// Core scheduling step: find the runnable set (advancing virtual time
    /// if everyone is asleep), detect termination and deadlock, and hand the
    /// token to the scheduler's pick.
    ///
    /// `prev` is the thread whose operation triggered this point; its status
    /// must already reflect the operation's effect (Ready / Blocked /
    /// Sleeping / Finished).
    pub fn schedule_next(&mut self, prev: Option<ThreadId>, forced_yield: bool) {
        self.stats.sched_points += 1;
        if self.stats.sched_points > self.opts.max_steps {
            self.do_abort(OutcomeKind::StepLimit);
            return;
        }
        self.model.current = None;
        // Virtual time advances one tick per scheduling point, so sleepers
        // and timed waits make progress even while other threads stay busy;
        // the loop below additionally fast-forwards when everyone is asleep.
        let now = self.model.time + 1;
        self.model.advance_time_to(now);
        self.maybe_spurious_wakeup();
        loop {
            self.model.collect_runnable(&mut self.scratch_runnable);
            if !self.scratch_runnable.is_empty() {
                break;
            }
            if self.model.all_finished() {
                self.completed = true;
                return;
            }
            if let Some(wake) = self.model.next_wake_time() {
                self.model.advance_time_to(wake);
                continue;
            }
            let info = self.model.deadlock_info();
            self.do_abort(OutcomeKind::Deadlock(info));
            return;
        }
        self.scratch_statuses.clear();
        for t in &self.model.threads {
            self.scratch_statuses.push(match t.status {
                Status::Ready | Status::Running => ThreadStatusView::Ready,
                Status::Blocked(_) => ThreadStatusView::Blocked,
                Status::Sleeping(_) => ThreadStatusView::Sleeping,
                Status::Finished => ThreadStatusView::Finished,
            });
        }
        let view = SchedView {
            runnable: &self.scratch_runnable,
            prev,
            forced_yield,
            step: self.stats.sched_points,
            time: self.model.time,
            statuses: &self.scratch_statuses,
            last_event: self.last_event.as_ref(),
        };
        let mut pick = self.scheduler.pick(&view);
        if self.scratch_runnable.binary_search(&pick).is_err() {
            self.stats.scheduler_faults += 1;
            pick = self.scratch_runnable[0];
        }
        if prev.is_some() && prev != Some(pick) {
            self.stats.context_switches += 1;
        }
        self.model.threads[pick.index()].status = Status::Running;
        self.model.current = Some(pick);
    }
}

/// The controller: the mutex-protected central state plus the condition
/// variable every model thread parks on.
pub(crate) struct Controller {
    pub mx: Mutex<Central>,
    pub cv: Condvar,
}

impl Controller {
    /// Park `me` until it holds the execution token (or unwind on abort).
    /// Must be called with the guard held; returns with the guard held.
    pub fn park(&self, g: &mut MutexGuard<'_, Central>, me: ThreadId) {
        loop {
            if g.abort.is_some() {
                panic::panic_any(AbortToken);
            }
            let st = g.model.threads[me.index()].status;
            if st == Status::Finished {
                return;
            }
            if g.model.current == Some(me) && st == Status::Running {
                return;
            }
            self.cv.wait(g);
        }
    }

    /// Apply a noise decision to `me`, mark it schedulable again if it is
    /// still running, run one scheduling step, wake everyone, and park until
    /// the token returns. The tail of every non-blocking operation.
    pub fn point(&self, g: &mut MutexGuard<'_, Central>, me: ThreadId, nd: NoiseDecision) {
        let mut forced_yield = false;
        match nd {
            NoiseDecision::None => {}
            NoiseDecision::Yield => {
                forced_yield = true;
                g.stats.noise_injections += 1;
                g.stats.forced_yields += 1;
            }
            NoiseDecision::Sleep(ticks) => {
                let wake = g.model.time + u64::from(ticks.max(1));
                g.model.threads[me.index()].status = Status::Sleeping(wake);
                g.stats.noise_injections += 1;
            }
        }
        if g.model.threads[me.index()].status == Status::Running {
            g.model.threads[me.index()].status = Status::Ready;
        }
        g.schedule_next(Some(me), forced_yield);
        self.cv.notify_all();
        self.park(g, me);
    }

    /// Block variant: `me`'s status has been set to a blocked state by the
    /// caller; schedule someone else and park until woken *and* scheduled.
    pub fn block_and_park(&self, g: &mut MutexGuard<'_, Central>, me: ThreadId) {
        g.schedule_next(Some(me), false);
        self.cv.notify_all();
        self.park(g, me);
    }
}

/// Body run by each model thread's OS thread.
pub(crate) fn thread_main(
    ctrl: Arc<Controller>,
    me: ThreadId,
    body: Box<dyn FnOnce(&mut ThreadCtx) + Send>,
) {
    // Wait to be scheduled for the first time, then announce ThreadStart.
    let start_ok = {
        let mut g = ctrl.mx.lock();
        let parked = panic::catch_unwind(AssertUnwindSafe(|| {
            ctrl.park(&mut g, me);
            g.model.threads[me.index()].flush_cache(); // start = sync point
            let nd = g.emit(me, Loc::SYNTHETIC, Op::ThreadStart);
            ctrl.point(&mut g, me, nd);
        }));
        parked.is_ok()
    };
    if !start_ok {
        return; // aborted before the thread ever ran
    }
    let mut ctx = ThreadCtx::new(Arc::clone(&ctrl), me);
    let result = panic::catch_unwind(AssertUnwindSafe(|| body(&mut ctx)));
    match result {
        Ok(()) => {
            // Normal completion: announce exit, wake joiners, hand off.
            let exited = panic::catch_unwind(AssertUnwindSafe(|| {
                let mut g = ctrl.mx.lock();
                let _ = g.emit(me, Loc::SYNTHETIC, Op::ThreadExit);
                g.model.threads[me.index()].status = Status::Finished;
                g.model.finish_order.push(me);
                for t in g.model.threads.iter_mut() {
                    if t.status == Status::Blocked(crate::state::BlockReason::Join(me)) {
                        t.status = Status::Ready;
                    }
                }
                if g.model.all_finished() {
                    g.completed = true;
                } else {
                    g.schedule_next(Some(me), false);
                }
                ctrl.cv.notify_all();
            }));
            let _ = exited; // a concurrent abort during exit is fine
        }
        Err(payload) => {
            if payload.is::<AbortToken>() {
                return; // cooperative teardown
            }
            let message = if let Some(m) = payload.downcast_ref::<ModelMisuse>() {
                m.0.clone()
            } else if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            let mut g = ctrl.mx.lock();
            g.do_abort(OutcomeKind::ThreadPanic {
                thread: me,
                message,
            });
            ctrl.cv.notify_all();
        }
    }
}

/// Builder-style handle for running one execution of a [`Program`].
///
/// Defaults: [`FifoScheduler`] (the deterministic "unit test" scheduler),
/// no noise, no sinks, full instrumentation, 1M-step budget.
pub struct Execution<'p> {
    program: &'p Program,
    scheduler: Box<dyn Scheduler>,
    noise: Box<dyn NoiseMaker>,
    sinks: Vec<Box<dyn EventSink>>,
    sink_plan: Option<InstrumentationPlan>,
    noise_plan: Option<InstrumentationPlan>,
    opts: ExecutionOptions,
}

impl<'p> Execution<'p> {
    /// Prepare an execution of `program` with default settings.
    pub fn new(program: &'p Program) -> Self {
        Execution {
            program,
            scheduler: Box::new(FifoScheduler),
            noise: Box::new(NoNoise),
            sinks: Vec::new(),
            sink_plan: None,
            noise_plan: None,
            opts: ExecutionOptions::default(),
        }
    }

    /// Use this scheduler.
    pub fn scheduler(mut self, s: Box<dyn Scheduler>) -> Self {
        self.scheduler = s;
        self
    }

    /// Use this noise maker.
    pub fn noise(mut self, n: Box<dyn NoiseMaker>) -> Self {
        self.noise = n;
        self
    }

    /// Attach an event sink (may be called repeatedly; sinks see events in
    /// attachment order).
    pub fn sink(mut self, s: Box<dyn EventSink>) -> Self {
        self.sinks.push(s);
        self
    }

    /// Instrumentation plan governing what the sinks see (default: all).
    pub fn plan(mut self, p: InstrumentationPlan) -> Self {
        self.sink_plan = Some(p);
        self
    }

    /// Instrumentation plan governing where the noise maker is consulted
    /// (default: all) — the paper's "where calls to the heuristic should be
    /// embedded" research knob.
    pub fn noise_plan(mut self, p: InstrumentationPlan) -> Self {
        self.noise_plan = Some(p);
        self
    }

    /// Replace all options at once.
    pub fn options(mut self, opts: ExecutionOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Set the scheduling-point budget.
    pub fn max_steps(mut self, n: u64) -> Self {
        self.opts.max_steps = n;
        self
    }

    /// Abort at the first failed assertion.
    pub fn stop_on_assert(mut self, yes: bool) -> Self {
        self.opts.stop_on_assert = yes;
        self
    }

    /// Seed for program-visible randomness ([`ThreadCtx::random`]).
    pub fn program_seed(mut self, seed: u64) -> Self {
        self.opts.program_seed = seed;
        self
    }

    /// Enable spurious condition-variable wakeups with the given per-point
    /// probability (see [`ExecutionOptions::spurious_wakeups`]).
    pub fn spurious_wakeups(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability required");
        self.opts.spurious_wakeups = Some(p);
        self
    }

    /// Choose the execution engine (see [`crate::backend`]). The native
    /// engine ignores the configured scheduler — the OS schedules.
    pub fn backend(mut self, b: crate::RuntimeBackend) -> Self {
        self.opts.backend = b;
        self
    }

    /// Wall-clock budget for the native engine's watchdog (see
    /// [`ExecutionOptions::wall_budget`]).
    pub fn wall_budget(mut self, d: std::time::Duration) -> Self {
        self.opts.wall_budget = Some(d);
        self
    }

    /// Run the program to completion (or deadlock / step limit / panic) and
    /// return the outcome.
    pub fn run(self) -> Outcome {
        install_quiet_hook();
        let started = Instant::now();
        let var_table = self.program.var_table();
        let sink_filter = self
            .sink_plan
            .map_or_else(ResolvedFilter::pass_all, |p| p.resolve(&var_table));
        let noise_filter = self
            .noise_plan
            .map_or_else(ResolvedFilter::pass_all, |p| p.resolve(&var_table));
        if self.opts.backend.is_native() {
            return crate::native::run_native(
                self.program,
                self.noise,
                self.sinks,
                sink_filter,
                noise_filter,
                self.opts,
            );
        }
        let central = Central {
            model: ModelState::for_program(self.program),
            scheduler: self.scheduler,
            noise: self.noise,
            sinks: self.sinks,
            sink_filter,
            noise_filter,
            opts: self.opts.clone(),
            stats: ExecStats::default(),
            abort: None,
            completed: false,
            os_handles: Vec::new(),
            last_event: None,
            seq: 0,
            labels: Vec::new(),
            label_idx: HashMap::new(),
            assert_failures: Vec::new(),
            scratch_runnable: Vec::new(),
            scratch_statuses: Vec::new(),
            spurious_rng: self.opts.spurious_wakeups.map(|_| {
                use rand::SeedableRng;
                rand_chacha::ChaCha8Rng::seed_from_u64(
                    self.opts.program_seed ^ 0x5973_7075_7269_6f75,
                )
            }),
        };
        let ctrl = Arc::new(Controller {
            mx: Mutex::new(central),
            cv: Condvar::new(),
        });

        // Register and launch the main model thread, then hand it the token.
        {
            let mut g = ctrl.mx.lock();
            g.model.threads.push(ThreadState::new("main".to_string()));
            g.stats.threads = 1;
            let entry = self.program.entry();
            let ctrl2 = Arc::clone(&ctrl);
            let handle = std::thread::Builder::new()
                .name("mtt-main".to_string())
                .spawn(move || thread_main(ctrl2, ThreadId::MAIN, Box::new(move |ctx| entry(ctx))))
                .expect("failed to spawn model thread");
            g.os_handles.push(handle);
            g.schedule_next(None, false);
            ctrl.cv.notify_all();
        }

        // Wait for completion or abort.
        let handles = {
            let mut g = ctrl.mx.lock();
            while !(g.completed || g.abort.is_some()) {
                ctrl.cv.wait(&mut g);
            }
            // In case of abort, make sure every parked thread re-checks.
            ctrl.cv.notify_all();
            std::mem::take(&mut g.os_handles)
        };
        for h in handles {
            let _ = h.join();
        }

        // Assemble the outcome.
        let mut g = ctrl.mx.lock();
        for s in &mut g.sinks {
            s.finish();
        }
        let kind = g.abort.take().unwrap_or(OutcomeKind::Completed);
        g.stats.virtual_time = g.model.time;
        g.stats.wall = started.elapsed();
        Outcome {
            program: g.model.program_name.clone(),
            kind,
            final_vars: g.model.vars.clone(),
            var_table,
            finish_order: g.model.finish_order.clone(),
            thread_names: g.model.threads.iter().map(|t| t.name.clone()).collect(),
            assert_failures: g.assert_failures.clone(),
            stats: g.stats.clone(),
        }
    }
}
