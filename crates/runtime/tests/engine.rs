//! End-to-end semantics tests for the controlled runtime: every primitive,
//! every outcome kind, determinism, and the instrumentation hookup.

use mtt_instrument::{shared, CountingSink, OpClass, VecSink};
use mtt_runtime::{
    Execution, FifoScheduler, NoiseDecision, Op, Outcome, OutcomeKind, Program, ProgramBuilder,
    RandomScheduler, RoundRobinScheduler, ThreadId,
};

/// Two unsynchronized increments: the canonical lost-update race.
fn racy_counter(increments_per_thread: u32, threads: u32) -> Program {
    let mut b = ProgramBuilder::new("racy_counter");
    let x = b.var("x", 0);
    b.entry(move |ctx| {
        let kids: Vec<ThreadId> = (0..threads)
            .map(|i| {
                ctx.spawn(format!("inc{i}"), move |ctx| {
                    for _ in 0..increments_per_thread {
                        let v = ctx.read(x);
                        ctx.write(x, v + 1);
                    }
                })
            })
            .collect();
        for k in kids {
            ctx.join(k);
        }
    });
    b.build()
}

#[test]
fn fifo_scheduler_never_loses_updates() {
    // The deterministic "unit test" scheduler runs each thread to
    // completion: the race never fires (the paper's core motivation).
    for _ in 0..5 {
        let p = racy_counter(10, 3);
        let o = Execution::new(&p).scheduler(Box::new(FifoScheduler)).run();
        assert!(o.ok(), "{:?}", o.kind);
        assert_eq!(o.var("x"), Some(30));
    }
}

#[test]
fn round_robin_loses_updates() {
    // Maximal interleaving makes the lost update deterministic.
    let p = racy_counter(10, 3);
    let o = Execution::new(&p)
        .scheduler(Box::new(RoundRobinScheduler::new()))
        .run();
    assert!(o.ok());
    assert!(
        o.var("x").unwrap() < 30,
        "expected lost updates, got {:?}",
        o.var("x")
    );
}

#[test]
fn random_scheduling_finds_the_race_sometimes() {
    let mut lost = 0;
    for seed in 0..40 {
        let p = racy_counter(2, 2);
        let o = Execution::new(&p)
            .scheduler(Box::new(RandomScheduler::new(seed)))
            .run();
        if o.var("x").unwrap() < 4 {
            lost += 1;
        }
    }
    assert!(lost > 0, "race never manifested in 40 random runs");
    assert!(lost < 40, "race manifested in every run");
}

#[test]
fn rmw_is_atomic() {
    let mut b = ProgramBuilder::new("atomic_counter");
    let x = b.var("x", 0);
    b.entry(move |ctx| {
        let kids: Vec<ThreadId> = (0..3)
            .map(|i| {
                ctx.spawn(format!("inc{i}"), move |ctx| {
                    for _ in 0..10 {
                        ctx.rmw(x, |v| v + 1);
                    }
                })
            })
            .collect();
        for k in kids {
            ctx.join(k);
        }
    });
    let p = b.build();
    for seed in 0..10 {
        let o = Execution::new(&p)
            .scheduler(Box::new(RandomScheduler::new(seed)))
            .run();
        assert_eq!(o.var("x"), Some(30), "rmw lost an update at seed {seed}");
    }
}

#[test]
fn mutex_protects_critical_section() {
    let mut b = ProgramBuilder::new("locked_counter");
    let x = b.var("x", 0);
    let l = b.lock("l");
    b.entry(move |ctx| {
        let kids: Vec<ThreadId> = (0..3)
            .map(|i| {
                ctx.spawn(format!("inc{i}"), move |ctx| {
                    for _ in 0..5 {
                        ctx.lock(l);
                        let v = ctx.read(x);
                        ctx.write(x, v + 1);
                        ctx.unlock(l);
                    }
                })
            })
            .collect();
        for k in kids {
            ctx.join(k);
        }
    });
    let p = b.build();
    for seed in 0..10 {
        let o = Execution::new(&p)
            .scheduler(Box::new(RandomScheduler::new(seed)))
            .run();
        assert!(o.ok());
        assert_eq!(
            o.var("x"),
            Some(15),
            "lock failed to protect at seed {seed}"
        );
    }
}

fn ab_ba_program() -> Program {
    let mut b = ProgramBuilder::new("ab_ba");
    let a = b.lock("a");
    let l_b = b.lock("b");
    b.entry(move |ctx| {
        let t1 = ctx.spawn("t1", move |ctx| {
            ctx.lock(a);
            ctx.yield_now();
            ctx.lock(l_b);
            ctx.unlock(l_b);
            ctx.unlock(a);
        });
        let t2 = ctx.spawn("t2", move |ctx| {
            ctx.lock(l_b);
            ctx.yield_now();
            ctx.lock(a);
            ctx.unlock(a);
            ctx.unlock(l_b);
        });
        ctx.join(t1);
        ctx.join(t2);
    });
    b.build()
}

#[test]
fn ab_ba_deadlock_is_detected_under_interleaving() {
    // Round-robin forces the deadly interleaving deterministically.
    let p = ab_ba_program();
    let o = Execution::new(&p)
        .scheduler(Box::new(RoundRobinScheduler::new()))
        .run();
    match &o.kind {
        OutcomeKind::Deadlock(info) => {
            assert!(info.is_cyclic(), "AB-BA must be a cyclic deadlock");
            assert_eq!(info.cycle.len(), 2);
        }
        k => panic!("expected deadlock, got {k:?}"),
    }
}

#[test]
fn ab_ba_completes_under_fifo() {
    let p = ab_ba_program();
    let o = Execution::new(&p).scheduler(Box::new(FifoScheduler)).run();
    assert!(
        o.ok(),
        "FIFO should serialize past the deadlock: {:?}",
        o.kind
    );
}

#[test]
fn cond_wait_notify_roundtrip() {
    let mut b = ProgramBuilder::new("pingpong");
    let flag = b.var("flag", 0);
    let done = b.var("done", 0);
    let l = b.lock("l");
    let c = b.cond("c");
    b.entry(move |ctx| {
        let waiter = ctx.spawn("waiter", move |ctx| {
            ctx.lock(l);
            while ctx.read(flag) == 0 {
                ctx.wait(c, l);
            }
            ctx.write(done, 1);
            ctx.unlock(l);
        });
        let setter = ctx.spawn("setter", move |ctx| {
            ctx.lock(l);
            ctx.write(flag, 1);
            ctx.notify(c);
            ctx.unlock(l);
        });
        ctx.join(waiter);
        ctx.join(setter);
    });
    let p = b.build();
    for seed in 0..20 {
        let o = Execution::new(&p)
            .scheduler(Box::new(RandomScheduler::new(seed)))
            .run();
        assert!(o.ok(), "seed {seed}: {:?}", o.kind);
        assert_eq!(o.var("done"), Some(1));
    }
}

#[test]
fn missed_signal_without_predicate_deadlocks() {
    // Classic bug: wait without re-checking a predicate + notify that can
    // happen first. Under an adversarial schedule the waiter sleeps forever.
    let mut b = ProgramBuilder::new("missed_signal");
    let l = b.lock("l");
    let c = b.cond("c");
    b.entry(move |ctx| {
        let waiter = ctx.spawn("waiter", move |ctx| {
            ctx.lock(l);
            ctx.wait(c, l); // BUG: no predicate loop
            ctx.unlock(l);
        });
        let notifier = ctx.spawn("notifier", move |ctx| {
            ctx.notify(c); // may fire before the wait
        });
        ctx.join(waiter);
        ctx.join(notifier);
    });
    let p = b.build();
    // FIFO runs the waiter... actually spawn order decides; scan seeds for
    // both behaviours.
    let mut deadlocks = 0;
    let mut completions = 0;
    for seed in 0..40 {
        let o = Execution::new(&p)
            .scheduler(Box::new(RandomScheduler::new(seed)))
            .run();
        match o.kind {
            OutcomeKind::Deadlock(ref info) => {
                assert!(!info.is_cyclic());
                deadlocks += 1;
            }
            OutcomeKind::Completed => completions += 1,
            ref k => panic!("unexpected outcome {k:?}"),
        }
    }
    assert!(deadlocks > 0, "missed signal never manifested");
    assert!(completions > 0, "signal was always missed");
}

#[test]
fn timed_wait_times_out() {
    let mut b = ProgramBuilder::new("timed");
    let got = b.var("notified", -1);
    let l = b.lock("l");
    let c = b.cond("c");
    b.entry(move |ctx| {
        ctx.lock(l);
        let notified = ctx.timed_wait(c, l, 10);
        ctx.write(got, i64::from(notified));
        ctx.unlock(l);
    });
    let p = b.build();
    let o = Execution::new(&p).run();
    assert!(o.ok(), "{:?}", o.kind);
    assert_eq!(o.var("notified"), Some(0), "nobody notifies: must time out");
    assert!(
        o.stats.virtual_time >= 10,
        "virtual time must have advanced"
    );
}

#[test]
fn notify_all_wakes_every_waiter() {
    let mut b = ProgramBuilder::new("broadcast");
    let go = b.var("go", 0);
    let woke = b.var("woke", 0);
    let l = b.lock("l");
    let c = b.cond("c");
    b.entry(move |ctx| {
        let kids: Vec<ThreadId> = (0..3)
            .map(|i| {
                ctx.spawn(format!("w{i}"), move |ctx| {
                    ctx.lock(l);
                    while ctx.read(go) == 0 {
                        ctx.wait(c, l);
                    }
                    let w = ctx.read(woke);
                    ctx.write(woke, w + 1);
                    ctx.unlock(l);
                })
            })
            .collect();
        ctx.sleep(5); // let waiters park
        ctx.lock(l);
        ctx.write(go, 1);
        ctx.notify_all(c);
        ctx.unlock(l);
        for k in kids {
            ctx.join(k);
        }
    });
    let p = b.build();
    for seed in 0..10 {
        let o = Execution::new(&p)
            .scheduler(Box::new(RandomScheduler::new(seed)))
            .run();
        assert!(o.ok(), "seed {seed}: {:?}", o.kind);
        assert_eq!(o.var("woke"), Some(3));
    }
}

#[test]
fn semaphore_bounds_concurrency() {
    let mut b = ProgramBuilder::new("sem");
    let inside = b.var("inside", 0);
    let max_seen = b.var("max_seen", 0);
    let s = b.sem("s", 2);
    b.entry(move |ctx| {
        let kids: Vec<ThreadId> = (0..5)
            .map(|i| {
                ctx.spawn(format!("t{i}"), move |ctx| {
                    ctx.sem_acquire(s);
                    let n = ctx.rmw(inside, |v| v + 1) + 1;
                    ctx.rmw(max_seen, |m| m.max(n));
                    ctx.yield_now();
                    ctx.rmw(inside, |v| v - 1);
                    ctx.sem_release(s);
                })
            })
            .collect();
        for k in kids {
            ctx.join(k);
        }
    });
    let p = b.build();
    for seed in 0..15 {
        let o = Execution::new(&p)
            .scheduler(Box::new(RandomScheduler::new(seed)))
            .run();
        assert!(o.ok(), "seed {seed}: {:?}", o.kind);
        assert!(
            o.var("max_seen").unwrap() <= 2,
            "semaphore admitted {} threads",
            o.var("max_seen").unwrap()
        );
        assert_eq!(o.var("inside"), Some(0));
    }
}

#[test]
fn barrier_synchronizes_phases() {
    let mut b = ProgramBuilder::new("barrier");
    let phase1 = b.var("phase1", 0);
    let ok = b.var("ok", 0);
    let bar = b.barrier("bar", 3);
    b.entry(move |ctx| {
        let kids: Vec<ThreadId> = (0..3)
            .map(|i| {
                ctx.spawn(format!("t{i}"), move |ctx| {
                    ctx.rmw(phase1, |v| v + 1);
                    ctx.barrier_wait(bar);
                    // After the barrier every phase-1 increment is visible.
                    if ctx.read(phase1) == 3 {
                        ctx.rmw(ok, |v| v + 1);
                    }
                })
            })
            .collect();
        for k in kids {
            ctx.join(k);
        }
    });
    let p = b.build();
    for seed in 0..15 {
        let o = Execution::new(&p)
            .scheduler(Box::new(RandomScheduler::new(seed)))
            .run();
        assert!(o.ok(), "seed {seed}: {:?}", o.kind);
        assert_eq!(o.var("ok"), Some(3), "seed {seed}");
    }
}

#[test]
fn try_lock_fails_without_blocking() {
    let mut b = ProgramBuilder::new("trylock");
    let failures = b.var("failures", 0);
    let l = b.lock("l");
    b.entry(move |ctx| {
        let holder = ctx.spawn("holder", move |ctx| {
            ctx.lock(l);
            ctx.sleep(10);
            ctx.unlock(l);
        });
        let trier = ctx.spawn("trier", move |ctx| {
            ctx.sleep(2); // let the holder take the lock
            if !ctx.try_lock(l) {
                let f = ctx.read(failures);
                ctx.write(failures, f + 1);
            } else {
                ctx.unlock(l);
            }
        });
        ctx.join(holder);
        ctx.join(trier);
    });
    let p = b.build();
    let o = Execution::new(&p).run();
    assert!(o.ok(), "{:?}", o.kind);
    assert_eq!(o.var("failures"), Some(1));
}

#[test]
fn step_limit_catches_model_livelock() {
    let mut b = ProgramBuilder::new("spin");
    let flag = b.var("flag", 0);
    b.entry(move |ctx| {
        while ctx.read(flag) == 0 {
            ctx.yield_now();
        }
    });
    let p = b.build();
    let o = Execution::new(&p).max_steps(500).run();
    assert!(o.hung(), "expected step-limit, got {:?}", o.kind);
}

#[test]
fn nonvolatile_stop_flag_hangs_volatile_terminates() {
    // The Java non-volatile stop-flag bug, in the model's visibility terms.
    let build = |volatile: bool| {
        let mut b = ProgramBuilder::new("stopflag");
        let flag = if volatile {
            b.var("flag", 0)
        } else {
            b.var_nonvolatile("flag", 0)
        };
        b.entry(move |ctx| {
            let worker = ctx.spawn("worker", move |ctx| {
                while ctx.read(flag) == 0 {
                    ctx.yield_now(); // no sync op: cache never flushed
                }
            });
            ctx.sleep(5); // ensure the worker caches the initial value first
            ctx.write(flag, 1);
            ctx.join(worker);
        });
        b.build()
    };
    let hung = Execution::new(&build(false))
        .scheduler(Box::new(RoundRobinScheduler::new()))
        .max_steps(2_000)
        .run();
    assert!(hung.hung(), "non-volatile flag must hang: {:?}", hung.kind);
    let fine = Execution::new(&build(true))
        .scheduler(Box::new(RoundRobinScheduler::new()))
        .max_steps(2_000)
        .run();
    assert!(fine.ok(), "volatile flag must terminate: {:?}", fine.kind);
}

#[test]
fn assertion_failures_are_recorded() {
    let mut b = ProgramBuilder::new("asserts");
    let x = b.var("x", 1);
    b.entry(move |ctx| {
        let v = ctx.read(x);
        ctx.check(v == 2, "x-should-be-two");
        ctx.check(v == 1, "x-is-one"); // passes, not recorded
    });
    let p = b.build();
    let o = Execution::new(&p).run();
    assert!(matches!(o.kind, OutcomeKind::Completed));
    assert_eq!(o.assert_failures.len(), 1);
    assert_eq!(o.assert_failures[0].label, "x-should-be-two");
    assert!(!o.ok());
}

#[test]
fn stop_on_assert_aborts_early() {
    let mut b = ProgramBuilder::new("stop_on_assert");
    let after = b.var("after", 0);
    b.entry(move |ctx| {
        ctx.check(false, "boom");
        ctx.write(after, 1); // unreachable when stopping on assert
    });
    let p = b.build();
    let o = Execution::new(&p).stop_on_assert(true).run();
    assert!(matches!(o.kind, OutcomeKind::AssertStop), "{:?}", o.kind);
    assert_eq!(o.var("after"), Some(0));
}

#[test]
fn model_misuse_is_a_thread_panic_outcome() {
    let mut b = ProgramBuilder::new("misuse");
    let l = b.lock("l");
    b.entry(move |ctx| {
        ctx.unlock(l); // never acquired
    });
    let p = b.build();
    let o = Execution::new(&p).run();
    match o.kind {
        OutcomeKind::ThreadPanic {
            thread,
            ref message,
        } => {
            assert_eq!(thread, ThreadId::MAIN);
            assert!(message.contains("does not hold"), "{message}");
        }
        ref k => panic!("expected ThreadPanic, got {k:?}"),
    }
}

#[test]
fn program_panic_is_captured() {
    let mut b = ProgramBuilder::new("panics");
    b.entry(|_ctx| panic!("intentional test panic"));
    let p = b.build();
    let o = Execution::new(&p).run();
    match o.kind {
        OutcomeKind::ThreadPanic { ref message, .. } => {
            assert!(message.contains("intentional test panic"));
        }
        ref k => panic!("expected ThreadPanic, got {k:?}"),
    }
}

#[test]
fn finish_order_is_reported() {
    let mut b = ProgramBuilder::new("order");
    b.entry(move |ctx| {
        let a = ctx.spawn("a", move |ctx| ctx.sleep(5));
        let c = ctx.spawn("b", move |ctx| ctx.sleep(1));
        ctx.join(a);
        ctx.join(c);
    });
    let p = b.build();
    let o = Execution::new(&p).run();
    assert!(o.ok());
    assert_eq!(o.finish_order.len(), 3);
    // main finishes last.
    assert_eq!(*o.finish_order.last().unwrap(), ThreadId::MAIN);
    assert_eq!(o.thread_names[0], "main");
}

#[test]
fn executions_are_deterministic_given_seed() {
    let p = racy_counter(5, 3);
    let run = |seed| {
        let (sink, handle) = shared(VecSink::new());
        let o = Execution::new(&p)
            .scheduler(Box::new(RandomScheduler::new(seed)))
            .sink(Box::new(sink))
            .run();
        let evs: Vec<(u64, u32)> = handle
            .lock()
            .unwrap()
            .events
            .iter()
            .map(|e| (e.seq, e.thread.0))
            .collect();
        (o.fingerprint(), evs)
    };
    for seed in [1u64, 7, 99] {
        let (f1, e1) = run(seed);
        let (f2, e2) = run(seed);
        assert_eq!(f1, f2, "fingerprint differs at seed {seed}");
        assert_eq!(e1, e2, "event stream differs at seed {seed}");
    }
}

#[test]
fn sinks_and_plans_see_filtered_events() {
    let p = racy_counter(3, 2);
    let (csink, chandle) = shared(CountingSink::new());
    let plan = mtt_instrument::InstrumentationPlan {
        ops: mtt_instrument::OpClassSet::of(&[OpClass::VarAccess]),
        ..Default::default()
    };
    let o = Execution::new(&p)
        .scheduler(Box::new(RandomScheduler::new(3)))
        .plan(plan)
        .sink(Box::new(csink))
        .run();
    assert!(o.ok());
    let c = chandle.lock().unwrap();
    assert!(c.total > 0);
    assert_eq!(c.total, c.class_count(OpClass::VarAccess));
    assert_eq!(c.class_count(OpClass::ThreadLife), 0);
    assert!(c.is_finished());
}

#[test]
fn noise_sleep_decisions_are_counted_and_disturb() {
    // A closure noise maker that sleeps at every var write.
    let p = racy_counter(3, 2);
    let noisy = |ev: &mtt_runtime::Event, _view: &mtt_runtime::NoiseView| match ev.op {
        Op::VarRead { .. } => NoiseDecision::Sleep(3),
        _ => NoiseDecision::None,
    };
    let o = Execution::new(&p)
        .scheduler(Box::new(FifoScheduler))
        .noise(Box::new(noisy))
        .run();
    assert!(o.ok(), "{:?}", o.kind);
    assert!(o.stats.noise_injections > 0);
    // Sleeping after every read hands the window to the other thread:
    // updates get lost even under FIFO.
    assert!(
        o.var("x").unwrap() < 6,
        "noise failed to expose the race: x = {:?}",
        o.var("x")
    );
}

#[test]
fn program_random_is_interleaving_independent() {
    let mut b = ProgramBuilder::new("rand");
    let r0 = b.var("r0", -1);
    b.entry(move |ctx| {
        let v = ctx.random(1000) as i64;
        ctx.write(r0, v);
    });
    let p = b.build();
    let a = Execution::new(&p).program_seed(5).run();
    let b2 = Execution::new(&p).program_seed(5).run();
    let c = Execution::new(&p).program_seed(6).run();
    assert_eq!(a.var("r0"), b2.var("r0"));
    assert_ne!(a.var("r0"), c.var("r0"), "different seeds should differ");
}

#[test]
fn stats_are_populated() {
    let p = racy_counter(2, 2);
    let o = Execution::new(&p).run();
    assert!(o.stats.events > 0);
    assert!(o.stats.sched_points > 0);
    assert_eq!(o.stats.threads, 3);
    assert_eq!(o.stats.scheduler_faults, 0);
    assert!(o.stats.wall.as_nanos() > 0);
}

#[test]
fn many_threads_stress() {
    let mut b = ProgramBuilder::new("stress");
    let x = b.var("x", 0);
    let l = b.lock("l");
    b.entry(move |ctx| {
        let kids: Vec<ThreadId> = (0..24)
            .map(|i| {
                ctx.spawn(format!("t{i}"), move |ctx| {
                    for _ in 0..5 {
                        ctx.lock(l);
                        let v = ctx.read(x);
                        ctx.write(x, v + 1);
                        ctx.unlock(l);
                    }
                })
            })
            .collect();
        for k in kids {
            ctx.join(k);
        }
    });
    let p = b.build();
    let o = Execution::new(&p)
        .scheduler(Box::new(RandomScheduler::new(11)))
        .run();
    assert!(o.ok(), "{:?}", o.kind);
    assert_eq!(o.var("x"), Some(120));
}

#[test]
fn outcome_summary_is_informative() {
    let p = racy_counter(1, 1);
    let o: Outcome = Execution::new(&p).run();
    let s = o.summary();
    assert!(s.contains("racy_counter"));
    assert!(s.contains("x=1"));
}

#[test]
fn pct_scheduler_finds_the_race() {
    // PCT's guarantee in action: the depth-2 lost update is found within a
    // modest number of runs.
    let mut found = 0;
    for seed in 0..60 {
        let p = racy_counter(2, 2);
        let o = Execution::new(&p)
            .scheduler(Box::new(mtt_runtime::PctScheduler::new(seed, 2, 40)))
            .run();
        if o.var("x").unwrap() < 4 {
            found += 1;
        }
    }
    assert!(found > 0, "PCT never hit the depth-2 race in 60 runs");
}

#[test]
fn spurious_wakeups_break_unguarded_waits() {
    // A wait with no predicate loop: correct under notify-only semantics
    // in this specific program, broken the moment wakeups can be spurious.
    let mut b = ProgramBuilder::new("unguarded_wait");
    let ready = b.var("ready", 0);
    let observed = b.var("observed", -1);
    let l = b.lock("l");
    let c = b.cond("c");
    b.entry(move |ctx| {
        let waiter = ctx.spawn("waiter", move |ctx| {
            ctx.lock(l);
            ctx.wait(c, l); // BUG: no `while !ready` loop
            let r = ctx.read(ready);
            ctx.write(observed, r);
            ctx.check(r == 1, "ready-after-wait");
            ctx.unlock(l);
        });
        let producer = ctx.spawn("producer", move |ctx| {
            ctx.sleep(20);
            ctx.lock(l);
            ctx.write(ready, 1);
            ctx.notify(c);
            ctx.unlock(l);
        });
        ctx.join(waiter);
        ctx.join(producer);
    });
    let p = b.build();

    // Without spurious wakeups the program happens to work (or deadlocks if
    // the notify is missed — filter those runs out).
    let clean_runs = (0..20)
        .map(|seed| {
            Execution::new(&p)
                .scheduler(Box::new(RandomScheduler::new(seed)))
                .run()
        })
        .filter(|o| matches!(o.kind, OutcomeKind::Completed))
        .collect::<Vec<_>>();
    assert!(
        clean_runs.iter().all(|o| o.assert_failures.is_empty()),
        "without spurious wakeups the unguarded wait looks fine"
    );

    // With spurious wakeups the missing predicate loop is exposed.
    let mut exposed = false;
    for seed in 0..40 {
        let o = Execution::new(&p)
            .scheduler(Box::new(RandomScheduler::new(seed)))
            .program_seed(seed)
            .spurious_wakeups(0.10)
            .run();
        if o.assert_failures
            .iter()
            .any(|a| a.label == "ready-after-wait")
        {
            exposed = true;
            break;
        }
    }
    assert!(exposed, "spurious wakeups never exposed the unguarded wait");
}

#[test]
fn spurious_wakeups_do_not_break_guarded_waits() {
    // The guarded version must survive heavy spurious injection.
    let mut b = ProgramBuilder::new("guarded_wait");
    let ready = b.var("ready", 0);
    let l = b.lock("l");
    let c = b.cond("c");
    b.entry(move |ctx| {
        let waiter = ctx.spawn("waiter", move |ctx| {
            ctx.lock(l);
            while ctx.read(ready) == 0 {
                ctx.wait(c, l);
            }
            ctx.unlock(l);
        });
        let producer = ctx.spawn("producer", move |ctx| {
            ctx.sleep(10);
            ctx.lock(l);
            ctx.write(ready, 1);
            ctx.notify_all(c);
            ctx.unlock(l);
        });
        ctx.join(waiter);
        ctx.join(producer);
    });
    let p = b.build();
    for seed in 0..15 {
        let o = Execution::new(&p)
            .scheduler(Box::new(RandomScheduler::new(seed)))
            .program_seed(seed)
            .spurious_wakeups(0.25)
            .run();
        assert!(o.ok(), "seed {seed}: {:?}", o.kind);
    }
}
