//! Integration tests for the native-threads backend.
//!
//! Native runs are genuinely nondeterministic, so these tests assert
//! *properties with tolerances* (outcome kinds, invariant final values,
//! bounded wall time), never byte-identical run output — that discipline
//! belongs to the model backend alone.

use mtt_instrument::{shared, CountingSink, VecSink};
use mtt_runtime::{Execution, NoiseDecision, Program, ProgramBuilder, RuntimeBackend};
use std::time::{Duration, Instant};

fn native(program: &Program) -> Execution<'_> {
    Execution::new(program)
        .backend(RuntimeBackend::Native)
        .wall_budget(Duration::from_secs(5))
}

/// Two threads increment a mutex-protected counter: must always total
/// exactly 2 × N under real threads, and never report a torn read.
#[test]
fn native_mutex_protects_critical_section() {
    let mut b = ProgramBuilder::new("native_guarded");
    let x = b.var_nonvolatile("x", 0);
    let l = b.lock("l");
    b.entry(move |ctx| {
        let mut kids = Vec::new();
        for i in 0..2 {
            kids.push(ctx.spawn(format!("inc{i}"), move |ctx| {
                for _ in 0..50 {
                    ctx.lock(l);
                    let v = ctx.read(x);
                    ctx.write(x, v + 1);
                    ctx.unlock(l);
                }
            }));
        }
        for k in kids {
            ctx.join(k);
        }
    });
    let p = b.build();
    let o = native(&p).run();
    assert!(o.ok(), "guarded counter must complete cleanly: {o:?}");
    assert_eq!(o.var("x"), Some(100));
    assert!(
        o.assert_failures.is_empty(),
        "synchronized accesses must never be flagged torn"
    );
}

/// The unguarded counter may or may not lose updates natively, but the
/// result must stay within the only physically possible range and the
/// outcome must be a completion.
#[test]
fn native_racy_counter_stays_in_range() {
    let mut b = ProgramBuilder::new("native_racy");
    let x = b.var_nonvolatile("x", 0);
    b.entry(move |ctx| {
        let mut kids = Vec::new();
        for i in 0..2 {
            kids.push(ctx.spawn(format!("inc{i}"), move |ctx| {
                for _ in 0..100 {
                    let v = ctx.read(x);
                    ctx.write(x, v + 1);
                }
            }));
        }
        for k in kids {
            ctx.join(k);
        }
    });
    let p = b.build();
    let o = native(&p).run();
    assert_eq!(o.kind.tag(), "completed");
    let x = o.var("x").unwrap();
    assert!((1..=200).contains(&x), "impossible final value {x}");
    // Any recorded failures must be torn-read reports, never asserts.
    for f in &o.assert_failures {
        assert!(f.label.starts_with("race:torn-read:"), "{}", f.label);
    }
}

/// The same event stream flows to sinks under both backends: same ops from
/// the same sites, global sequence strictly increasing.
#[test]
fn native_event_stream_reaches_sinks() {
    let mut b = ProgramBuilder::new("native_events");
    let x = b.var("x", 0);
    let l = b.lock("l");
    b.entry(move |ctx| {
        ctx.lock(l);
        ctx.write(x, 7);
        ctx.unlock(l);
        let v = ctx.read(x);
        ctx.check(v == 7, "x-is-7");
        ctx.point("done");
    });
    let p = b.build();
    let (events, events_handle) = shared(VecSink::new());
    let (counter, counter_handle) = shared(CountingSink::new());
    let o = native(&p)
        .sink(Box::new(events))
        .sink(Box::new(counter))
        .run();
    assert!(o.ok());
    let evs = events_handle.lock().unwrap().events.clone();
    assert!(evs.len() >= 7, "start/lock/write/unlock/read/point/exit");
    for w in evs.windows(2) {
        assert!(w[0].seq < w[1].seq, "seq must be strictly increasing");
    }
    let held_during_write = evs
        .iter()
        .find(|e| matches!(e.op, mtt_instrument::Op::VarWrite { .. }))
        .unwrap();
    assert_eq!(held_during_write.locks_held.len(), 1);
    assert_eq!(counter_handle.lock().unwrap().total, evs.len() as u64);
}

/// AB-BA lock ordering under real threads: the watchdog must end the run —
/// either Deadlock (the interleaving wedged and was diagnosed) or
/// Completed (one thread won both locks first). Nothing may hang past the
/// budget.
#[test]
fn native_ab_ba_never_hangs() {
    let mut b = ProgramBuilder::new("native_ab_ba");
    let a = b.lock("a");
    let l2 = b.lock("b");
    b.entry(move |ctx| {
        let t1 = ctx.spawn("ab", move |ctx| {
            ctx.lock(a);
            ctx.sleep(5);
            ctx.lock(l2);
            ctx.unlock(l2);
            ctx.unlock(a);
        });
        let t2 = ctx.spawn("ba", move |ctx| {
            ctx.lock(l2);
            ctx.sleep(5);
            ctx.lock(a);
            ctx.unlock(a);
            ctx.unlock(l2);
        });
        ctx.join(t1);
        ctx.join(t2);
    });
    let p = b.build();
    let started = Instant::now();
    let o = Execution::new(&p)
        .backend(RuntimeBackend::Native)
        .wall_budget(Duration::from_secs(3))
        .run();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "run must end within budget + grace"
    );
    assert!(
        matches!(o.kind.tag(), "deadlock" | "completed"),
        "unexpected outcome {:?}",
        o.kind
    );
    if o.deadlocked() {
        // The diagnostic must carry the same waits-for structure the model
        // engine reports.
        if let mtt_runtime::OutcomeKind::Deadlock(info) = &o.kind {
            assert!(info.is_cyclic(), "AB-BA wedge is a cyclic deadlock");
        }
    }
}

/// Watchdog regression: a native thread sleeping far past the wall budget
/// is killed, the run reports StepLimit (the hang analogue) and returns
/// promptly — it does not wait out the sleep.
#[test]
fn native_watchdog_kills_hung_run() {
    let mut b = ProgramBuilder::new("native_hang");
    b.entry(move |ctx| {
        ctx.sleep(10_000_000); // 1000s of wall time at 100µs/tick
    });
    let p = b.build();
    let started = Instant::now();
    let o = Execution::new(&p)
        .backend(RuntimeBackend::Native)
        .wall_budget(Duration::from_millis(200))
        .run();
    assert!(o.hung(), "budget exhaustion must map to StepLimit: {o:?}");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "watchdog must interrupt the sleep, took {:?}",
        started.elapsed()
    );
}

/// Cond wait/notify across real threads, including the FIFO queue
/// bookkeeping shared with the model engine.
#[test]
fn native_cond_wait_notify_roundtrip() {
    let mut b = ProgramBuilder::new("native_cond");
    let ready = b.var("ready", 0);
    let l = b.lock("l");
    let c = b.cond("c");
    b.entry(move |ctx| {
        let w = ctx.spawn("waiter", move |ctx| {
            ctx.lock(l);
            while ctx.read(ready) == 0 {
                ctx.wait(c, l);
            }
            ctx.unlock(l);
        });
        ctx.lock(l);
        ctx.write(ready, 1);
        ctx.notify(c);
        ctx.unlock(l);
        ctx.join(w);
    });
    let p = b.build();
    let o = native(&p).run();
    assert!(o.ok(), "{o:?}");
}

/// Timed wait gives up on its own when nobody notifies.
#[test]
fn native_timed_wait_times_out() {
    let mut b = ProgramBuilder::new("native_timed");
    let notified = b.var("notified", -1);
    let l = b.lock("l");
    let c = b.cond("c");
    b.entry(move |ctx| {
        ctx.lock(l);
        let got = ctx.timed_wait(c, l, 50); // 5ms of wall time
        ctx.unlock(l);
        ctx.write(notified, i64::from(got));
    });
    let p = b.build();
    let o = native(&p).run();
    assert!(o.ok(), "{o:?}");
    assert_eq!(o.var("notified"), Some(0));
}

/// Semaphores and barriers coordinate real threads.
#[test]
fn native_sem_and_barrier() {
    let mut b = ProgramBuilder::new("native_sem_barrier");
    let total = b.var("total", 0);
    let s = b.sem("s", 1);
    let bar = b.barrier("bar", 3);
    b.entry(move |ctx| {
        let mut kids = Vec::new();
        for i in 0..2 {
            kids.push(ctx.spawn(format!("w{i}"), move |ctx| {
                ctx.barrier_wait(bar);
                for _ in 0..10 {
                    ctx.sem_acquire(s);
                    let v = ctx.read(total);
                    ctx.write(total, v + 1);
                    ctx.sem_release(s);
                }
            }));
        }
        ctx.barrier_wait(bar);
        for k in kids {
            ctx.join(k);
        }
    });
    let p = b.build();
    let o = native(&p).run();
    assert!(o.ok(), "{o:?}");
    assert_eq!(o.var("total"), Some(20), "semaphore must serialize updates");
}

/// Model-API misuse is a ThreadPanic outcome under the native engine too.
#[test]
fn native_misuse_is_thread_panic() {
    let mut b = ProgramBuilder::new("native_misuse");
    let l = b.lock("l");
    b.entry(move |ctx| {
        ctx.unlock(l); // never held
    });
    let p = b.build();
    let o = native(&p).run();
    assert_eq!(o.kind.tag(), "panic");
}

/// Noise makers run natively (yields and real sleeps); the run still
/// completes and the injection counters tick.
#[test]
fn native_noise_maker_is_applied() {
    let mut b = ProgramBuilder::new("native_noise");
    let x = b.var("x", 0);
    b.entry(move |ctx| {
        for i in 0..20 {
            ctx.write(x, i);
        }
    });
    let p = b.build();
    let o = native(&p)
        .noise(Box::new(|ev: &mtt_instrument::Event, _: &_| {
            if ev.seq.is_multiple_of(2) {
                NoiseDecision::Sleep(1)
            } else {
                NoiseDecision::Yield
            }
        }))
        .run();
    assert!(o.ok(), "{o:?}");
    assert!(o.stats.noise_injections > 0);
    assert!(o.stats.forced_yields > 0);
}

/// `ctx.random` must be interleaving- and backend-independent: the same
/// seed yields the same draws under model and native.
#[test]
fn native_program_randomness_matches_model() {
    fn program() -> Program {
        let mut b = ProgramBuilder::new("native_rng");
        let draw = b.var("draw", 0);
        b.entry(move |ctx| {
            let mut acc = 0i64;
            for _ in 0..8 {
                acc = acc * 10 + ctx.random(10) as i64;
            }
            ctx.write(draw, acc);
        });
        b.build()
    }
    let pm = program();
    let pn = program();
    let model = Execution::new(&pm).program_seed(42).run();
    let nat = Execution::new(&pn)
        .backend(RuntimeBackend::Native)
        .wall_budget(Duration::from_secs(5))
        .program_seed(42)
        .run();
    assert!(model.ok() && nat.ok());
    assert_eq!(model.var("draw"), nat.var("draw"));
}
