//! The NDJSON structured run log: one JSON object per run.
//!
//! Layout: every line is a flat object with the run's coordinates
//! (`experiment`, `program`, `tool`, `run`, `seed`), its judged outcome
//! (`outcome` tag + `failed` flag) and the deterministic [`RunMetrics`]
//! counters. The default record is a pure function of the run's seed, so a
//! log written at `--jobs 8` is byte-identical to the serial one — the
//! writer is always fed in canonical (program, tool, run) order after the
//! shards merge. Wall-clock duration is segregated behind
//! [`RunLogWriter::with_wall`], mirroring how `timing_table()` keeps time
//! out of the deterministic tables; turning it on adds a `wall_us` field
//! and forfeits byte-determinism, never the schema.
//!
//! All writes propagate `io::Result` — a full disk or a closed pipe is an
//! error the campaign reports, not a panic.

use crate::run::RunMetrics;
use mtt_json::{Json, ToJson};
use std::io::{self, BufWriter, Write};
use std::time::Duration;

/// Field names every run-log line must carry, in emission order — the
/// documented schema, used by `mtt metrics-check` and the CI validator.
pub const RUN_LOG_REQUIRED_FIELDS: &[&str] = &[
    "experiment",
    "program",
    "tool",
    "tool_spec",
    "run",
    "seed",
    "outcome",
    "failed",
    "events",
    "sched_points",
    "context_switches",
    "forced_yields",
    "noise_injections",
    "spurious_wakeups",
    "lock_acquires",
    "lock_contentions",
    "waits",
    "notifies",
    "threads",
    "steps_to_first_bug",
];

/// One run-log line before serialization.
#[derive(Clone, Debug, PartialEq)]
pub struct RunLogRecord {
    /// Experiment key (`e1`, `profile`, …).
    pub experiment: String,
    /// Program under test.
    pub program: String,
    /// Tool configuration name.
    pub tool: String,
    /// Canonical tool-spec string the run can be re-created from
    /// (`mtt tools validate` accepts it; see `mtt-tools`).
    pub tool_spec: String,
    /// Run index within the (program, tool) cell.
    pub run: u64,
    /// The seed that defined the execution.
    pub seed: u64,
    /// Outcome tag (`completed`, `deadlock`, `step-limit`, `panic`,
    /// `assert-stop`).
    pub outcome: String,
    /// Did the program's oracle judge the run as having manifested a bug?
    pub failed: bool,
    /// Execution-backend tag (`"native"`), present only when the run
    /// executed on a non-model backend. Optional so every log written by a
    /// model campaign — which is all of them before the native backend
    /// existed — stays byte-identical.
    pub backend: Option<String>,
    /// Canonical Mazurkiewicz-trace fingerprint of the run's HB partial
    /// order (32 hex digits), when the campaign computed one. Optional so
    /// logs written by fingerprint-less producers stay schema-valid.
    pub fingerprint: Option<String>,
    /// Deterministic per-run counters.
    pub metrics: RunMetrics,
    /// Wall-clock duration of the run; only emitted when the writer opts
    /// into wall fields.
    pub wall: Duration,
}

impl RunLogRecord {
    fn to_json_line(&self, with_wall: bool) -> Json {
        let mut fields: Vec<(String, Json)> = vec![
            ("experiment".into(), self.experiment.to_json()),
            ("program".into(), self.program.to_json()),
            ("tool".into(), self.tool.to_json()),
            ("tool_spec".into(), self.tool_spec.to_json()),
            ("run".into(), self.run.to_json()),
            ("seed".into(), self.seed.to_json()),
            ("outcome".into(), self.outcome.to_json()),
            ("failed".into(), self.failed.to_json()),
        ];
        if let Some(backend) = &self.backend {
            fields.push(("backend".into(), backend.to_json()));
        }
        if let Some(fp) = &self.fingerprint {
            fields.push(("fingerprint".into(), fp.to_json()));
        }
        match self.metrics.to_json() {
            Json::Obj(metric_fields) => fields.extend(metric_fields),
            other => fields.push(("metrics".into(), other)),
        }
        if with_wall {
            fields.push(("wall_us".into(), (self.wall.as_micros() as u64).to_json()));
        }
        Json::Obj(fields)
    }
}

/// Streaming NDJSON writer over any `io::Write`.
pub struct RunLogWriter<W: Write> {
    w: BufWriter<W>,
    with_wall: bool,
    lines: u64,
}

impl<W: Write> RunLogWriter<W> {
    /// Wrap `w`; wall-clock fields are off (deterministic output).
    pub fn new(w: W) -> Self {
        RunLogWriter {
            w: BufWriter::new(w),
            with_wall: false,
            lines: 0,
        }
    }

    /// Also emit the segregated `wall_us` field on every line. The log is
    /// then no longer byte-deterministic across machines or job counts.
    pub fn with_wall(mut self, yes: bool) -> Self {
        self.with_wall = yes;
        self
    }

    /// Append one record as one line.
    pub fn write_record(&mut self, rec: &RunLogRecord) -> io::Result<()> {
        let line = rec.to_json_line(self.with_wall).dump();
        self.w.write_all(line.as_bytes())?;
        self.w.write_all(b"\n")?;
        self.lines += 1;
        Ok(())
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flush buffered lines to the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.w.flush()
    }

    /// Flush and return the underlying writer.
    pub fn into_inner(self) -> io::Result<W> {
        self.w.into_inner().map_err(|e| e.into_error())
    }
}

/// Validate one NDJSON run-log line against the documented schema: it must
/// parse as a JSON object and carry every [`RUN_LOG_REQUIRED_FIELDS`] key
/// with a sane type. Returns a description of the first violation.
pub fn check_run_log_line(line: &str) -> Result<(), String> {
    let v = Json::parse(line).map_err(|e| format!("not valid JSON: {e}"))?;
    let Json::Obj(_) = v else {
        return Err("line is not a JSON object".into());
    };
    for field in RUN_LOG_REQUIRED_FIELDS {
        let Some(val) = v.get(field) else {
            return Err(format!("missing required field `{field}`"));
        };
        let ok = match *field {
            "experiment" | "program" | "tool" | "tool_spec" | "outcome" => val.as_str().is_some(),
            "failed" => matches!(val, Json::Bool(_)),
            "steps_to_first_bug" => matches!(val, Json::Null) || val.as_u64().is_some(),
            _ => val.as_u64().is_some(),
        };
        if !ok {
            return Err(format!("field `{field}` has the wrong type"));
        }
    }
    // `fingerprint` is optional (older producers omit it), but when present
    // it must be a string.
    if let Some(fp) = v.get("fingerprint") {
        if fp.as_str().is_none() {
            return Err("field `fingerprint` has the wrong type".into());
        }
    }
    // `backend` is optional (model runs omit it), but when present it must
    // name a known execution backend.
    if let Some(b) = v.get("backend") {
        match b.as_str() {
            Some("model" | "native") => {}
            Some(other) => return Err(format!("unknown backend `{other}`")),
            None => return Err("field `backend` has the wrong type".into()),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(run: u64) -> RunLogRecord {
        RunLogRecord {
            experiment: "e1".into(),
            program: "lost_update".into(),
            tool: "none".into(),
            tool_spec: "sticky:0.9+name=none".into(),
            run,
            seed: 0x5eed + run,
            outcome: "completed".into(),
            failed: run.is_multiple_of(2),
            backend: None,
            fingerprint: (run > 0).then(|| format!("{:032x}", 0xabad1dea_u128 + u128::from(run))),
            metrics: RunMetrics {
                events: 10 + run,
                sched_points: 20,
                ..Default::default()
            },
            wall: Duration::from_micros(123),
        }
    }

    #[test]
    fn default_log_is_deterministic_and_schema_valid() {
        let mut buf = Vec::new();
        {
            let mut w = RunLogWriter::new(&mut buf);
            w.write_record(&record(0)).unwrap();
            w.write_record(&record(1)).unwrap();
            assert_eq!(w.lines(), 2);
            w.flush().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            check_run_log_line(line).unwrap();
            assert!(!line.contains("wall_us"), "wall must be segregated");
        }
        assert!(text.contains("\"experiment\":\"e1\""));
        assert!(text.contains("\"steps_to_first_bug\":null"));
        // The optional fingerprint appears exactly on the run that has one.
        let mut lines = text.lines();
        assert!(!lines.next().unwrap().contains("fingerprint"));
        assert!(lines
            .next()
            .unwrap()
            .contains("\"fingerprint\":\"000000000000000000000000abad1deb\""));
    }

    #[test]
    fn fingerprint_when_present_must_be_a_string() {
        let mut buf = Vec::new();
        let mut w = RunLogWriter::new(&mut buf);
        w.write_record(&record(1)).unwrap();
        w.flush().unwrap();
        drop(w);
        let line = String::from_utf8(buf).unwrap();
        check_run_log_line(line.trim_end()).unwrap();
        let broken = line.trim_end().replace(
            "\"fingerprint\":\"000000000000000000000000abad1deb\"",
            "\"fingerprint\":7",
        );
        assert!(check_run_log_line(&broken)
            .unwrap_err()
            .contains("fingerprint"));
    }

    #[test]
    fn backend_field_is_optional_and_validated() {
        // Model runs never emit the field (byte-identity with old logs).
        let mut buf = Vec::new();
        let mut w = RunLogWriter::new(&mut buf);
        w.write_record(&record(0)).unwrap();
        w.write_record(&RunLogRecord {
            backend: Some("native".into()),
            ..record(1)
        })
        .unwrap();
        w.flush().unwrap();
        drop(w);
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        let model_line = lines.next().unwrap();
        let native_line = lines.next().unwrap();
        assert!(!model_line.contains("backend"), "{model_line}");
        assert!(
            native_line.contains("\"backend\":\"native\""),
            "{native_line}"
        );
        check_run_log_line(model_line).unwrap();
        check_run_log_line(native_line).unwrap();
        // An unknown backend tag is a schema violation.
        let broken = native_line.replace("\"backend\":\"native\"", "\"backend\":\"jvm\"");
        assert!(check_run_log_line(&broken)
            .unwrap_err()
            .contains("unknown backend"));
        let broken = native_line.replace("\"backend\":\"native\"", "\"backend\":3");
        assert!(check_run_log_line(&broken).unwrap_err().contains("backend"));
    }

    #[test]
    fn wall_field_is_opt_in() {
        let mut buf = Vec::new();
        let mut w = RunLogWriter::new(&mut buf).with_wall(true);
        w.write_record(&record(0)).unwrap();
        w.flush().unwrap();
        drop(w);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"wall_us\":123"));
        check_run_log_line(text.lines().next().unwrap()).unwrap();
    }

    #[test]
    fn checker_rejects_bad_lines() {
        assert!(check_run_log_line("not json").is_err());
        assert!(check_run_log_line("[1,2]").is_err());
        assert!(check_run_log_line("{\"experiment\":\"e1\"}")
            .unwrap_err()
            .contains("missing required field"));
        // Right fields, wrong type.
        let mut buf = Vec::new();
        let mut w = RunLogWriter::new(&mut buf);
        w.write_record(&record(0)).unwrap();
        w.flush().unwrap();
        drop(w);
        let line = String::from_utf8(buf).unwrap();
        let broken = line.trim_end().replace("\"run\":0", "\"run\":\"zero\"");
        assert!(check_run_log_line(&broken)
            .unwrap_err()
            .contains("wrong type"));
    }

    #[test]
    fn write_errors_propagate_not_panic() {
        struct FullDisk;
        impl Write for FullDisk {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::WriteZero, "disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut w = RunLogWriter::new(FullDisk);
        // BufWriter may absorb the first write; flush must surface the error.
        let r = w.write_record(&record(0)).and_then(|_| w.flush());
        assert!(r.is_err());
    }

    #[test]
    fn into_inner_surfaces_buffered_write_errors() {
        #[derive(Debug)]
        struct FullDisk;
        impl Write for FullDisk {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::WriteZero, "disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        // The record sits in the BufWriter; into_inner's final flush must
        // report the failure instead of silently dropping the bytes.
        let mut w = RunLogWriter::new(FullDisk);
        w.write_record(&record(0)).expect("buffered write succeeds");
        assert_eq!(w.lines(), 1);
        let err = w.into_inner().expect_err("into_inner must flush and fail");
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);

        // And on a healthy writer it hands the bytes back intact.
        let mut w = RunLogWriter::new(Vec::new());
        w.write_record(&record(0)).unwrap();
        let buf = w.into_inner().expect("in-memory writer cannot fail");
        let line = String::from_utf8(buf).unwrap();
        check_run_log_line(line.trim_end()).expect("flushed line conforms to schema");
    }
}
