//! [`TelemetrySink`]: the event-stream side of per-run telemetry.
//!
//! Everything this sink measures is derived from the instrumented event
//! stream alone, so it composes with any tool under evaluation through the
//! existing [`EventSink`] plumbing — `Tee` it next to a detector, wrap it
//! in a `FilteredSink`, or attach it directly to an `Execution`. It never
//! touches a clock: all of its numbers are deterministic functions of the
//! schedule.

use crate::run::RunMetrics;
use mtt_instrument::{Event, EventSink, LocKey, Op, ThreadId};
use std::collections::{BTreeMap, HashMap};

/// Counts event classes, hot sites and synchronization traffic from an
/// instrumented event stream.
///
/// Lock *contention* is derived structurally: the runtime emits
/// `LockRequest` only when the requested lock is currently owned by another
/// thread (an uncontended acquire goes straight to `LockAcquire`), so every
/// `LockRequest` — and every failed `try_lock` — is one contended
/// encounter. The sink also keeps the owner map implied by
/// acquire/release events as a cross-check for held-lock accounting.
///
/// Site counters accumulate on the interned [`LocKey`] pair — two integer
/// hashes per event — and fold back into the string-keyed
/// [`RunMetrics::sites`] maps once, at [`EventSink::finish`] (or harvest),
/// so the event hot path neither allocates nor compares path strings.
#[derive(Debug, Default)]
pub struct TelemetrySink {
    metrics: RunMetrics,
    owners: BTreeMap<u32, ThreadId>,
    sites: HashMap<LocKey, u64>,
    contended_sites: HashMap<LocKey, u64>,
    /// Memo of the most recent file pointer → id mapping: consecutive
    /// events almost always share a source file, so the interner's lock is
    /// rarely touched at all.
    last_file: Option<(*const u8, usize, u32)>,
    finished: bool,
}

// The raw pointer is a cache key for a `&'static str`, never dereferenced
// as mutable state; the sink stays freely sendable like before.
unsafe impl Send for TelemetrySink {}

impl TelemetrySink {
    /// Fresh sink.
    pub fn new() -> Self {
        Self::default()
    }

    fn loc_key(&mut self, loc: mtt_instrument::Loc) -> LocKey {
        let ptr = loc.file.as_ptr();
        let len = loc.file.len();
        if let Some((p, l, id)) = self.last_file {
            if std::ptr::eq(p, ptr) && l == len {
                return LocKey {
                    file: id,
                    line: loc.line,
                };
            }
        }
        let key = loc.key();
        self.last_file = Some((ptr, len, key.file));
        key
    }

    /// Fold the interned-key accumulators into the string-keyed metric
    /// maps. Idempotent; runs automatically at `finish`.
    fn fold_sites(&mut self) {
        for (k, n) in self.sites.drain() {
            *self.metrics.sites.entry(k.loc()).or_insert(0) += n;
        }
        for (k, n) in self.contended_sites.drain() {
            *self.metrics.contended_sites.entry(k.loc()).or_insert(0) += n;
        }
    }

    /// The metrics accumulated so far (event-derived fields only; combine
    /// with [`RunMetrics::absorb_stats`] for the runtime counters). Site
    /// maps are complete once [`EventSink::finish`] has run.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Consume the sink, yielding its metrics (site maps folded whether or
    /// not `finish` ran).
    pub fn into_metrics(mut self) -> RunMetrics {
        self.fold_sites();
        self.metrics
    }

    /// Has `finish` run?
    pub fn is_finished(&self) -> bool {
        self.finished
    }
}

impl EventSink for TelemetrySink {
    fn on_event(&mut self, ev: &Event) {
        let key = self.loc_key(ev.loc);
        let m = &mut self.metrics;
        m.events += 1;
        m.by_class[ev.op.class().bit() as usize] += 1;
        *self.sites.entry(key).or_insert(0) += 1;
        match ev.op {
            Op::LockAcquire { lock } => {
                m.lock_acquires += 1;
                self.owners.insert(lock.0, ev.thread);
            }
            Op::LockRelease { lock } => {
                self.owners.remove(&lock.0);
            }
            Op::LockRequest { .. } | Op::LockTryFail { .. } => {
                m.lock_contentions += 1;
                *self.contended_sites.entry(key).or_insert(0) += 1;
            }
            Op::CondWait { .. } => m.waits += 1,
            Op::CondNotify { .. } => m.notifies += 1,
            _ => {}
        }
    }

    fn finish(&mut self) {
        self.fold_sites();
        self.finished = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtt_instrument::{Loc, LockId, VarId};
    use std::sync::Arc;

    fn ev(seq: u64, thread: u32, loc: Loc, op: Op) -> Event {
        Event {
            seq,
            time: seq,
            thread: ThreadId(thread),
            loc,
            op,
            locks_held: Arc::from(Vec::<LockId>::new()),
        }
    }

    #[test]
    fn counts_contention_and_sites() {
        let site_a = Loc::new("p", 1);
        let site_b = Loc::new("p", 2);
        let l = LockId(0);
        let mut sink = TelemetrySink::new();
        // t0 acquires uncontended; t1 contends, then acquires after release.
        sink.on_event(&ev(0, 0, site_a, Op::LockAcquire { lock: l }));
        sink.on_event(&ev(1, 1, site_b, Op::LockRequest { lock: l }));
        sink.on_event(&ev(2, 0, site_a, Op::LockRelease { lock: l }));
        sink.on_event(&ev(3, 1, site_b, Op::LockAcquire { lock: l }));
        sink.on_event(&ev(
            4,
            1,
            site_b,
            Op::VarRead {
                var: VarId(0),
                value: 7,
            },
        ));
        sink.finish();
        let m = sink.metrics();
        assert_eq!(m.events, 5);
        assert_eq!(m.lock_acquires, 2);
        assert_eq!(m.lock_contentions, 1);
        assert_eq!(m.sites[&site_b], 3);
        assert_eq!(m.contended_sites[&site_b], 1);
        assert!(!m.contended_sites.contains_key(&site_a));
        assert!(sink.is_finished());
    }

    #[test]
    fn counts_cond_traffic() {
        use mtt_instrument::CondId;
        let mut sink = TelemetrySink::new();
        let loc = Loc::new("p", 9);
        sink.on_event(&ev(
            0,
            0,
            loc,
            Op::CondWait {
                cond: CondId(0),
                lock: LockId(0),
            },
        ));
        sink.on_event(&ev(
            1,
            1,
            loc,
            Op::CondNotify {
                cond: CondId(0),
                all: true,
            },
        ));
        assert_eq!(sink.metrics().waits, 1);
        assert_eq!(sink.metrics().notifies, 1);
    }

    #[test]
    fn into_metrics_folds_sites_without_finish() {
        let loc = Loc::new("fold-test", 3);
        let mut sink = TelemetrySink::new();
        sink.on_event(&ev(
            0,
            0,
            loc,
            Op::VarWrite {
                var: VarId(0),
                value: 1,
            },
        ));
        let m = sink.into_metrics();
        assert_eq!(m.sites[&loc], 1);
    }

    #[test]
    fn interleaved_files_accumulate_on_distinct_keys() {
        // Defeat the last-file memo on purpose: alternating files must
        // still land on their own sites.
        let a = Loc::new("file-a", 1);
        let b = Loc::new("file-b", 1);
        let mut sink = TelemetrySink::new();
        for i in 0..6u64 {
            let loc = if i % 2 == 0 { a } else { b };
            sink.on_event(&ev(
                i,
                0,
                loc,
                Op::VarRead {
                    var: VarId(0),
                    value: 0,
                },
            ));
        }
        sink.finish();
        assert_eq!(sink.metrics().sites[&a], 3);
        assert_eq!(sink.metrics().sites[&b], 3);
    }
}
