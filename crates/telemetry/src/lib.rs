//! # mtt-telemetry — uniform bookkeeping for evaluation campaigns
//!
//! The paper's §4 "prepared experiment" requires each technology's report
//! to state its *overhead* and run statistics, and a campaign at
//! production scale needs those numbers collected the same way everywhere
//! instead of ad hoc per experiment. This crate is that layer:
//!
//! * [`MetricsRegistry`] — named atomic counters, max-gauges and
//!   fixed-bucket histograms. Bumping a handle is a single atomic op; a
//!   [`Snapshot`] of the registry is `Clone` and merges with the same
//!   permutation-invariant algebra the experiment statistics use (sums for
//!   counters and histogram buckets, max for gauges), so per-shard
//!   snapshots from a parallel campaign combine in any order to the serial
//!   aggregate.
//! * [`TelemetrySink`] — an [`EventSink`](mtt_instrument::EventSink)
//!   adapter that derives event-level metrics (per-class counts, per-site
//!   hot spots, lock contention, wait/notify traffic) from the
//!   instrumentation stream, so existing tools compose with telemetry
//!   unchanged: just `Tee` it next to the tool under evaluation.
//! * [`RunMetrics`] — the per-run record harvested from one `Execution`
//!   (deterministic counters only; wall clock is segregated by design).
//! * [`SpanSet`] / [`Span`] — RAII wall-clock timers around campaign
//!   phases and pool workers. Span timings are *explicitly* wall-clock and
//!   never enter deterministic reports.
//! * [`RunLogWriter`] — an NDJSON structured run log (one JSON object per
//!   run) whose default field set is byte-deterministic at any `--jobs`.
//!
//! Everything deterministic merges; everything wall-clock is quarantined.
//! That split is what lets the default campaign reports stay byte-identical
//! across worker counts while still measuring overhead when asked.

pub mod ndjson;
pub mod registry;
pub mod run;
pub mod sink;
pub mod span;

pub use ndjson::{check_run_log_line, RunLogRecord, RunLogWriter, RUN_LOG_REQUIRED_FIELDS};
pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, Snapshot};
pub use run::RunMetrics;
pub use sink::TelemetrySink;
pub use span::{Span, SpanEvent, SpanSet, SpanTimings};
