//! The metrics registry: named counters, gauges and histograms with
//! lock-free hot paths and a mergeable snapshot.
//!
//! Registration (name → handle) takes a mutex once; after that every
//! `inc`/`record`/`observe` is a single atomic RMW on a shared `Arc`, so
//! campaign workers on different threads can bump the same metric without
//! serializing. [`Snapshot`] freezes the registry into plain maps whose
//! [`Snapshot::merge`] is commutative and associative — the same
//! permutation-invariant algebra `mtt_experiment::stats` uses for
//! `FindStats`/`Distribution` — so shard snapshots combine deterministically
//! in any order.

use mtt_json::{Json, ToJson};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter. Cheap to clone (shared state).
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A high-watermark gauge: `record` keeps the maximum ever seen.
///
/// Max (not last-write) is deliberate: it is the only gauge semantics whose
/// merge is commutative and associative, which the snapshot algebra needs.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Record an observation; the gauge keeps the maximum.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current high watermark.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram: counts of observations `<=` each bound, plus
/// an overflow bucket, a total count and a sum (for means).
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// A histogram over the given ascending upper bounds.
    pub fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "ascending bounds");
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Frozen histogram state.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Ascending bucket upper bounds (`buckets[i]` counts values `<=`
    /// `bounds[i]`; the final bucket is overflow).
    pub bounds: Vec<u64>,
    /// Per-bucket counts, `bounds.len() + 1` long.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
}

mtt_json::json_struct!(HistogramSnapshot {
    bounds,
    buckets,
    count,
    sum
});

impl HistogramSnapshot {
    /// Mean observation, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket-wise sum. Both operands must share bucket bounds (they come
    /// from same-named histograms, which the registry creates with one
    /// bound set).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.bounds.is_empty() && self.buckets.is_empty() {
            *self = other.clone();
            return;
        }
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[derive(Default)]
struct Inner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// A shared registry of named metrics. Clones share state.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl MetricsRegistry {
    /// Fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock().expect("registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the max-gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock().expect("registry poisoned");
        map.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the histogram `name` with the given bucket bounds
    /// (bounds of an existing histogram win; they are part of the name's
    /// identity for merge purposes).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut map = self.inner.histograms.lock().expect("registry poisoned");
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new(bounds)))
            .clone()
    }

    /// Freeze current values into a mergeable snapshot.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .inner
                .counters
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .inner
                .gauges
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .inner
                .histograms
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Frozen registry state: plain maps, `Clone`, and mergeable with a
/// permutation-invariant algebra (counter/histogram sums, gauge max).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge high watermarks by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

mtt_json::json_struct!(Snapshot {
    counters,
    gauges,
    histograms
});

impl Snapshot {
    /// Fold `other` into `self`. Commutative and associative: merging any
    /// permutation of shard snapshots yields the same result (property
    /// tested in `tests/props.rs`).
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let e = self.gauges.entry(k.clone()).or_insert(0);
            *e = (*e).max(*v);
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }
}

impl ToJson for MetricsRegistry {
    fn to_json(&self) -> Json {
        self.snapshot().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_across_clones() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("runs");
        let b = reg.counter("runs");
        a.inc();
        b.add(4);
        assert_eq!(reg.counter("runs").get(), 5);
        assert_eq!(reg.snapshot().counter("runs"), 5);
        assert_eq!(reg.snapshot().counter("absent"), 0);
    }

    #[test]
    fn gauge_keeps_maximum() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("peak");
        g.record(3);
        g.record(10);
        g.record(7);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[10, 100]);
        for v in [1, 9, 10, 11, 1000] {
            h.observe(v);
        }
        let s = reg.snapshot().histograms["lat"].clone();
        assert_eq!(s.buckets, vec![3, 1, 1]); // <=10, <=100, overflow
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1031);
        assert!((s.mean() - 206.2).abs() < 1e-9);
    }

    #[test]
    fn snapshot_merge_matches_combined_run() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        let all = MetricsRegistry::new();
        for (reg, vals) in [(&a, &[1u64, 5][..]), (&b, &[3, 2][..])] {
            for &v in vals {
                reg.counter("n").add(v);
                reg.gauge("g").record(v);
                reg.histogram("h", &[2, 4]).observe(v);
                all.counter("n").add(v);
                all.gauge("g").record(v);
                all.histogram("h", &[2, 4]).observe(v);
            }
        }
        let mut ab = a.snapshot();
        ab.merge(&b.snapshot());
        let mut ba = b.snapshot();
        ba.merge(&a.snapshot());
        assert_eq!(ab, ba, "merge must commute");
        assert_eq!(ab, all.snapshot(), "merge must equal the serial run");
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let reg = MetricsRegistry::new();
        reg.counter("c").inc();
        reg.gauge("g").record(2);
        let json = mtt_json::to_string(&reg.snapshot());
        assert!(json.contains("\"c\":1"));
        assert!(json.contains("\"g\":2"));
        let back: Snapshot = mtt_json::from_str(&json).unwrap();
        assert_eq!(back, reg.snapshot());
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn histogram_merge_rejects_mismatched_bounds() {
        let mut a = HistogramSnapshot {
            bounds: vec![1],
            buckets: vec![0, 0],
            count: 0,
            sum: 0,
        };
        let b = HistogramSnapshot {
            bounds: vec![2],
            buckets: vec![0, 0],
            count: 0,
            sum: 0,
        };
        a.merge(&b);
    }
}
