//! RAII span timers for campaign phases and pool workers.
//!
//! A [`Span`] measures the wall-clock time between `enter` and drop and
//! adds it to the named entry of its [`SpanSet`]. Span timings are
//! **wall-clock by definition** and therefore never appear in the
//! deterministic default reports — they feed the segregated timing tables
//! the way `CampaignReport::timing_table()` does.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Entry {
    count: u64,
    total: Duration,
}

/// One completed interval on the set's shared clock — the raw material of
/// a chrome-trace timeline (aggregates alone cannot place a phase in
/// time). Recorded by [`SpanSet::enter`] spans on drop; the bulk
/// [`SpanSet::add`] path stays aggregate-only so per-job worker loops do
/// not flood the event list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name.
    pub name: String,
    /// Offset from the set's creation instant.
    pub start: Duration,
    /// Interval length.
    pub dur: Duration,
}

#[derive(Default)]
struct Inner {
    entries: BTreeMap<String, Entry>,
    events: Vec<SpanEvent>,
}

struct Shared {
    inner: Mutex<Inner>,
    /// The zero point every [`SpanEvent::start`] is measured from.
    epoch: Instant,
}

/// A shared set of named span accumulators. Clones share state (and the
/// epoch), so a set can be handed to every worker of a pool.
#[derive(Clone)]
pub struct SpanSet {
    shared: Arc<Shared>,
}

impl Default for SpanSet {
    fn default() -> Self {
        SpanSet {
            shared: Arc::new(Shared {
                inner: Mutex::new(Inner::default()),
                epoch: Instant::now(),
            }),
        }
    }
}

impl SpanSet {
    /// Fresh, empty set; its epoch (the zero of [`SpanSet::events`]
    /// offsets) is now.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start timing `name`; the span records on drop.
    pub fn enter(&self, name: impl Into<String>) -> Span {
        Span {
            set: self.clone(),
            name: name.into(),
            started: Instant::now(),
        }
    }

    /// Add one finished interval to `name` directly (for callers that
    /// already measured, e.g. a worker loop with its own clock).
    /// Aggregate-only: no [`SpanEvent`] is recorded.
    pub fn add(&self, name: &str, elapsed: Duration) {
        let mut inner = self.shared.inner.lock().expect("span set poisoned");
        let e = inner.entries.entry(name.to_string()).or_default();
        e.count += 1;
        e.total += elapsed;
    }

    fn record_span(&self, name: &str, started: Instant, elapsed: Duration) {
        let start = started.saturating_duration_since(self.shared.epoch);
        let mut inner = self.shared.inner.lock().expect("span set poisoned");
        let e = inner.entries.entry(name.to_string()).or_default();
        e.count += 1;
        e.total += elapsed;
        inner.events.push(SpanEvent {
            name: name.to_string(),
            start,
            dur: elapsed,
        });
    }

    /// Freeze the accumulated timings.
    pub fn timings(&self) -> SpanTimings {
        SpanTimings {
            entries: self
                .shared
                .inner
                .lock()
                .expect("span set poisoned")
                .entries
                .iter()
                .map(|(k, e)| (k.clone(), (e.count, e.total)))
                .collect(),
        }
    }

    /// The completed intervals so far, sorted by start offset then name
    /// (concurrent spans may complete in any order; the sort keeps the
    /// timeline stable).
    pub fn events(&self) -> Vec<SpanEvent> {
        let mut v = self
            .shared
            .inner
            .lock()
            .expect("span set poisoned")
            .events
            .clone();
        v.sort_by(|a, b| a.start.cmp(&b.start).then_with(|| a.name.cmp(&b.name)));
        v
    }
}

/// An in-flight timed region; records into its [`SpanSet`] when dropped.
pub struct Span {
    set: SpanSet,
    name: String,
    started: Instant,
}

impl Span {
    /// Elapsed time so far (the span keeps running).
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.set
            .record_span(&self.name, self.started, self.started.elapsed());
    }
}

/// Frozen span timings: `(count, total wall time)` per name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanTimings {
    /// Accumulated `(count, total)` per span name.
    pub entries: BTreeMap<String, (u64, Duration)>,
}

impl SpanTimings {
    /// Number of completed spans under `name`.
    pub fn count(&self, name: &str) -> u64 {
        self.entries.get(name).map_or(0, |e| e.0)
    }

    /// Total wall time under `name`.
    pub fn total(&self, name: &str) -> Duration {
        self.entries.get(name).map_or(Duration::ZERO, |e| e.1)
    }

    /// Render one `name count total_ms mean_us` line per span, for the
    /// segregated (non-deterministic) timing output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, (count, total)) in &self.entries {
            let mean_us = if *count == 0 {
                0.0
            } else {
                total.as_micros() as f64 / *count as f64
            };
            out.push_str(&format!(
                "{name:<24} {count:>8}x  {:>8} ms total  {mean_us:>10.1} us/span\n",
                total.as_millis()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_on_drop() {
        let set = SpanSet::new();
        {
            let _a = set.enter("phase");
            let _b = set.enter("phase");
        }
        let t = set.timings();
        assert_eq!(t.count("phase"), 2);
        assert_eq!(t.count("absent"), 0);
        assert!(t.render().contains("phase"));
    }

    #[test]
    fn add_records_directly() {
        let set = SpanSet::new();
        set.add("w", Duration::from_millis(5));
        set.add("w", Duration::from_millis(7));
        let t = set.timings();
        assert_eq!(t.count("w"), 2);
        assert_eq!(t.total("w"), Duration::from_millis(12));
    }

    #[test]
    fn clones_share_state() {
        let set = SpanSet::new();
        let other = set.clone();
        drop(other.enter("x"));
        assert_eq!(set.timings().count("x"), 1);
    }

    #[test]
    fn entered_spans_record_events_but_add_does_not() {
        let set = SpanSet::new();
        drop(set.enter("a"));
        drop(set.enter("b"));
        set.add("w", Duration::from_millis(3));
        let events = set.events();
        assert_eq!(events.len(), 2);
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"a") && names.contains(&"b"));
        // Events are sorted by start offset; offsets never precede the epoch.
        assert!(events.windows(2).all(|w| w[0].start <= w[1].start));
        // `add` feeds aggregates only.
        assert_eq!(set.timings().count("w"), 1);
    }
}
