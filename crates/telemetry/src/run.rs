//! [`RunMetrics`]: the per-run telemetry record.
//!
//! One `RunMetrics` describes one execution: the event-derived counts a
//! [`TelemetrySink`](crate::TelemetrySink) accumulates plus the runtime's
//! own `ExecStats` counters (scheduling points, context switches, forced
//! yields, noise injections, spurious wakeups, steps to the first observed
//! failure). Every field is a deterministic function of the run's seed —
//! wall clock is deliberately absent; it lives in span timings and the
//! segregated timing tables instead.

use mtt_instrument::Loc;
use mtt_json::{Json, ToJson};
use mtt_runtime::ExecStats;
use std::collections::BTreeMap;

/// Deterministic telemetry of one run (or, after merging, of a cell or a
/// whole campaign — all fields aggregate permutation-invariantly).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunMetrics {
    /// Events observed by the telemetry sink.
    pub events: u64,
    /// Per-class event counts, indexed by `OpClass::bit()`.
    pub by_class: [u64; 8],
    /// Successful mutex acquisitions.
    pub lock_acquires: u64,
    /// Contended lock encounters (blocking requests + failed try-locks).
    pub lock_contentions: u64,
    /// Condition-variable waits entered.
    pub waits: u64,
    /// Condition-variable notifications issued.
    pub notifies: u64,
    /// Events per static program site (the hot-site profile).
    pub sites: BTreeMap<Loc, u64>,
    /// Contended lock encounters per site (the contention profile).
    pub contended_sites: BTreeMap<Loc, u64>,
    /// Scheduling points (from the runtime).
    pub sched_points: u64,
    /// Scheduling points at which the token moved to a different thread.
    pub context_switches: u64,
    /// Noise decisions that forced a yield.
    pub forced_yields: u64,
    /// All schedule-disturbing noise decisions (yields + sleeps).
    pub noise_injections: u64,
    /// Spurious condition-variable wakeups injected.
    pub spurious_wakeups: u64,
    /// Threads created, including main.
    pub threads: u64,
    /// Scheduling points until the first observed failure (failed
    /// assertion or abnormal termination); `None` when the run stayed
    /// clean. Merges by minimum.
    pub steps_to_first_bug: Option<u64>,
}

impl RunMetrics {
    /// Copy the runtime's counters into this record (the event-derived
    /// fields come from a [`TelemetrySink`](crate::TelemetrySink)).
    pub fn absorb_stats(&mut self, stats: &ExecStats) {
        self.sched_points += stats.sched_points;
        self.context_switches += stats.context_switches;
        self.forced_yields += stats.forced_yields;
        self.noise_injections += stats.noise_injections;
        self.spurious_wakeups += stats.spurious_wakeups;
        self.threads += u64::from(stats.threads);
        self.steps_to_first_bug = match (self.steps_to_first_bug, stats.first_failure_step) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }

    /// Fold another record into this one. Sums everywhere except
    /// `steps_to_first_bug`, which merges by minimum — all of it
    /// commutative and associative, so shard aggregates are
    /// permutation-invariant like the rest of the experiment statistics.
    pub fn merge(&mut self, other: &RunMetrics) {
        self.events += other.events;
        for (a, b) in self.by_class.iter_mut().zip(&other.by_class) {
            *a += b;
        }
        self.lock_acquires += other.lock_acquires;
        self.lock_contentions += other.lock_contentions;
        self.waits += other.waits;
        self.notifies += other.notifies;
        for (site, n) in &other.sites {
            *self.sites.entry(*site).or_insert(0) += n;
        }
        for (site, n) in &other.contended_sites {
            *self.contended_sites.entry(*site).or_insert(0) += n;
        }
        self.sched_points += other.sched_points;
        self.context_switches += other.context_switches;
        self.forced_yields += other.forced_yields;
        self.noise_injections += other.noise_injections;
        self.spurious_wakeups += other.spurious_wakeups;
        self.threads += other.threads;
        self.steps_to_first_bug = match (self.steps_to_first_bug, other.steps_to_first_bug) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
    }

    /// The `k` busiest sites, by event count then site order (total order,
    /// so the ranking is deterministic).
    pub fn top_sites(&self, k: usize) -> Vec<(Loc, u64)> {
        let mut v: Vec<(Loc, u64)> = self.sites.iter().map(|(l, n)| (*l, *n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// The `k` most contended sites, ranked like [`RunMetrics::top_sites`].
    pub fn top_contended_sites(&self, k: usize) -> Vec<(Loc, u64)> {
        let mut v: Vec<(Loc, u64)> = self.contended_sites.iter().map(|(l, n)| (*l, *n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }
}

impl ToJson for RunMetrics {
    /// Flat object of the scalar counters (the NDJSON run-log payload).
    /// The per-site maps are profile-report material and deliberately
    /// excluded — a run log with a million runs must stay one compact
    /// object per line.
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("events".into(), self.events.to_json()),
            ("sched_points".into(), self.sched_points.to_json()),
            ("context_switches".into(), self.context_switches.to_json()),
            ("forced_yields".into(), self.forced_yields.to_json()),
            ("noise_injections".into(), self.noise_injections.to_json()),
            ("spurious_wakeups".into(), self.spurious_wakeups.to_json()),
            ("lock_acquires".into(), self.lock_acquires.to_json()),
            ("lock_contentions".into(), self.lock_contentions.to_json()),
            ("waits".into(), self.waits.to_json()),
            ("notifies".into(), self.notifies.to_json()),
            ("threads".into(), self.threads.to_json()),
            (
                "steps_to_first_bug".into(),
                self.steps_to_first_bug.to_json(),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(events: u64, first_bug: Option<u64>) -> RunMetrics {
        RunMetrics {
            events,
            lock_acquires: events / 2,
            steps_to_first_bug: first_bug,
            ..Default::default()
        }
    }

    #[test]
    fn merge_sums_and_takes_min_first_bug() {
        let mut a = metrics(10, Some(40));
        a.sites.insert(Loc::new("p", 1), 3);
        let mut b = metrics(6, Some(12));
        b.sites.insert(Loc::new("p", 1), 2);
        b.sites.insert(Loc::new("p", 2), 9);
        a.merge(&b);
        assert_eq!(a.events, 16);
        assert_eq!(a.lock_acquires, 8);
        assert_eq!(a.steps_to_first_bug, Some(12));
        assert_eq!(a.sites[&Loc::new("p", 1)], 5);
        assert_eq!(a.top_sites(1), vec![(Loc::new("p", 2), 9)]);
    }

    #[test]
    fn merge_keeps_some_over_none() {
        let mut a = metrics(1, None);
        a.merge(&metrics(1, Some(7)));
        assert_eq!(a.steps_to_first_bug, Some(7));
        let mut b = metrics(1, Some(7));
        b.merge(&metrics(1, None));
        assert_eq!(b.steps_to_first_bug, Some(7));
    }

    #[test]
    fn absorb_stats_copies_runtime_counters() {
        let mut m = RunMetrics::default();
        let stats = ExecStats {
            sched_points: 100,
            context_switches: 40,
            forced_yields: 3,
            noise_injections: 5,
            spurious_wakeups: 1,
            threads: 4,
            first_failure_step: Some(60),
            ..Default::default()
        };
        m.absorb_stats(&stats);
        assert_eq!(m.sched_points, 100);
        assert_eq!(m.context_switches, 40);
        assert_eq!(m.threads, 4);
        assert_eq!(m.steps_to_first_bug, Some(60));
    }

    #[test]
    fn json_is_flat_and_omits_sites() {
        let mut m = metrics(3, None);
        m.sites.insert(Loc::new("p", 1), 3);
        let s = mtt_json::to_string(&m);
        assert!(s.contains("\"events\":3"));
        assert!(s.contains("\"steps_to_first_bug\":null"));
        assert!(!s.contains("sites"));
    }
}
