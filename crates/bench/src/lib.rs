//! Shared helpers for the mtt benchmark harness: fast Criterion
//! settings (the benches exist to expose *relative* overheads, not
//! publication-grade absolute timings) and the standard workload.

use criterion::Criterion;
use mtt_core::prelude::*;

/// Criterion tuned for quick runs: the full harness must finish in minutes.
pub fn quick_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(800))
        .configure_from_args()
}

/// The standard bench workload: `threads` workers, each doing `work`
/// lock-protected increments and `work` racy increments.
pub fn workload(threads: u32, work: u32) -> Program {
    let mut b = ProgramBuilder::new("bench_workload");
    let x = b.var("x", 0);
    let y = b.var("y", 0);
    let l = b.lock("l");
    b.entry(move |ctx| {
        let kids: Vec<ThreadId> = (0..threads)
            .map(|i| {
                ctx.spawn(format!("w{i}"), move |ctx| {
                    for _ in 0..work {
                        ctx.lock(l);
                        let v = ctx.read(x);
                        ctx.write(x, v + 1);
                        ctx.unlock(l);
                        let v = ctx.read(y);
                        ctx.write(y, v + 1);
                    }
                })
            })
            .collect();
        for k in kids {
            ctx.join(k);
        }
    });
    b.build()
}
