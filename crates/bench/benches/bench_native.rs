//! Native-backend cost axes: how expensive is a run on real `std::thread`
//! compared to the model interpreter, and what does the event pipeline
//! (global sequence numbers through one atomic, `RaceCell` shadow writes)
//! add on top of raw thread spawn/join? The ratio is the price E13 pays
//! per differential cell, and the budget `mtt e13` wall-clock scales with.

use criterion::{black_box, Criterion};
use mtt_bench::quick_criterion;
use mtt_core::runtime::{Execution, RuntimeBackend};
use mtt_core::suite;
use mtt_core::tools::ToolConfig;

const MAX_STEPS: u64 = 60_000;

/// One seeded run of `lost_update` on the given backend — the E13 kernel
/// with the campaign-standard step budget and a short native watchdog.
fn one_run(cfg: &ToolConfig, seed: u64) -> mtt_core::runtime::Outcome {
    let p = suite::small::lost_update(2, 2);
    let mut exec = cfg.configure(Execution::new(&p.program), seed, MAX_STEPS);
    if cfg.backend.is_native() {
        exec = exec.wall_budget(std::time::Duration::from_secs(5));
    }
    exec.run()
}

fn roster() -> (ToolConfig, ToolConfig) {
    let model = ToolConfig::from_spec_str("sticky:0.9+name=model").expect("valid spec");
    let mut spec = model.spec.clone();
    spec.backend = RuntimeBackend::Native;
    let native = spec.resolve().expect("native spec resolves");
    (model, native)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("native_backend");
    let (model, native) = roster();

    g.bench_function("model_run", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(one_run(&model, seed))
        })
    });

    g.bench_function("native_run", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(one_run(&native, seed))
        })
    });

    // Raw spawn/join floor: two threads doing nothing through the engine,
    // so the delta to `native_run` is the event + RaceCell pipeline.
    g.bench_function("thread_spawn_join_floor", |b| {
        b.iter(|| {
            let hs: Vec<_> = (0..2)
                .map(|i| std::thread::spawn(move || black_box(i)))
                .collect();
            for h in hs {
                let _ = h.join();
            }
        })
    });

    g.finish();
}

/// Smoke throughput written to `BENCH_native.json` at the repository root
/// so CI can watch the model/native cost ratio without parsing Criterion
/// output.
fn write_smoke_json() {
    fn ns_per_iter(iters: u32, mut f: impl FnMut()) -> u64 {
        for _ in 0..4 {
            f();
        }
        let start = std::time::Instant::now();
        for _ in 0..iters {
            f();
        }
        (start.elapsed().as_nanos() / iters as u128) as u64
    }

    let (model, native) = roster();
    let mut seed = 0u64;
    let model_ns = ns_per_iter(256, || {
        seed += 1;
        let _ = one_run(&model, seed);
    });
    let native_ns = ns_per_iter(64, || {
        seed += 1;
        let _ = one_run(&native, seed);
    });
    let model_runs_per_sec = 1_000_000_000 / model_ns.max(1);
    let native_runs_per_sec = 1_000_000_000 / native_ns.max(1);
    let overhead = native_ns as f64 / model_ns.max(1) as f64;

    let results = [("model_run", model_ns), ("native_run", native_ns)];
    let entries: Vec<String> = results
        .iter()
        .map(|(name, ns)| format!(r#"{{"name":"{name}","ns_per_iter":{ns}}}"#))
        .collect();
    let json = format!(
        "{{\"schema\":\"mtt-bench-native\",\"version\":1,\"model_runs_per_sec\":{model_runs_per_sec},\"native_runs_per_sec\":{native_runs_per_sec},\"native_over_model\":{overhead:.2},\"results\":[{}]}}\n",
        entries.join(",")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_native.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn main() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
    write_smoke_json();
}
