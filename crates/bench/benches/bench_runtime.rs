//! Substrate baseline: scheduling-point throughput of the controlled
//! runtime, with and without sinks attached — the denominator every other
//! overhead number is read against.

use criterion::Criterion;
use mtt_bench::{quick_criterion, workload};
use mtt_core::instrument::{CountingSink, NullSink};
use mtt_core::prelude::*;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime");

    let p = workload(4, 25);
    g.bench_function("bare_execution_4x25", |b| {
        b.iter(|| {
            Execution::new(&p)
                .scheduler(Box::new(RandomScheduler::new(1)))
                .run()
        })
    });
    g.bench_function("null_sink_4x25", |b| {
        b.iter(|| {
            Execution::new(&p)
                .scheduler(Box::new(RandomScheduler::new(1)))
                .sink(Box::new(NullSink))
                .run()
        })
    });
    g.bench_function("counting_sink_4x25", |b| {
        b.iter(|| {
            Execution::new(&p)
                .scheduler(Box::new(RandomScheduler::new(1)))
                .sink(Box::new(CountingSink::new()))
                .run()
        })
    });
    // Scaling in thread count.
    for threads in [2u32, 8, 16] {
        let p = workload(threads, 10);
        g.bench_function(format!("threads_{threads}x10"), |b| {
            b.iter(|| {
                Execution::new(&p)
                    .scheduler(Box::new(RandomScheduler::new(1)))
                    .run()
            })
        });
    }
    g.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
