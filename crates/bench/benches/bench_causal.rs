//! Causal-annotation overhead: what `mtt explain` / `--annotate` add on
//! top of plain trace generation.
//!
//! The acceptance bar for the observability layer is that annotating a
//! trace (vector clocks + happens-before edges) costs well under 10% of
//! generating it in the first place — the annotator is a single linear
//! pass over the records. `tracegen_only` is the baseline, `tracegen_plus_
//! annotate` the full pipeline; the downstream renderings (timeline, diff)
//! are pinned separately since `mtt explain` pays them once per
//! invocation, not per run.

use criterion::Criterion;
use mtt_bench::quick_criterion;
use mtt_core::causal::{annotate_trace, render_timeline, TraceDiff};
use mtt_core::experiment::tracegen::{self, TraceGenOptions};

fn opts(seed: u64) -> TraceGenOptions {
    TraceGenOptions {
        seed,
        stickiness: 0.0,
        max_steps: 20_000,
    }
}

fn bench_annotation_overhead(c: &mut Criterion) {
    // The E1 slice the telemetry bench also uses: two small programs, a
    // handful of seeds each.
    let programs = [
        mtt_core::suite::small::lost_update(2, 2),
        mtt_core::suite::small::ab_ba(),
    ];
    let mut g = c.benchmark_group("causal_annotation");
    g.bench_function("tracegen_only_2progs_x8seeds", |b| {
        b.iter(|| {
            let mut events = 0usize;
            for p in &programs {
                for seed in 0..8 {
                    events += tracegen::generate(p, &opts(seed)).records.len();
                }
            }
            events
        })
    });
    g.bench_function("tracegen_plus_annotate_2progs_x8seeds", |b| {
        b.iter(|| {
            let mut edges = 0usize;
            for p in &programs {
                for seed in 0..8 {
                    let t = tracegen::generate(p, &opts(seed));
                    let ann = annotate_trace(&t);
                    edges += ann.notes.iter().map(|n| n.hb_from.len()).sum::<usize>();
                }
            }
            edges
        })
    });
    g.finish();
}

fn bench_renderings(c: &mut Criterion) {
    let p = mtt_core::suite::small::lost_update(2, 2);
    let fail = tracegen::generate(&p, &opts(2));
    let pass = tracegen::generate(&p, &opts(0));
    let ann = annotate_trace(&fail);
    let mut g = c.benchmark_group("causal_render");
    g.bench_function("annotate_one_trace", |b| b.iter(|| annotate_trace(&fail)));
    g.bench_function("timeline", |b| b.iter(|| render_timeline(&fail, &ann)));
    g.bench_function("diff", |b| b.iter(|| TraceDiff::compute(&fail, &pass)));
    g.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench_annotation_overhead(&mut c);
    bench_renderings(&mut c);
    c.final_summary();
}
