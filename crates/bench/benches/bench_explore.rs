//! E6's cost axis: exploration throughput (executions/second) and the
//! price/benefit of each reduction on a fixed schedule tree.

use criterion::Criterion;
use mtt_bench::quick_criterion;
use mtt_core::explore::{ExploreOptions, Explorer};
use mtt_core::prelude::*;

fn racy(increments: u32) -> Program {
    let mut b = ProgramBuilder::new("bench_racy");
    let x = b.var("x", 0);
    b.entry(move |ctx| {
        let a = ctx.spawn("a", move |ctx| {
            for _ in 0..increments {
                let v = ctx.read(x);
                ctx.write(x, v + 1);
            }
        });
        let c = ctx.spawn("b", move |ctx| {
            for _ in 0..increments {
                let v = ctx.read(x);
                ctx.write(x, v + 1);
            }
        });
        ctx.join(a);
        ctx.join(c);
    });
    b.build()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("explore");
    let p = racy(2);

    let configs: Vec<(&str, ExploreOptions)> = vec![
        (
            "dfs_exhaustive",
            ExploreOptions {
                branch_only_visible: false,
                stop_on_first_bug: false,
                max_executions: 1_000_000,
                ..Default::default()
            },
        ),
        (
            "dfs_por",
            ExploreOptions {
                branch_only_visible: true,
                stop_on_first_bug: false,
                max_executions: 1_000_000,
                ..Default::default()
            },
        ),
        (
            "dfs_por_stateful",
            ExploreOptions {
                branch_only_visible: true,
                stateful: true,
                stop_on_first_bug: false,
                max_executions: 1_000_000,
                ..Default::default()
            },
        ),
        (
            "preempt_bound_2",
            ExploreOptions {
                branch_only_visible: true,
                preemption_bound: Some(2),
                stop_on_first_bug: false,
                max_executions: 1_000_000,
                ..Default::default()
            },
        ),
    ];
    for (name, opts) in configs {
        g.bench_function(name, |b| {
            b.iter(|| {
                let r = Explorer::new(&p, opts.clone()).run();
                assert!(r.exhausted);
                r.executions
            })
        });
    }
    g.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
