//! E3's overhead axis: the record-phase cost — "the latter is significant
//! in the record phase overhead, and not so much in the replay phase".

use criterion::Criterion;
use mtt_bench::{quick_criterion, workload};
use mtt_core::prelude::*;
use mtt_core::runtime::NoNoise;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("replay");
    let p = workload(4, 20);

    g.bench_function("bare", |b| {
        b.iter(|| {
            Execution::new(&p)
                .scheduler(Box::new(RandomScheduler::new(1)))
                .run()
        })
    });
    g.bench_function("recording", |b| {
        b.iter(|| {
            let (sched, noise, handle) = record(p.name(), 1, RandomScheduler::new(1), NoNoise);
            let o = Execution::new(&p)
                .scheduler(Box::new(sched))
                .noise(Box::new(noise))
                .run();
            (o.fingerprint(), handle.take_log().decisions.len())
        })
    });
    // Playback cost (the phase the paper says matters less).
    let (sched, noise, handle) = record(p.name(), 1, RandomScheduler::new(1), NoNoise);
    let _ = Execution::new(&p)
        .scheduler(Box::new(sched))
        .noise(Box::new(noise))
        .run();
    let log = handle.take_log();
    g.bench_function("playback", |b| {
        b.iter(|| {
            let pb = PlaybackScheduler::new(log.clone(), DivergencePolicy::Strict);
            Execution::new(&p).scheduler(Box::new(pb)).run()
        })
    });
    g.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
