//! Interleaving-space observatory cost axes: trace fingerprints hashed
//! per second (the pure `fingerprint_trace` pass — this bounds how cheap
//! per-run schedule identity is once a trace exists), fingerprinted
//! executions per second (the E12 / campaign kernel: execute + hash in
//! one sink pass), full E12 cells per second, and the `ScheduleCoverage`
//! accumulator fold.

use criterion::{black_box, Criterion};
use mtt_bench::quick_criterion;
use mtt_core::causal::fingerprint_trace;
use mtt_core::coverage::ScheduleCoverage;
use mtt_core::experiment::saturation_eval::{
    run_fingerprint, saturation_roster, SATURATION_BASE_SEED, SATURATION_MAX_STEPS,
};
use mtt_core::experiment::tracegen::{self, TraceGenOptions};

fn opts(seed: u64) -> TraceGenOptions {
    TraceGenOptions {
        seed,
        stickiness: 0.0,
        max_steps: 20_000,
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedule_coverage");

    // Pure hashing: fingerprint an already-collected trace. Linear pass
    // with a per-thread vector-clock fold; no allocation proportional to
    // the schedule count.
    let trace = tracegen::generate(&mtt_core::suite::small::lost_update(2, 2), &opts(7));
    g.bench_function("fingerprint_trace_lost_update", |b| {
        b.iter(|| black_box(fingerprint_trace(black_box(&trace))))
    });

    // The E12 / campaign kernel: one seeded execution with the
    // fingerprint sink attached — execution dominates, hashing rides along.
    let program = mtt_core::suite::small::lost_update(2, 2);
    let roster = saturation_roster();
    let sticky = &roster[1]; // sticky:0.9, the bare-random rung of the ladder
    g.bench_function("run_fingerprint_sticky", |b| {
        let mut seed = SATURATION_BASE_SEED;
        b.iter(|| {
            seed += 1;
            black_box(run_fingerprint(
                &program.program,
                sticky,
                seed,
                SATURATION_MAX_STEPS,
            ))
        })
    });

    // One full E12 cell at 8 runs: the unit `run_saturation_on` shards.
    g.bench_function("e12_cell_8runs", |b| {
        b.iter(|| {
            let mut cov = ScheduleCoverage::default();
            for r in 0..8 {
                cov.observe(run_fingerprint(
                    &program.program,
                    sticky,
                    SATURATION_BASE_SEED + r,
                    SATURATION_MAX_STEPS,
                ));
            }
            black_box((cov.distinct(), cov.good_turing_unseen_mass(), cov.auc()))
        })
    });

    // The accumulator alone, fed a synthetic Zipf-ish class stream: the
    // `mtt status` distinct-schedules fold pays this per done record.
    g.bench_function("schedule_coverage_observe_1k", |b| {
        b.iter(|| {
            let mut cov = ScheduleCoverage::default();
            for i in 0u64..1000 {
                cov.observe(format!("{:032x}", i * i % 97));
            }
            black_box(cov.good_turing_unseen_mass())
        })
    });

    g.finish();
}

/// Smoke throughput for the observatory, written to `BENCH_cover.json` at
/// the repository root so CI can track the cost of schedule-identity
/// bookkeeping without parsing Criterion output. `fingerprints_per_sec`
/// is pure-hash throughput over an existing trace; `e12_cells_per_sec`
/// is full fingerprinted-execution cells (8 runs each) per second.
fn write_smoke_json() {
    fn ns_per_iter(iters: u32, mut f: impl FnMut()) -> u64 {
        for _ in 0..4 {
            f();
        }
        let start = std::time::Instant::now();
        for _ in 0..iters {
            f();
        }
        (start.elapsed().as_nanos() / iters as u128) as u64
    }

    let trace = tracegen::generate(&mtt_core::suite::small::lost_update(2, 2), &opts(7));
    let hash_ns = ns_per_iter(4096, || {
        black_box(fingerprint_trace(&trace));
    });
    let fingerprints_per_sec = 1_000_000_000 / hash_ns.max(1);

    let program = mtt_core::suite::small::lost_update(2, 2);
    let roster = saturation_roster();
    let sticky = &roster[1];
    let cell_ns = ns_per_iter(16, || {
        let mut cov = ScheduleCoverage::default();
        for r in 0..8 {
            cov.observe(run_fingerprint(
                &program.program,
                sticky,
                SATURATION_BASE_SEED + r,
                SATURATION_MAX_STEPS,
            ));
        }
        black_box(cov.distinct());
    });
    let e12_cells_per_sec = 1_000_000_000 / cell_ns.max(1);

    let results = [("fingerprint_trace", hash_ns), ("e12_cell_8runs", cell_ns)];
    let entries: Vec<String> = results
        .iter()
        .map(|(name, ns)| format!(r#"{{"name":"{name}","ns_per_iter":{ns}}}"#))
        .collect();
    let json = format!(
        "{{\"schema\":\"mtt-bench-cover\",\"version\":1,\"fingerprints_per_sec\":{fingerprints_per_sec},\"e12_cells_per_sec\":{e12_cells_per_sec},\"results\":[{}]}}\n",
        entries.join(",")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cover.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn main() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
    write_smoke_json();
}
