//! Ablations for the runtime design choices DESIGN.md calls out: the
//! weak-visibility cache, spurious-wakeup injection, and scheduler choice.

use criterion::Criterion;
use mtt_bench::quick_criterion;
use mtt_core::prelude::*;

/// Workload whose reads dominate: `threads` workers polling a flag and a
/// counter, so the volatile-vs-cached read path difference is visible.
fn read_heavy(volatile: bool, threads: u32, reads: u32) -> Program {
    let mut b = ProgramBuilder::new("ablation_reads");
    let flag = if volatile {
        b.var("flag", 0)
    } else {
        b.var_nonvolatile("flag", 0)
    };
    let sum = b.var("sum", 0);
    b.entry(move |ctx| {
        let kids: Vec<ThreadId> = (0..threads)
            .map(|i| {
                ctx.spawn(format!("r{i}"), move |ctx| {
                    let mut acc = 0;
                    for _ in 0..reads {
                        acc += ctx.read(flag);
                    }
                    ctx.rmw(sum, move |s| s + acc);
                })
            })
            .collect();
        for k in kids {
            ctx.join(k);
        }
    });
    b.build()
}

/// Workload with cond waiters, so spurious injection has targets.
fn wait_heavy() -> Program {
    let mut b = ProgramBuilder::new("ablation_waits");
    let turn = b.var("turn", 0);
    let l = b.lock("l");
    let c = b.cond("c");
    b.entry(move |ctx| {
        let kids: Vec<ThreadId> = (0..3)
            .map(|i| {
                ctx.spawn(format!("w{i}"), move |ctx| {
                    for round in 0..3i64 {
                        ctx.lock(l);
                        while ctx.read(turn) != round * 3 + i64::from(i) {
                            ctx.wait(c, l);
                        }
                        ctx.rmw(turn, |t| t + 1);
                        ctx.notify_all(c);
                        ctx.unlock(l);
                    }
                })
            })
            .collect();
        for k in kids {
            ctx.join(k);
        }
    });
    b.build()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");

    // Weak-visibility cache on/off on the read path.
    for (label, volatile) in [("reads_volatile", true), ("reads_cached", false)] {
        let p = read_heavy(volatile, 3, 30);
        g.bench_function(label, |b| {
            b.iter(|| {
                Execution::new(&p)
                    .scheduler(Box::new(RandomScheduler::new(2)))
                    .run()
            })
        });
    }

    // Spurious-wakeup injection on/off.
    let p = wait_heavy();
    g.bench_function("waits_no_spurious", |b| {
        b.iter(|| {
            Execution::new(&p)
                .scheduler(Box::new(RandomScheduler::new(2)))
                .run()
        })
    });
    g.bench_function("waits_spurious_0.1", |b| {
        b.iter(|| {
            Execution::new(&p)
                .scheduler(Box::new(RandomScheduler::new(2)))
                .spurious_wakeups(0.1)
                .run()
        })
    });

    // Scheduler choice on a fixed workload.
    let p = read_heavy(true, 4, 20);
    g.bench_function("sched_random", |b| {
        b.iter(|| {
            Execution::new(&p)
                .scheduler(Box::new(RandomScheduler::new(3)))
                .run()
        })
    });
    g.bench_function("sched_pct_d3", |b| {
        b.iter(|| {
            Execution::new(&p)
                .scheduler(Box::new(PctScheduler::new(3, 3, 300)))
                .run()
        })
    });
    g.bench_function("sched_fifo", |b| {
        b.iter(|| Execution::new(&p).scheduler(Box::new(FifoScheduler)).run())
    });
    g.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
