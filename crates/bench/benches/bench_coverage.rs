//! E4's overhead axis: what each coverage model costs online.

use criterion::Criterion;
use mtt_bench::{quick_criterion, workload};
use mtt_core::coverage::{ContentionCoverage, OrderedPairCoverage, SiteCoverage, SyncCoverage};
use mtt_core::prelude::*;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("coverage_models");
    let p = workload(4, 20);
    let table = p.var_table();

    g.bench_function("no_model", |b| {
        b.iter(|| {
            Execution::new(&p)
                .scheduler(Box::new(RandomScheduler::new(1)))
                .run()
        })
    });
    g.bench_function("site", |b| {
        b.iter(|| {
            Execution::new(&p)
                .scheduler(Box::new(RandomScheduler::new(1)))
                .sink(Box::new(SiteCoverage::new()))
                .run()
        })
    });
    let t2 = table.clone();
    g.bench_function("contention", |b| {
        b.iter(|| {
            Execution::new(&p)
                .scheduler(Box::new(RandomScheduler::new(1)))
                .sink(Box::new(ContentionCoverage::new(&t2)))
                .run()
        })
    });
    g.bench_function("sync", |b| {
        b.iter(|| {
            Execution::new(&p)
                .scheduler(Box::new(RandomScheduler::new(1)))
                .sink(Box::new(SyncCoverage::new()))
                .run()
        })
    });
    let t3 = table.clone();
    g.bench_function("ordered_pair", |b| {
        b.iter(|| {
            Execution::new(&p)
                .scheduler(Box::new(RandomScheduler::new(1)))
                .sink(Box::new(OrderedPairCoverage::new(&t3)))
                .run()
        })
    });
    g.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
