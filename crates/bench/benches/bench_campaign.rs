//! The parallel campaign layer: wall-clock scaling of one E1 slice as the
//! worker count grows. The run matrix is embarrassingly parallel (each run
//! is a pure function of its seed), so on an N-core machine throughput
//! should approach Nx until workers outnumber cores; on the single-core CI
//! container the parallel points mostly measure scheduling overhead, which
//! is the honest lower bound worth tracking too.

use criterion::Criterion;
use mtt_bench::quick_criterion;
use mtt_core::experiment::campaign::Campaign;
use mtt_core::experiment::jobpool::JobPool;

fn e1_slice(runs: u64) -> Campaign {
    Campaign::standard(
        vec![
            mtt_core::suite::small::lost_update(2, 2),
            mtt_core::suite::small::ab_ba(),
        ],
        runs,
    )
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("campaign_jobs");
    let campaign = e1_slice(10); // x 2 programs x 10 roster tools = 200 runs
    for jobs in [1usize, 2, 4, 8] {
        let pool = JobPool::new(jobs);
        g.bench_function(format!("e1_200runs_jobs{jobs}"), |b| {
            b.iter(|| campaign.run_on(&pool))
        });
    }
    g.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
