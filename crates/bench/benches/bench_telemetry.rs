//! Telemetry overhead: the cost of the metrics layer on one E1 slice.
//!
//! Three points matter. `off` is the plain campaign — telemetry disabled,
//! which must stay within noise of the pre-telemetry baseline (the enable
//! check is a single branch per run). `on` attaches the `TelemetrySink` to
//! every run and harvests per-run metrics, which is the honest price of a
//! profile pass. The registry group pins the hot-path cost of the atomic
//! counter/gauge/histogram primitives themselves.

use criterion::Criterion;
use mtt_bench::quick_criterion;
use mtt_core::experiment::campaign::Campaign;
use mtt_core::experiment::jobpool::JobPool;
use mtt_core::telemetry::MetricsRegistry;

fn e1_slice(runs: u64, telemetry: bool) -> Campaign {
    Campaign {
        telemetry,
        ..Campaign::standard(
            vec![
                mtt_core::suite::small::lost_update(2, 2),
                mtt_core::suite::small::ab_ba(),
            ],
            runs,
        )
    }
}

fn bench_campaign_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_overhead");
    let pool = JobPool::serial();
    let off = e1_slice(5, false);
    g.bench_function("e1_100runs_telemetry_off", |b| b.iter(|| off.run_on(&pool)));
    let on = e1_slice(5, true);
    g.bench_function("e1_100runs_telemetry_on", |b| b.iter(|| on.run_full(&pool)));
    g.finish();
}

fn bench_registry_hot_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_registry");
    let reg = MetricsRegistry::new();
    let counter = reg.counter("hot");
    g.bench_function("counter_inc_x1000", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                counter.inc();
            }
            counter.get()
        })
    });
    let gauge = reg.gauge("peak");
    g.bench_function("gauge_record_x1000", |b| {
        b.iter(|| {
            for v in 0..1000u64 {
                gauge.record(v);
            }
            gauge.get()
        })
    });
    let hist = reg.histogram("lat", &[10, 100, 1_000, 10_000]);
    g.bench_function("histogram_observe_x1000", |b| {
        b.iter(|| {
            for v in 0..1000u64 {
                hist.observe(v * 7 % 12_000);
            }
        })
    });
    g.bench_function("snapshot_and_merge", |b| {
        b.iter(|| {
            let mut s = reg.snapshot();
            let t = reg.snapshot();
            s.merge(&t);
            s
        })
    });
    g.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench_campaign_overhead(&mut c);
    bench_registry_hot_path(&mut c);
    c.final_summary();
}
