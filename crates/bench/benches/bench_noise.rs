//! E1's overhead axis: "two noise makers can be compared to each other
//! with regard to the performance overhead and the likelihood of
//! uncovering bugs" — this bench measures the first half, per heuristic
//! and per placement strategy. The tool stacks come from the `mtt-tools`
//! registry, so the benched configurations are exactly the ones a
//! `--tools` flag can name.

use criterion::Criterion;
use mtt_bench::{quick_criterion, workload};
use mtt_core::prelude::*;
use mtt_core::tools::ToolConfig;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("noise_overhead");
    let p = workload(4, 20);

    let heuristics = [
        "sticky:0.9+name=none",
        "sticky:0.9+noise=yield:0.2+name=yield-0.2",
        "sticky:0.9+noise=sleep:0.2:20+name=sleep-0.2",
        "sticky:0.9+noise=mixed:0.2:20+name=mixed-0.2",
        "sticky:0.9+noise=halt+name=halt",
        "sticky:0.9+noise=coverage+name=coverage",
    ];
    for spec in heuristics {
        let cfg = ToolConfig::from_spec_str(spec).expect("bench specs are valid");
        g.bench_function(&cfg.name, |b| {
            b.iter(|| cfg.configure(Execution::new(&p), 1, u64::MAX).run())
        });
    }

    // Placement: the same heuristic consulted at fewer points.
    let placements = [
        "sticky:0.9+noise=sleep:0.2:20+place=everywhere+name=placed-everywhere",
        "sticky:0.9+noise=sleep:0.2:20+place=sync+name=placed-sync-only",
        "sticky:0.9+noise=sleep:0.2:20+place=vars+name=placed-var-access",
    ];
    for spec in placements {
        let cfg = ToolConfig::from_spec_str(spec).expect("bench specs are valid");
        g.bench_function(&cfg.name, |b| {
            b.iter(|| cfg.configure(Execution::new(&p), 1, u64::MAX).run())
        });
    }
    g.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
