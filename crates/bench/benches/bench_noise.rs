//! E1's overhead axis: "two noise makers can be compared to each other
//! with regard to the performance overhead and the likelihood of
//! uncovering bugs" — this bench measures the first half, per heuristic
//! and per placement strategy.

use criterion::Criterion;
use mtt_bench::{quick_criterion, workload};
use mtt_core::noise::{
    placement, CoverageDirected, HaltOneThread, Mixed, RandomSleep, RandomYield,
};
use mtt_core::prelude::*;
use mtt_core::runtime::NoiseMaker;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("noise_overhead");
    let p = workload(4, 20);

    type NoiseFactory = Box<dyn Fn() -> Box<dyn NoiseMaker>>;
    let heuristics: Vec<(&str, NoiseFactory)> = vec![
        ("none", Box::new(|| Box::new(mtt_core::runtime::NoNoise))),
        ("yield-0.2", Box::new(|| Box::new(RandomYield::new(1, 0.2)))),
        (
            "sleep-0.2",
            Box::new(|| Box::new(RandomSleep::new(1, 0.2, 20))),
        ),
        ("mixed-0.2", Box::new(|| Box::new(Mixed::new(1, 0.2, 20)))),
        (
            "halt",
            Box::new(|| Box::new(HaltOneThread::new(1, 0.05, 200))),
        ),
        (
            "coverage",
            Box::new(|| Box::new(CoverageDirected::new(1, 0.6, 0.05, 20))),
        ),
    ];
    for (name, mk) in &heuristics {
        g.bench_function(*name, |b| {
            b.iter(|| {
                Execution::new(&p)
                    .scheduler(Box::new(RandomScheduler::sticky(1, 0.9)))
                    .noise(mk())
                    .run()
            })
        });
    }

    // Placement: the same heuristic consulted at fewer points.
    let placements = [
        ("placed-everywhere", placement::everywhere()),
        ("placed-sync-only", placement::sync_only()),
        ("placed-var-access", placement::var_access_only()),
    ];
    for (name, plan) in &placements {
        g.bench_function(*name, |b| {
            b.iter(|| {
                Execution::new(&p)
                    .scheduler(Box::new(RandomScheduler::sticky(1, 0.9)))
                    .noise(Box::new(RandomSleep::new(1, 0.2, 20)))
                    .noise_plan(plan.clone())
                    .run()
            })
        });
    }
    g.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
