//! The variant-family generator's cost axes: programs generated per second
//! (a family is a pure function of `(seed, index)`, so generation speed
//! bounds how large an E10 population is practical) and E10 scoreboard
//! cells evaluated per second (one cell = one tool judging one member).

use criterion::{black_box, Criterion};
use mtt_bench::quick_criterion;
use mtt_core::experiment::gen_eval::{run_gen_eval_on, GenEvalOptions};
use mtt_core::experiment::jobpool::JobPool;
use mtt_core::gen;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("gen_pipeline");

    // One family end to end: pattern draw, knob draw, render, canonical
    // parse/print round-trip, manifest-line location — for both twins.
    g.bench_function("family", |b| {
        let mut index = 0u64;
        b.iter(|| {
            index = (index + 1) % 64;
            black_box(gen::family(42, index))
        })
    });

    // Generation only, amortized over a realistic population.
    g.bench_function("generate_families_8", |b| {
        b.iter(|| {
            black_box(gen::generate_families(&gen::GenOptions {
                seed: 42,
                families: 8,
            }))
        })
    });

    // Members straight into the runtime: the compile path E10 exercises.
    g.bench_function("member_compile", |b| {
        let fam = gen::family(42, 0);
        let member = fam.buggy().next().expect("race family has a buggy member");
        b.iter(|| black_box(member.compile()))
    });

    // The full E10 kernel at a small scale: static oracle plus the dynamic
    // roster over every member of four families.
    g.bench_function("e10_four_families", |b| {
        let opts = GenEvalOptions {
            seed: 42,
            families: 4,
            runs: 2,
        };
        let pool = JobPool::serial();
        b.iter(|| black_box(run_gen_eval_on(&opts, &pool)))
    });

    g.finish();
}

/// Smoke throughput for the generator, written to `BENCH_gen.json` at the
/// repository root so CI (and the roadmap's per-PR bench artifact) can
/// diff generation and E10 scoring cost without parsing Criterion output.
fn write_smoke_json() {
    fn ns_per_iter(iters: u32, mut f: impl FnMut()) -> u64 {
        for _ in 0..4 {
            f();
        }
        let start = std::time::Instant::now();
        for _ in 0..iters {
            f();
        }
        (start.elapsed().as_nanos() / iters as u128) as u64
    }

    // Programs per second: members produced per wall-clock second,
    // measured over a 16-family population (one `family()` call yields
    // every member of one family).
    let opts = gen::GenOptions {
        seed: 42,
        families: 16,
    };
    let members: u64 = gen::generate_families(&opts)
        .iter()
        .map(|f| f.members.len() as u64)
        .sum();
    let gen_ns = ns_per_iter(32, || {
        gen::generate_families(&opts);
    });
    let programs_per_sec = members.saturating_mul(1_000_000_000) / gen_ns.max(1);

    // E10 cells per second: one cell is one (tool, member) judgment.
    let eval_opts = GenEvalOptions {
        seed: 42,
        families: 4,
        runs: 2,
    };
    let pool = JobPool::serial();
    let rows = run_gen_eval_on(&eval_opts, &pool);
    let eval_members: u64 = rows.iter().map(|f| f.members.len() as u64).sum();
    let tools = mtt_core::experiment::gen_eval::score_tools(&rows).len() as u64;
    let cells = eval_members * tools;
    let eval_ns = ns_per_iter(8, || {
        run_gen_eval_on(&eval_opts, &pool);
    });
    let e10_cells_per_sec = cells.saturating_mul(1_000_000_000) / eval_ns.max(1);

    let results = [
        ("family_population_16", gen_ns),
        ("e10_four_families", eval_ns),
    ];
    let entries: Vec<String> = results
        .iter()
        .map(|(name, ns)| format!(r#"{{"name":"{name}","ns_per_iter":{ns}}}"#))
        .collect();
    let json = format!(
        "{{\"schema\":\"mtt-bench-gen\",\"version\":1,\"programs_per_sec\":{programs_per_sec},\"e10_cells_per_sec\":{e10_cells_per_sec},\"results\":[{}]}}\n",
        entries.join(",")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gen.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn main() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
    write_smoke_json();
}
