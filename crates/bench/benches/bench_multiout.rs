//! E5's throughput: how fast the §4.4 multiout benchmark program can be
//! sampled under each scheduler — outcome-distribution experiments run
//! thousands of executions, so per-run cost is the budget driver.

use criterion::Criterion;
use mtt_bench::quick_criterion;
use mtt_core::prelude::*;
use mtt_core::suite::multiout;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("multiout");
    let p = multiout::program();

    g.bench_function("fifo", |b| {
        b.iter(|| {
            let o = Execution::new(&p).scheduler(Box::new(FifoScheduler)).run();
            multiout::signature(&o)
        })
    });
    g.bench_function("uniform_random", |b| {
        b.iter(|| {
            let o = Execution::new(&p)
                .scheduler(Box::new(RandomScheduler::new(3)))
                .run();
            multiout::signature(&o)
        })
    });
    g.bench_function("sticky_with_sleep_noise", |b| {
        b.iter(|| {
            let o = Execution::new(&p)
                .scheduler(Box::new(RandomScheduler::sticky(3, 0.9)))
                .noise(Box::new(RandomSleep::new(3, 0.2, 15)))
                .run();
            multiout::signature(&o)
        })
    });
    g.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
