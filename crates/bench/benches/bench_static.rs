//! E7's cost axis: the static pipeline (parse → analyze → compile) and the
//! event-stream saving that advised instrumentation buys at run time.

use criterion::Criterion;
use mtt_bench::quick_criterion;
use mtt_core::instrument::{InstrumentationPlan, NullSink};
use mtt_core::prelude::*;
use mtt_core::statik::{analyze, compile, parse, samples};

/// A deep synthetic thread body for the dataflow solver: nested loops and
/// branches with lock churn, the worst case for worklist convergence.
fn solver_workout_src(depth: usize) -> String {
    let mut body = String::from("x = x + 1;\n");
    for i in 0..depth {
        let lock = if i % 2 == 0 { "a" } else { "b" };
        body = format!(
            "acquire {lock};\nwhile (x < {i}) {{\nif (x) {{\n{body}}} else {{\nrelease {lock};\nacquire {lock};\n}}\nx = x + 1;\n}}\nrelease {lock};\n"
        );
    }
    format!(
        "program workout {{ var x; lock a; lock b; thread t {{\nlocal v = 0;\n{body}v = x;\n}} }}"
    )
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("static_pipeline");
    let src = samples::ABBA;

    g.bench_function("parse", |b| b.iter(|| parse(src).unwrap()));
    let ast = parse(src).unwrap();
    g.bench_function("analyze", |b| b.iter(|| analyze(&ast)));
    g.bench_function("compile", |b| b.iter(|| compile(&ast)));

    // The worklist engine itself, isolated from the rest of the pipeline.
    {
        use mtt_core::statik::cfg::build_cfg;
        use mtt_core::statik::dataflow::{held_locks, solve, ReachingDefs};
        let workout = parse(&solver_workout_src(8)).unwrap();
        let cfg = build_cfg(&workout.threads[0]);
        g.bench_function("dataflow_locks_must", |b| b.iter(|| held_locks(&cfg, true)));
        g.bench_function("dataflow_reaching_defs", |b| {
            b.iter(|| solve(&cfg, &ReachingDefs))
        });
        g.bench_function("analyze_with_diagnostics_workout", |b| {
            b.iter(|| analyze(&workout))
        });
    }

    let analysis = analyze(&ast);
    let program = compile(&ast);
    g.bench_function("run_full_instrumentation", |b| {
        b.iter(|| {
            Execution::new(&program)
                .scheduler(Box::new(RandomScheduler::new(2)))
                .plan(InstrumentationPlan::full())
                .sink(Box::new(NullSink))
                .max_steps(20_000)
                .run()
        })
    });
    let advised = InstrumentationPlan::advised(analysis.info.clone());
    g.bench_function("run_advised_instrumentation", |b| {
        b.iter(|| {
            Execution::new(&program)
                .scheduler(Box::new(RandomScheduler::new(2)))
                .plan(advised.clone())
                .sink(Box::new(NullSink))
                .max_steps(20_000)
                .run()
        })
    });
    g.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
