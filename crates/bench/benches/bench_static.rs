//! E7's cost axis: the static pipeline (parse → analyze → compile) and the
//! event-stream saving that advised instrumentation buys at run time.

use criterion::Criterion;
use mtt_bench::quick_criterion;
use mtt_core::instrument::{InstrumentationPlan, NullSink};
use mtt_core::prelude::*;
use mtt_core::statik::{analyze, compile, parse, samples};

/// A deep synthetic thread body for the dataflow solver: nested loops and
/// branches with lock churn, the worst case for worklist convergence.
fn solver_workout_src(depth: usize) -> String {
    let mut body = String::from("x = x + 1;\n");
    for i in 0..depth {
        let lock = if i % 2 == 0 { "a" } else { "b" };
        body = format!(
            "acquire {lock};\nwhile (x < {i}) {{\nif (x) {{\n{body}}} else {{\nrelease {lock};\nacquire {lock};\n}}\nx = x + 1;\n}}\nrelease {lock};\n"
        );
    }
    format!(
        "program workout {{ var x; lock a; lock b; thread t {{\nlocal v = 0;\n{body}v = x;\n}} }}"
    )
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("static_pipeline");
    let src = samples::ABBA;

    g.bench_function("parse", |b| b.iter(|| parse(src).unwrap()));
    let ast = parse(src).unwrap();
    g.bench_function("analyze", |b| b.iter(|| analyze(&ast)));
    g.bench_function("compile", |b| b.iter(|| compile(&ast)));

    // The lock-order-graph and independence passes on their richest inputs:
    // the 3-thread cycle (L006) and the lost-notify sample (L007).
    {
        let cycle3 = parse(samples::LOCK_CYCLE3).unwrap();
        g.bench_function("analyze_lock_cycle3", |b| b.iter(|| analyze(&cycle3)));
        let lost_notify = parse(samples::LOST_NOTIFY).unwrap();
        g.bench_function("analyze_lost_notify", |b| b.iter(|| analyze(&lost_notify)));
    }

    // The worklist engine itself, isolated from the rest of the pipeline.
    {
        use mtt_core::statik::cfg::build_cfg;
        use mtt_core::statik::dataflow::{held_locks, solve, ReachingDefs};
        let workout = parse(&solver_workout_src(8)).unwrap();
        let cfg = build_cfg(&workout.threads[0]);
        g.bench_function("dataflow_locks_must", |b| b.iter(|| held_locks(&cfg, true)));
        g.bench_function("dataflow_reaching_defs", |b| {
            b.iter(|| solve(&cfg, &ReachingDefs))
        });
        g.bench_function("analyze_with_diagnostics_workout", |b| {
            b.iter(|| analyze(&workout))
        });
    }

    let analysis = analyze(&ast);
    let program = compile(&ast);
    g.bench_function("run_full_instrumentation", |b| {
        b.iter(|| {
            Execution::new(&program)
                .scheduler(Box::new(RandomScheduler::new(2)))
                .plan(InstrumentationPlan::full())
                .sink(Box::new(NullSink))
                .max_steps(20_000)
                .run()
        })
    });
    let advised = InstrumentationPlan::advised(analysis.info.clone());
    g.bench_function("run_advised_instrumentation", |b| {
        b.iter(|| {
            Execution::new(&program)
                .scheduler(Box::new(RandomScheduler::new(2)))
                .plan(advised.clone())
                .sink(Box::new(NullSink))
                .max_steps(20_000)
                .run()
        })
    });
    g.finish();
}

/// Smoke timings for the static pipeline, written to `BENCH_static.json`
/// at the repository root so CI (and the roadmap's per-PR bench artifact)
/// can diff the static-analysis cost without parsing Criterion's output.
fn write_smoke_json() {
    fn ns_per_iter(mut f: impl FnMut()) -> u64 {
        // Warm up, then time enough iterations to dominate timer noise.
        for _ in 0..16 {
            f();
        }
        let iters = 256;
        let start = std::time::Instant::now();
        for _ in 0..iters {
            f();
        }
        (start.elapsed().as_nanos() / iters as u128) as u64
    }

    let mut results: Vec<(String, u64)> = Vec::new();
    for (name, src) in [
        ("parse_abba", samples::ABBA),
        ("analyze_abba", samples::ABBA),
        ("analyze_lock_cycle3", samples::LOCK_CYCLE3),
        ("analyze_lost_notify", samples::LOST_NOTIFY),
        ("analyze_branch_release", samples::BRANCH_RELEASE),
    ] {
        let ast = parse(src).unwrap();
        let ns = if name.starts_with("parse") {
            ns_per_iter(|| {
                parse(src).unwrap();
            })
        } else {
            ns_per_iter(|| {
                analyze(&ast);
            })
        };
        results.push((name.to_string(), ns));
    }

    let entries: Vec<String> = results
        .iter()
        .map(|(name, ns)| format!(r#"{{"name":"{name}","ns_per_iter":{ns}}}"#))
        .collect();
    let json = format!(
        "{{\"schema\":\"mtt-bench-static\",\"version\":1,\"results\":[{}]}}\n",
        entries.join(",")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_static.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn main() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
    write_smoke_json();
}
