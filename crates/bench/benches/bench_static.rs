//! E7's cost axis: the static pipeline (parse → analyze → compile) and the
//! event-stream saving that advised instrumentation buys at run time.

use criterion::Criterion;
use mtt_bench::quick_criterion;
use mtt_core::instrument::{InstrumentationPlan, NullSink};
use mtt_core::prelude::*;
use mtt_core::statik::{analyze, compile, parse, samples};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("static_pipeline");
    let src = samples::ABBA;

    g.bench_function("parse", |b| b.iter(|| parse(src).unwrap()));
    let ast = parse(src).unwrap();
    g.bench_function("analyze", |b| b.iter(|| analyze(&ast)));
    g.bench_function("compile", |b| b.iter(|| compile(&ast)));

    let analysis = analyze(&ast);
    let program = compile(&ast);
    g.bench_function("run_full_instrumentation", |b| {
        b.iter(|| {
            Execution::new(&program)
                .scheduler(Box::new(RandomScheduler::new(2)))
                .plan(InstrumentationPlan::full())
                .sink(Box::new(NullSink))
                .max_steps(20_000)
                .run()
        })
    });
    let advised = InstrumentationPlan::advised(analysis.info.clone());
    g.bench_function("run_advised_instrumentation", |b| {
        b.iter(|| {
            Execution::new(&program)
                .scheduler(Box::new(RandomScheduler::new(2)))
                .plan(advised.clone())
                .sink(Box::new(NullSink))
                .max_steps(20_000)
                .run()
        })
    });
    g.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
