//! E8's storage/throughput axis: trace encode/decode performance and size
//! for both codecs — "techniques compete in reducing and compressing the
//! information needed".

use criterion::{Criterion, Throughput};
use mtt_bench::{quick_criterion, workload};
use mtt_core::instrument::shared;
use mtt_core::prelude::*;
use mtt_core::trace::{binary, json, Trace};

fn capture_trace() -> Trace {
    let p = workload(4, 40);
    let (sink, handle) = shared(TraceCollector::new());
    let _ = Execution::new(&p)
        .scheduler(Box::new(RandomScheduler::new(5)))
        .sink(Box::new(sink))
        .run();
    let mut guard = handle.lock().unwrap();
    std::mem::take(&mut guard.trace)
}

fn bench(c: &mut Criterion) {
    let trace = capture_trace();
    let records = trace.len() as u64;
    let mut g = c.benchmark_group("trace_codec");
    g.throughput(Throughput::Elements(records));

    g.bench_function("json_encode", |b| b.iter(|| json::to_string(&trace).len()));
    g.bench_function("binary_encode", |b| b.iter(|| binary::encode(&trace).len()));

    let j = json::to_string(&trace);
    let bin = binary::encode(&trace);
    println!(
        "trace: {} records, json {} B, binary {} B ({:.1}x smaller)",
        records,
        j.len(),
        bin.len(),
        j.len() as f64 / bin.len() as f64
    );
    g.bench_function("json_decode", |b| {
        b.iter(|| json::from_str(&j).unwrap().len())
    });
    g.bench_function("binary_decode", |b| {
        b.iter(|| binary::decode(&bin).unwrap().len())
    });
    // Offline feeding throughput (trace -> detector).
    g.bench_function("feed_vector_clock", |b| {
        b.iter(|| {
            let mut d = VectorClockDetector::new();
            trace.feed(&mut d);
            d.warning_count()
        })
    });
    g.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
