//! Flight-recorder cost axes: journal records appended per second (every
//! campaign cell writes a `start` and a `done` line through one mutex, so
//! append throughput bounds how fine-grained journaling can be), status
//! folds per second (the `mtt status`/`watch` read path), and the
//! per-cell overhead a journal adds to a real campaign.

use criterion::{black_box, Criterion};
use mtt_bench::quick_criterion;
use mtt_core::experiment::campaign::Campaign;
use mtt_core::experiment::jobpool::JobPool;
use mtt_core::obs::{content_address, CellDone, JournalSink, MetricScalars, StatusSummary};
use std::sync::Arc;

/// A `done` record shaped like a real E1 cell.
fn sample_done(i: u64) -> CellDone {
    CellDone {
        cell: content_address(
            "web_sessions",
            "sticky:0.9+noise=sleep:0.3:15",
            i,
            "0.1.0",
            "model",
        ),
        program: "web_sessions".into(),
        tool: "sleep-noise".into(),
        tool_spec: "sticky:0.9+noise=sleep:0.3:15".into(),
        seed: i,
        run: i,
        outcome: "completed".into(),
        failed: i.is_multiple_of(3),
        manifested: if i.is_multiple_of(3) {
            vec!["lost-update".into()]
        } else {
            Vec::new()
        },
        events: 4200 + i,
        sched_points: 900 + i,
        injections: 17,
        timed_out: false,
        wall_us: 1200 + i,
        t_us: 0,
        worker: i % 8,
        fingerprint: Some(format!("{:032x}", 0xc0ffee_u128 + u128::from(i))),
        backend: None,
        metrics: Some(MetricScalars {
            events: 4200 + i,
            sched_points: 900 + i,
            ..MetricScalars::default()
        }),
    }
}

/// A synthetic journal with `n` done records, as NDJSON text.
fn sample_journal(n: u64) -> String {
    let sink_buf = Arc::new(std::sync::Mutex::new(Vec::<u8>::new()));
    struct Buf(Arc<std::sync::Mutex<Vec<u8>>>);
    impl std::io::Write for Buf {
        fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(b);
            Ok(b.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let sink = JournalSink::from_writer(Buf(Arc::clone(&sink_buf)));
    sink.campaign(mtt_core::obs::CampaignMeta {
        label: "bench".into(),
        total_cells: n,
        ..Default::default()
    });
    for i in 0..n {
        sink.done(sample_done(i));
    }
    sink.end("bench", n);
    let buf = sink_buf.lock().unwrap();
    String::from_utf8(buf.clone()).expect("journal is UTF-8")
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("flight_recorder");

    // Serialization + flush through the sink mutex, the per-cell write cost.
    g.bench_function("journal_append", |b| {
        let sink = JournalSink::from_writer(std::io::sink());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            sink.done(black_box(sample_done(i)));
        })
    });

    // The `mtt status` read path: parse NDJSON, fold permutation-invariantly.
    g.bench_function("status_fold_256", |b| {
        let text = sample_journal(256);
        b.iter(|| {
            let parsed = mtt_core::obs::parse_journal(&text).expect("valid journal");
            black_box(StatusSummary::from_journal(&parsed))
        })
    });

    // A real (tiny) campaign with and without a journal attached.
    let programs = || vec![mtt_core::suite::by_name("lost_update").expect("suite has lost_update")];
    g.bench_function("campaign_bare", |b| {
        let pool = JobPool::serial();
        b.iter(|| {
            let campaign = Campaign::standard(programs(), 2);
            black_box(campaign.run_full(&pool))
        })
    });
    g.bench_function("campaign_journaled", |b| {
        let pool = JobPool::serial();
        b.iter(|| {
            let mut campaign = Campaign::standard(programs(), 2);
            campaign.journal = Some(Arc::new(JournalSink::from_writer(std::io::sink())));
            black_box(campaign.run_full(&pool))
        })
    });

    g.finish();
}

/// Smoke throughput for the flight recorder, written to `BENCH_events.json`
/// at the repository root so CI can diff journaling cost without parsing
/// Criterion output. `events_per_sec` is journal records appended per
/// wall-clock second through the sink's mutex + flush path.
fn write_smoke_json() {
    fn ns_per_iter(iters: u32, mut f: impl FnMut()) -> u64 {
        for _ in 0..4 {
            f();
        }
        let start = std::time::Instant::now();
        for _ in 0..iters {
            f();
        }
        (start.elapsed().as_nanos() / iters as u128) as u64
    }

    // Journal records per second (the bound on journaling granularity).
    let sink = JournalSink::from_writer(std::io::sink());
    let mut i = 0u64;
    let append_ns = ns_per_iter(4096, || {
        i += 1;
        sink.done(sample_done(i));
    });
    let events_per_sec = 1_000_000_000 / append_ns.max(1);

    // Status folds per second over a 256-record journal (the watch path).
    let text = sample_journal(256);
    let fold_ns = ns_per_iter(64, || {
        let parsed = mtt_core::obs::parse_journal(&text).expect("valid journal");
        StatusSummary::from_journal(&parsed);
    });
    let folds_per_sec = 1_000_000_000 / fold_ns.max(1);

    let results = [("journal_append", append_ns), ("status_fold_256", fold_ns)];
    let entries: Vec<String> = results
        .iter()
        .map(|(name, ns)| format!(r#"{{"name":"{name}","ns_per_iter":{ns}}}"#))
        .collect();
    let json = format!(
        "{{\"schema\":\"mtt-bench-events\",\"version\":1,\"events_per_sec\":{events_per_sec},\"status_folds_per_sec\":{folds_per_sec},\"results\":[{}]}}\n",
        entries.join(",")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_events.json");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn main() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
    write_smoke_json();
}
