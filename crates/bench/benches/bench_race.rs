//! E2's overhead axis: race-detector throughput in events/second —
//! "on-line race detection techniques compete in the performance overhead
//! they produce".

use criterion::{Criterion, Throughput};
use mtt_bench::quick_criterion;
use mtt_core::instrument::{Event, EventSink, Loc, LockId, Op, ThreadId, VarId};
use mtt_core::prelude::*;
use std::sync::Arc;

/// Synthesize a realistic event stream: `n` events over `threads` threads,
/// `vars` variables, with a lock acquire/release pattern around half the
/// accesses.
fn synthetic_stream(n: usize, threads: u32, vars: u32) -> Vec<Event> {
    let mut out = Vec::with_capacity(n);
    let empty: Arc<[LockId]> = Arc::from(Vec::new());
    let with_lock: Arc<[LockId]> = Arc::from(vec![LockId(0)]);
    for i in 0..n {
        let t = ThreadId((i as u32) % threads);
        let v = VarId((i as u32 * 7) % vars);
        let (op, locks) = match i % 6 {
            0 => (Op::LockAcquire { lock: LockId(0) }, with_lock.clone()),
            1 => (
                Op::VarWrite {
                    var: v,
                    value: i as i64,
                },
                with_lock.clone(),
            ),
            2 => (Op::LockRelease { lock: LockId(0) }, empty.clone()),
            3 => (
                Op::VarRead {
                    var: v,
                    value: i as i64,
                },
                empty.clone(),
            ),
            4 => (
                Op::VarWrite {
                    var: v,
                    value: i as i64,
                },
                empty.clone(),
            ),
            _ => (Op::Yield, empty.clone()),
        };
        out.push(Event {
            seq: i as u64,
            time: i as u64,
            thread: t,
            loc: Loc::new("bench", (i % 97) as u32 + 1),
            op,
            locks_held: locks,
        });
    }
    out
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("race_detectors");
    let stream = synthetic_stream(20_000, 8, 32);
    g.throughput(Throughput::Elements(stream.len() as u64));

    g.bench_function("eraser_20k_events", |b| {
        b.iter(|| {
            let mut d = EraserLockset::new();
            for ev in &stream {
                d.on_event(ev);
            }
            d.finish();
            d.warning_count()
        })
    });
    g.bench_function("vector_clock_20k_events", |b| {
        b.iter(|| {
            let mut d = VectorClockDetector::new();
            for ev in &stream {
                d.on_event(ev);
            }
            d.finish();
            d.warning_count()
        })
    });
    // The FastTrack fast path: single-thread stream, almost all same-epoch.
    let local = synthetic_stream(20_000, 1, 4);
    g.bench_function("vector_clock_fastpath_20k", |b| {
        b.iter(|| {
            let mut d = VectorClockDetector::new();
            for ev in &local {
                d.on_event(ev);
            }
            d.fast_path_hits
        })
    });
    g.finish();
}

fn main() {
    let mut c = quick_criterion();
    bench(&mut c);
    c.final_summary();
}
